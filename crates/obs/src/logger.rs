//! Leveled stderr logging for the experiment bins.
//!
//! Replaces the ad-hoc `eprintln!` progress chatter with one switchboard:
//! a process-global level set from the `ICFL_LOG` environment variable
//! (`error`/`warn`/`info`/`debug`/`trace`, or `quiet` for errors only) or
//! from CLI flags (`--quiet`, `-v`, `-vv`). Messages go to stderr so
//! stdout stays clean for `--json` output; results-style "wrote ..."
//! lines use [`info`](crate::info), diagnostics use
//! [`warn`](crate::warn)/[`error`](crate::error).
//!
//! The macros are invoked through the crate path:
//!
//! ```
//! icfl_obs::logger::set_level(icfl_obs::Level::Info);
//! icfl_obs::info!("wrote {} rows", 5);
//! icfl_obs::debug!("not shown at info level");
//! ```

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Log severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable problems; always shown (even under `--quiet`).
    Error = 0,
    /// Suspicious but non-fatal conditions.
    Warn = 1,
    /// Progress and results pointers (the default).
    Info = 2,
    /// Per-phase detail (`-v`).
    Debug = 3,
    /// Per-event detail (`-vv`).
    Trace = 4,
}

impl Level {
    /// Parses a level name as accepted by `ICFL_LOG` (case-insensitive;
    /// `quiet` is an alias for `error`).
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" | "quiet" | "off" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }

    /// The level's lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

fn cell() -> &'static AtomicU8 {
    static CELL: OnceLock<AtomicU8> = OnceLock::new();
    CELL.get_or_init(|| {
        let initial = std::env::var("ICFL_LOG")
            .ok()
            .as_deref()
            .and_then(Level::parse)
            .unwrap_or(Level::Info);
        AtomicU8::new(initial as u8)
    })
}

/// The current global log level (initialized from `ICFL_LOG` on first
/// use, defaulting to [`Level::Info`]).
pub fn level() -> Level {
    match cell().load(Ordering::Relaxed) {
        0 => Level::Error,
        1 => Level::Warn,
        2 => Level::Info,
        3 => Level::Debug,
        _ => Level::Trace,
    }
}

/// Sets the global log level (CLI flags call this after parsing; flags
/// win over `ICFL_LOG`).
pub fn set_level(level: Level) {
    cell().store(level as u8, Ordering::Relaxed);
}

/// Whether a message at `at` would currently be emitted.
pub fn enabled(at: Level) -> bool {
    at <= level()
}

/// Macro backend: formats and writes one stderr line if `at` is enabled.
#[doc(hidden)]
pub fn log_at(at: Level, msg: std::fmt::Arguments<'_>) {
    if enabled(at) {
        eprintln!("[{}] {}", at.name(), msg);
    }
}

/// Logs at [`Level::Error`]; shown even under `--quiet`.
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {
        $crate::logger::log_at($crate::Level::Error, format_args!($($arg)*))
    };
}

/// Logs at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        $crate::logger::log_at($crate::Level::Warn, format_args!($($arg)*))
    };
}

/// Logs at [`Level::Info`] (progress, results pointers).
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        $crate::logger::log_at($crate::Level::Info, format_args!($($arg)*))
    };
}

/// Logs at [`Level::Debug`] (`-v`).
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        $crate::logger::log_at($crate::Level::Debug, format_args!($($arg)*))
    };
}

/// Logs at [`Level::Trace`] (`-vv`).
#[macro_export]
macro_rules! trace {
    ($($arg:tt)*) => {
        $crate::logger::log_at($crate::Level::Trace, format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_parse_and_order() {
        assert_eq!(Level::parse("info"), Some(Level::Info));
        assert_eq!(Level::parse("QUIET"), Some(Level::Error));
        assert_eq!(Level::parse(" warn "), Some(Level::Warn));
        assert_eq!(Level::parse("nope"), None);
        assert!(Level::Error < Level::Trace);
    }

    #[test]
    fn set_level_gates_enabled() {
        // Tests share the process-global level; restore what we found.
        let prev = level();
        set_level(Level::Warn);
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        set_level(Level::Trace);
        assert!(enabled(Level::Trace));
        set_level(prev);
    }

    #[test]
    fn names_round_trip() {
        for l in [
            Level::Error,
            Level::Warn,
            Level::Info,
            Level::Debug,
            Level::Trace,
        ] {
            assert_eq!(Level::parse(l.name()), Some(l));
        }
    }
}
