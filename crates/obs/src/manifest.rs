//! Run manifests: what the scenario builder actually assembled.
//!
//! A [`RunManifest`] is the reproducibility record for one built scenario
//! — the app, seed, workload shape, and fault schedule that produced a
//! run. The scenario builder records one per `build_with` call; exports
//! read them back sorted and de-duplicated (see
//! [`Obs::manifests`](crate::Obs::manifests)), so the list is independent
//! of the order parallel campaign workers assembled their runs.

use serde::{Deserialize, Serialize};

/// The reproducibility record for one assembled scenario.
///
/// Every field is a deterministic function of the builder's
/// configuration, so manifests are safe alongside the journal in
/// byte-compared exports. The `Ord` derive gives the deterministic export
/// order (field-by-field, `app` then `seed` first).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RunManifest {
    /// Application topology name (e.g. `"boutique"`).
    pub app: String,
    /// Scenario seed.
    pub seed: u64,
    /// Replica count per service.
    pub replicas: usize,
    /// Arrival process description (e.g. `"open(rate=120)"`).
    pub arrival: String,
    /// Load-generator flow names, in registration order.
    pub flows: Vec<String>,
    /// Faults present from time zero, as `"service:fault"` strings.
    pub preset_faults: Vec<String>,
    /// Scheduled fault injections, as `"service:fault@[from,to)"`.
    pub scheduled_faults: Vec<String>,
    /// Telemetry tap description (`"none"`, `"recorder"`, or the
    /// ingester's degradation summary).
    pub tap: String,
}

/// Renders manifests as JSONL, one manifest per line, in the order given
/// (callers pass the sorted/de-duplicated list from
/// [`Obs::manifests`](crate::Obs::manifests)).
pub fn manifests_jsonl(manifests: &[RunManifest]) -> String {
    let mut out = String::new();
    for m in manifests {
        out.push_str(&serde_json::to_string(m).expect("manifests serialize"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunManifest {
        RunManifest {
            app: "boutique".to_owned(),
            seed: 42,
            replicas: 2,
            arrival: "open(rate=120)".to_owned(),
            flows: vec!["checkout".to_owned(), "browse".to_owned()],
            preset_faults: vec!["cart:cpu-hog".to_owned()],
            scheduled_faults: vec!["payment:delay@[30,60)".to_owned()],
            tap: "recorder".to_owned(),
        }
    }

    #[test]
    fn serde_round_trip() {
        let m = sample();
        let json = serde_json::to_string(&m).unwrap();
        let back: RunManifest = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn jsonl_is_one_manifest_per_line() {
        let mut other = sample();
        other.seed = 7;
        let jsonl = manifests_jsonl(&[sample(), other]);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            serde_json::parse_value_str(line).expect("line parses");
        }
    }

    #[test]
    fn order_is_app_then_seed() {
        let mut a = sample();
        a.seed = 1;
        let b = sample();
        assert!(a < b);
        let mut c = sample();
        c.app = "zoo".to_owned();
        c.seed = 0;
        assert!(b < c);
    }
}
