//! # icfl-obs — pipeline self-observability
//!
//! The localizer pipeline monitors *other* services; this crate monitors
//! the pipeline itself. It is a lightweight instrumentation layer with a
//! hard split between two kinds of facts (see `DESIGN.md`,
//! "Self-observability"):
//!
//! * the **deterministic event journal** ([`MetricsRegistry`]) — counters
//!   and high-water gauges whose values are pure functions of the seeded
//!   workload. Every journal update is a commutative aggregate (a sum or a
//!   max of per-run deterministic values), so snapshots are byte-identical
//!   regardless of worker-thread count or scheduling and are safe to
//!   assert in goldens.
//! * the **wall-clock profile** ([`Profiler`]) — structured spans (phase
//!   timings with parent/child nesting by time containment) and latency
//!   accumulators. These measure the host machine and are *never* part of
//!   byte-compared outputs; they feed the Chrome-trace export and the
//!   per-phase breakdown in `results/profile_*.{txt,json}`.
//!
//! Two exporters serve both sides: [`trace::chrome_trace_json`] renders
//! spans (or any [`trace::TraceEvent`] stream, e.g. the
//! `icfl-micro` simulated-request span store) as a Chrome-trace/Perfetto
//! JSON timeline, and [`MetricsSnapshot::to_prometheus`] /
//! [`MetricsSnapshot::to_jsonl`] render the journal as a Prometheus-style
//! text exposition or JSONL.
//!
//! Instrumentation reaches the collector through a process-global [`Obs`]
//! handle ([`global`]); [`reset`] swaps in a fresh collector (tests,
//! repeated workloads in one process). All hot-path operations are a
//! mutex-guarded map update or a `Vec` push — cheap enough to stay on in
//! every run, CI included.
//!
//! ```
//! let obs = icfl_obs::global();
//! obs.metrics.counter_add("icfl_demo_total", &[("kind", "doc")], 3);
//! {
//!     let mut span = icfl_obs::span("demo-phase");
//!     span.arg("items", 3);
//! } // span records on drop
//! let snap = obs.metrics.snapshot();
//! assert!(snap.to_prometheus().contains("icfl_demo_total"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod logger;
pub mod manifest;
pub mod metrics;
pub mod profile;
pub mod trace;

pub use logger::Level;
pub use manifest::RunManifest;
pub use metrics::{lint_exposition, MetricSample, MetricsRegistry, MetricsSnapshot};
pub use profile::{PhaseAggregate, Profiler, SpanGuard, SpanRecord, StatSummary};
pub use trace::TraceEvent;

use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Duration;

/// One observability collector: the deterministic journal, the wall-clock
/// profiler, and the run manifests recorded by the scenario builder.
#[derive(Debug)]
pub struct Obs {
    /// Deterministic event journal (thread-count-invariant by design).
    pub metrics: MetricsRegistry,
    /// Wall-clock spans and latency accumulators (never byte-compared).
    pub profiler: Profiler,
    manifests: Mutex<Vec<RunManifest>>,
}

impl Obs {
    /// A fresh, empty collector.
    pub fn new() -> Obs {
        Obs {
            metrics: MetricsRegistry::new(),
            profiler: Profiler::new(),
            manifests: Mutex::new(Vec::new()),
        }
    }

    /// Records one run manifest (the scenario builder calls this once per
    /// assembled run).
    pub fn record_manifest(&self, m: RunManifest) {
        self.manifests.lock().expect("obs manifests lock").push(m);
    }

    /// The recorded manifests, sorted and de-duplicated so the list is
    /// independent of the order parallel workers assembled their runs.
    pub fn manifests(&self) -> Vec<RunManifest> {
        let mut out = self.manifests.lock().expect("obs manifests lock").clone();
        out.sort();
        out.dedup();
        out
    }
}

impl Default for Obs {
    fn default() -> Self {
        Obs::new()
    }
}

/// The process-global collector slot.
fn slot() -> &'static RwLock<Arc<Obs>> {
    static SLOT: OnceLock<RwLock<Arc<Obs>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(Arc::new(Obs::new())))
}

/// The process-global collector every library instrumentation point
/// reports to. Cloning the `Arc` is the only cost.
pub fn global() -> Arc<Obs> {
    Arc::clone(&slot().read().expect("obs global lock"))
}

/// Replaces the global collector with a fresh one, discarding everything
/// recorded so far. Instrumentation holding the old `Arc` (e.g. a live
/// span guard) finishes against the old collector harmlessly.
pub fn reset() {
    *slot().write().expect("obs global lock") = Arc::new(Obs::new());
}

/// Opens a wall-clock span on the global collector; it records when the
/// returned guard drops. Spans with the same name aggregate into one row
/// of the per-phase profile.
pub fn span(name: &str) -> SpanGuard {
    SpanGuard::open(global(), name)
}

/// Adds one wall-clock sample to the named latency accumulator on the
/// global collector (for high-frequency events where a span per event
/// would dwarf the event itself).
pub fn stat_add(name: &str, elapsed: Duration) {
    global().profiler.stat_add(name, elapsed);
}

/// Adds to a counter in the global journal. `v` must be a deterministic
/// per-run quantity: totals are sums, so they are thread-count-invariant
/// exactly when each contribution is.
pub fn counter_add(name: &str, labels: &[(&str, &str)], v: u64) {
    global().metrics.counter_add(name, labels, v);
}

/// Raises a high-water gauge in the global journal to at least `v` (max
/// aggregation — commutative, so peaks are thread-count-invariant when
/// each contribution is deterministic).
pub fn gauge_max(name: &str, labels: &[(&str, &str)], v: u64) {
    global().metrics.gauge_max(name, labels, v);
}

/// Records one latency observation in a bucketed histogram in the global
/// journal. Histogram observations are usually wall-clock durations (the
/// server ingest path measures real sockets), so histogram samples are
/// excluded from byte-compared goldens even though they live in the
/// journal for `/metrics` exposition.
pub fn histogram_observe(name: &str, labels: &[(&str, &str)], elapsed: Duration) {
    let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
    global()
        .metrics
        .histogram_observe_nanos(name, labels, nanos);
}

/// Like [`histogram_observe`], but attaches `exemplar` (an opaque id such
/// as `tenant/incident`) to the bucket the observation lands in, linking
/// the `/metrics` latency exposition to a specific incident.
pub fn histogram_observe_exemplar(
    name: &str,
    labels: &[(&str, &str)],
    elapsed: Duration,
    exemplar: &str,
) {
    let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
    global()
        .metrics
        .histogram_observe_nanos_exemplar(name, labels, nanos, exemplar);
}

/// The current total of a counter in the global journal, summed across
/// label sets (0 if never bumped). A convenience for tests and harnesses
/// asserting on counters without snapshotting the whole journal.
pub fn counter_total(name: &str) -> u64 {
    global().metrics.snapshot().total(name).unwrap_or(0)
}

/// Records one run manifest on the global collector.
pub fn record_manifest(m: RunManifest) {
    global().record_manifest(m);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_reset_swaps_the_collector() {
        let before = global();
        before.metrics.counter_add("icfl_test_total", &[], 5);
        reset();
        let after = global();
        assert!(!Arc::ptr_eq(&before, &after));
        assert_eq!(after.metrics.snapshot().total("icfl_test_total"), None);
        // The old handle still works; it just reports to a dead collector.
        before.metrics.counter_add("icfl_test_total", &[], 1);
    }

    #[test]
    fn manifests_sort_and_dedup() {
        let obs = Obs::new();
        let mk = |seed| RunManifest {
            app: "demo".into(),
            seed,
            replicas: 1,
            arrival: "closed-loop".into(),
            flows: vec!["f".into()],
            preset_faults: Vec::new(),
            scheduled_faults: Vec::new(),
            tap: "none".into(),
        };
        obs.record_manifest(mk(2));
        obs.record_manifest(mk(1));
        obs.record_manifest(mk(2));
        let out = obs.manifests();
        assert_eq!(out.len(), 2);
        assert!(out[0].seed < out[1].seed);
    }
}
