//! Chrome-trace (Perfetto-loadable) JSON export.
//!
//! The writer is format-generic: it renders any [`TraceEvent`] stream, so
//! the pipeline profiler's wall-clock spans and `icfl-micro`'s
//! simulated-request spans (where `ts` is *simulation* microseconds)
//! export through the same code. The output is the Trace Event Format's
//! JSON-object form (`{"traceEvents": [...]}`) using complete (`"X"`)
//! events, which both `chrome://tracing` and Perfetto load directly.

use serde::{Deserialize, Serialize};

/// One trace event in Chrome's Trace Event Format.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Event name (one slice in the viewer).
    pub name: String,
    /// Category, shown as a filterable tag.
    pub cat: String,
    /// Phase: `"X"` for complete events (the only phase this writer
    /// emits, but the type carries whatever the caller sets).
    pub ph: String,
    /// Start timestamp, microseconds (wall or simulated — the timeline is
    /// whatever clock the producer used).
    pub ts: u64,
    /// Duration, microseconds (rendered for `"X"` events).
    pub dur: u64,
    /// Process lane.
    pub pid: u64,
    /// Thread lane (e.g. worker index, or service index for request
    /// traces).
    pub tid: u64,
    /// Annotations rendered in the viewer's detail pane.
    pub args: Vec<(String, String)>,
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders events as a Chrome-trace JSON document. Events are emitted in
/// the order given; viewers sort by timestamp themselves.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        push_json_string(&mut out, &e.name);
        out.push_str(",\"cat\":");
        push_json_string(&mut out, &e.cat);
        out.push_str(",\"ph\":");
        push_json_string(&mut out, &e.ph);
        out.push_str(&format!(
            ",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{}",
            e.ts, e.dur, e.pid, e.tid
        ));
        if !e.args.is_empty() {
            out.push_str(",\"args\":{");
            for (j, (k, v)) in e.args.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                push_json_string(&mut out, k);
                out.push(':');
                push_json_string(&mut out, v);
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Structurally validates a Chrome-trace document: parses the JSON,
/// checks the `traceEvents` array exists, every event carries the
/// required fields, and `"X"` events are well-nested per `(pid, tid)`
/// lane (no partial overlap — viewers would render garbage). Returns the
/// event count.
///
/// # Errors
///
/// A human-readable description of the first structural violation.
pub fn validate_chrome_trace(json: &str) -> Result<usize, String> {
    let doc = serde_json::parse_value_str(json).map_err(|e| format!("not valid JSON: {e}"))?;
    let obj = doc.as_obj().ok_or("top level is not an object")?;
    let events = obj
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .ok_or("missing traceEvents")?
        .1
        .as_arr()
        .ok_or("traceEvents is not an array")?;
    // (pid, tid) -> intervals; nesting check is per lane.
    let mut lanes: std::collections::BTreeMap<(u64, u64), Vec<(u64, u64)>> = Default::default();
    for (i, ev) in events.iter().enumerate() {
        let fields = ev.as_obj().ok_or(format!("event {i} is not an object"))?;
        let get = |name: &str| fields.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        let name = get("name")
            .and_then(|v| v.as_str())
            .ok_or(format!("event {i} has no name"))?;
        let ph = get("ph")
            .and_then(|v| v.as_str())
            .ok_or(format!("event {i} ({name}) has no ph"))?;
        let num = |field: &str| -> Result<u64, String> {
            let v = get(field).ok_or(format!("event {i} ({name}) has no {field}"))?;
            let out = match v {
                serde::Value::Num(serde::Number::U(n)) => u64::try_from(*n).ok(),
                serde::Value::Num(serde::Number::I(n)) => u64::try_from(*n).ok(),
                _ => None,
            };
            out.ok_or(format!("event {i} ({name}): {field} is not a u64"))
        };
        let ts = num("ts")?;
        let pid = num("pid")?;
        let tid = num("tid")?;
        if ph == "X" {
            let dur = num("dur")?;
            lanes.entry((pid, tid)).or_default().push((ts, ts + dur));
        }
    }
    for ((pid, tid), mut iv) in lanes {
        // Sort by start, longest first, and require strict containment or
        // disjointness between any overlapping pair.
        iv.sort_by_key(|&(s, e)| (s, std::cmp::Reverse(e)));
        let mut open: Vec<(u64, u64)> = Vec::new();
        for (s, e) in iv {
            while open.last().is_some_and(|&(_, oe)| oe <= s) {
                open.pop();
            }
            if let Some(&(_, oe)) = open.last() {
                if e > oe {
                    return Err(format!(
                        "lane pid={pid} tid={tid}: span [{s},{e}] partially overlaps [..,{oe}]"
                    ));
                }
            }
            open.push((s, e));
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, ts: u64, dur: u64, tid: u64) -> TraceEvent {
        TraceEvent {
            name: name.to_owned(),
            cat: "test".to_owned(),
            ph: "X".to_owned(),
            ts,
            dur,
            pid: 1,
            tid,
            args: Vec::new(),
        }
    }

    #[test]
    fn writer_output_validates() {
        let events = vec![
            ev("outer", 0, 100, 1),
            ev("inner", 10, 20, 1),
            ev("other-thread", 5, 500, 2),
        ];
        let json = chrome_trace_json(&events);
        assert_eq!(validate_chrome_trace(&json), Ok(3));
    }

    #[test]
    fn args_and_escapes_render() {
        let mut e = ev("na\"me\n", 1, 2, 3);
        e.args.push(("key".to_owned(), "va\\lue".to_owned()));
        let json = chrome_trace_json(&[e]);
        assert_eq!(validate_chrome_trace(&json), Ok(1));
        assert!(json.contains("\\\"me\\n"));
        assert!(json.contains("va\\\\lue"));
    }

    #[test]
    fn partial_overlap_is_rejected() {
        let json = chrome_trace_json(&[ev("a", 0, 10, 1), ev("b", 5, 10, 1)]);
        let err = validate_chrome_trace(&json).unwrap_err();
        assert!(err.contains("partially overlaps"), "{err}");
        // Same intervals on different lanes are fine.
        let ok = chrome_trace_json(&[ev("a", 0, 10, 1), ev("b", 5, 10, 2)]);
        assert_eq!(validate_chrome_trace(&ok), Ok(2));
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(validate_chrome_trace("[1,2]").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":1}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[{\"ph\":\"X\"}]}").is_err());
        assert!(validate_chrome_trace("not json").is_err());
    }

    #[test]
    fn empty_trace_is_valid() {
        assert_eq!(validate_chrome_trace(&chrome_trace_json(&[])), Ok(0));
    }
}
