//! Property-based tests for windowing arithmetic and metric evaluation.

use icfl_micro::Counters;
use icfl_sim::{SimDuration, SimTime};
use icfl_telemetry::{MetricSpec, RawMetric, WindowConfig};
use proptest::prelude::*;

proptest! {
    /// `count_in` and `windows_in` must always agree.
    #[test]
    fn window_count_matches_enumeration(
        window_s in 1u64..240,
        hop_s in 1u64..240,
        phase_s in 0u64..2_000,
        start_s in 0u64..1_000,
    ) {
        let cfg = WindowConfig::from_secs(window_s, hop_s);
        let start = SimTime::from_secs(start_s);
        let end = SimTime::from_secs(start_s + phase_s);
        let enumerated = cfg.windows_in(start, end);
        prop_assert_eq!(enumerated.len(), cfg.count_in(SimDuration::from_secs(phase_s)));
        // Every window is inside the phase, window-length long, and starts
        // hop apart.
        for w in &enumerated {
            prop_assert!(w.0 >= start && w.1 <= end);
            prop_assert_eq!(w.1 - w.0, SimDuration::from_secs(window_s));
        }
        for pair in enumerated.windows(2) {
            prop_assert_eq!(pair[1].0 - pair[0].0, SimDuration::from_secs(hop_s));
        }
    }

    /// Raw metrics are non-negative for monotone counters and scale
    /// linearly with the delta.
    #[test]
    fn raw_metric_rates_nonnegative_and_linear(
        base_rx in 0u64..1_000_000,
        delta_rx in 0u64..1_000_000,
        window_s in 1u64..600,
    ) {
        let start = Counters { rx_packets: base_rx, ..Counters::default() };
        let mut end = start;
        end.rx_packets = base_rx + delta_rx;
        let m = MetricSpec::Raw(RawMetric::RxPackets);
        let v = m.evaluate(&start, &end, window_s as f64);
        prop_assert!(v >= 0.0);
        prop_assert!((v - delta_rx as f64 / window_s as f64).abs() < 1e-9);

        // Doubling the delta doubles the rate.
        let mut end2 = start;
        end2.rx_packets = base_rx + 2 * delta_rx;
        let v2 = m.evaluate(&start, &end2, window_s as f64);
        prop_assert!((v2 - 2.0 * v).abs() < 1e-6);
    }

    /// Derived metrics are finite for any monotone counter pair and
    /// invariant under proportional scaling of numerator and denominator.
    #[test]
    fn derived_metric_finite_and_ratio_invariant(
        cpu_ms in 0u64..1_000_000,
        rx in 0u64..1_000_000,
        k in 1u64..50,
    ) {
        let start = Counters::default();
        let mut end = Counters::default();
        end.add_cpu(SimDuration::from_millis(cpu_ms));
        end.rx_packets = rx;
        let m = MetricSpec::per_request(RawMetric::CpuSeconds);
        let v = m.evaluate(&start, &end, 60.0);
        prop_assert!(v.is_finite());
        prop_assert!(v >= 0.0);

        // Scale both by k: the ratio converges to the same per-request
        // value as counts grow (the +1 smoothing vanishes).
        let mut end_k = Counters::default();
        end_k.add_cpu(SimDuration::from_millis(cpu_ms * k));
        end_k.rx_packets = rx * k;
        let vk = m.evaluate(&start, &end_k, 60.0);
        if rx > 100 {
            let expected = cpu_ms as f64 / 1000.0 / rx as f64;
            prop_assert!((v - expected).abs() / expected.max(1e-12) < 0.02);
            prop_assert!((vk - expected).abs() / expected.max(1e-12) < 0.02);
        }
    }

    /// Counter deltas are componentwise consistent with manual subtraction.
    #[test]
    fn counter_delta_consistency(
        a in 0u64..1_000_000,
        b in 0u64..1_000_000,
        c in 0u64..1_000_000,
    ) {
        let early =
            Counters { rx_packets: a, tx_packets: b, requests_received: c, ..Counters::default() };
        let mut late = early;
        late.rx_packets += c;
        late.tx_packets += a;
        late.requests_received += b;
        let d = late.delta_since(&early);
        prop_assert_eq!(d.rx_packets, c);
        prop_assert_eq!(d.tx_packets, a);
        prop_assert_eq!(d.requests_received, b);
    }
}
