//! Property-based tests for the degraded scrape path: an arbitrarily
//! dropped, duplicated, and reordered permutation of a clean scrape
//! stream must never panic the engine, must flag exactly the windows
//! whose boundary scrapes were lost, and must leave every untouched
//! window byte-equal to the clean in-order run.

use icfl_micro::Counters;
use icfl_sim::SimTime;
use icfl_telemetry::{
    EngineConfig, MetricCatalog, MetricSpec, RawMetric, WindowConfig, WindowEngine, WindowValidity,
};
use proptest::prelude::*;

/// Delivery delays (and duplicate lags) are bounded by this many scrape
/// intervals — the reorder slack the consumer must tolerate.
const MAX_DELAY: u64 = 2;

/// What the degradation did to one scrape of the stream.
#[derive(Debug, Clone, Copy)]
enum Fate {
    /// Delivered once, `delay` intervals late.
    Deliver { delay: u64 },
    /// Never delivered.
    Drop,
    /// Delivered on time and again `lag` intervals later.
    Duplicate { lag: u64 },
}

/// Decodes a raw `(code, extra)` pair into a fate: codes 0–5 deliver
/// (delay = code mod 3), 6–7 drop, 8–9 duplicate (lag = 1 + extra).
fn decode(code: u8, extra: u8) -> Fate {
    match code {
        0..=5 => Fate::Deliver {
            delay: u64::from(code) % (MAX_DELAY + 1),
        },
        6 | 7 => Fate::Drop,
        _ => Fate::Duplicate {
            lag: 1 + u64::from(extra) % MAX_DELAY,
        },
    }
}

/// The synthetic scrape row at second `t`: distinct monotone counters
/// per service so any misattributed row changes some window's bytes.
fn row(t: u64, services: usize) -> Vec<Counters> {
    (0..services as u64)
        .map(|s| Counters {
            rx_packets: t * (s + 1),
            tx_packets: t * (2 * s + 3),
            cpu_nanos: t * 1_000_000 * (s + 2),
            ..Counters::default()
        })
        .collect()
}

fn catalog() -> MetricCatalog {
    MetricCatalog::new(
        "degrade-prop",
        vec![
            MetricSpec::Raw(RawMetric::RxPackets),
            MetricSpec::Raw(RawMetric::TxPackets),
        ],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// See the module docs: no panic, exact validity flags, untouched
    /// windows byte-equal to the clean run.
    #[test]
    fn degraded_permutation_flags_exactly_the_affected_windows(
        raw_fates in proptest::collection::vec((0u8..10, 0u8..2), 13..48),
        services in 1usize..4,
    ) {
        let fates: Vec<Fate> = raw_fates.iter().map(|&(c, e)| decode(c, e)).collect();
        let last = fates.len() as u64 - 1;
        let windows = WindowConfig::from_secs(10, 5);
        let cfg = EngineConfig::streaming(windows, 512, SimTime::ZERO);

        // Clean reference: every scrape pushed in order.
        let mut clean = WindowEngine::new(cfg, services);
        for t in 0..=last {
            clean.push(SimTime::from_secs(t), row(t, services));
        }

        // Degraded run: deliveries happen at `scrape time + delay`, in
        // delivery-time order, with the watermark trailing by the slack.
        let mut deliveries: Vec<(u64, u64)> = Vec::new(); // (delivered_at, scrape_t)
        for (k, f) in fates.iter().enumerate() {
            let t = k as u64;
            match *f {
                Fate::Deliver { delay } => deliveries.push((t + delay, t)),
                Fate::Drop => {}
                Fate::Duplicate { lag } => {
                    deliveries.push((t, t));
                    deliveries.push((t + lag, t));
                }
            }
        }
        deliveries.sort_by_key(|&(at, _)| at);

        let mut degraded = WindowEngine::new(cfg, services);
        let mut next = 0usize;
        for now in 0..=last + MAX_DELAY {
            while next < deliveries.len() && deliveries[next].0 == now {
                let t = deliveries[next].1;
                degraded.ingest(SimTime::from_secs(t), row(t, services));
                next += 1;
            }
            if now >= MAX_DELAY && now - MAX_DELAY <= last {
                degraded.advance_watermark(SimTime::from_secs(now - MAX_DELAY));
            }
        }
        // Final flush to the last scrape time (not beyond: boundaries
        // after the stream end would be trivially missing).
        degraded.advance_watermark(SimTime::from_secs(last));

        // Both paths decided exactly the boundaries in [window, last].
        let clean_windows = clean.retained_windows();
        let degraded_windows = degraded.retained_windows();
        prop_assert_eq!(clean_windows.len(), degraded_windows.len());

        let delivered = |t: u64| !matches!(fates[t as usize], Fate::Drop);
        let cat = catalog();
        let clean_data = clean.dataset(&cat);
        let degraded_data = degraded.dataset(&cat);
        for (i, &(end, validity)) in degraded_windows.iter().enumerate() {
            prop_assert_eq!(clean_windows[i].0, end);
            let start = end.as_nanos() / 1_000_000_000 - 10;
            let end_s = end.as_nanos() / 1_000_000_000;
            let expect_valid = delivered(start) && delivered(end_s);
            prop_assert_eq!(
                validity,
                if expect_valid { WindowValidity::Valid } else { WindowValidity::MissingBoundary },
                "window [{}, {}]: start delivered {}, end delivered {}",
                start, end_s, delivered(start), delivered(end_s)
            );
            for m in 0..cat.metrics().len() {
                for svc in (0..services).map(icfl_micro::ServiceId::from_index) {
                    let c = clean_data.samples(m, svc)[i];
                    let d = degraded_data.samples(m, svc)[i];
                    if expect_valid {
                        prop_assert_eq!(
                            c.to_bits(), d.to_bits(),
                            "valid window {} diverged from the clean run", i
                        );
                    } else {
                        prop_assert!(d.is_nan(), "invalid window {} must evaluate to NaN", i);
                    }
                }
            }
        }

        // The stats ledger agrees with the fates: every duplicate second
        // delivery coalesced, nothing late-dropped (delays are within the
        // slack), no resets on a monotone stream.
        let stats = degraded.degrade_stats();
        let dups = fates.iter().filter(|f| matches!(f, Fate::Duplicate { .. })).count() as u64;
        prop_assert_eq!(stats.duplicates_coalesced, dups);
        prop_assert_eq!(stats.late_dropped, 0);
        prop_assert_eq!(stats.resets_detected, 0);
        let invalid = degraded_windows
            .iter()
            .filter(|(_, v)| *v != WindowValidity::Valid)
            .count() as u64;
        prop_assert_eq!(stats.invalid_windows, invalid);
    }
}
