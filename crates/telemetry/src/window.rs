//! Hopping-window configuration.
//!
//! The paper aggregates telemetry into overlapping sixty-second windows
//! created every thirty seconds (§V-A); [`WindowConfig`] encodes exactly
//! that and enumerates the window boundaries inside a phase.

use icfl_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Length and hop of the smoothing windows applied to raw counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WindowConfig {
    /// Window length (paper: 60 s).
    pub window: SimDuration,
    /// Hop between consecutive window starts (paper: 30 s).
    pub hop: SimDuration,
}

impl Default for WindowConfig {
    fn default() -> Self {
        WindowConfig {
            window: SimDuration::from_secs(60),
            hop: SimDuration::from_secs(30),
        }
    }
}

impl WindowConfig {
    /// Creates a config from whole seconds.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn from_secs(window: u64, hop: u64) -> Self {
        assert!(window > 0 && hop > 0, "window and hop must be positive");
        WindowConfig {
            window: SimDuration::from_secs(window),
            hop: SimDuration::from_secs(hop),
        }
    }

    /// Enumerates `[start, end)` window bounds fully contained in
    /// `[phase_start, phase_end]`.
    pub fn windows_in(&self, phase_start: SimTime, phase_end: SimTime) -> Vec<(SimTime, SimTime)> {
        let mut out = Vec::new();
        let mut t = phase_start;
        while let Some(end) = t.checked_add(self.window) {
            if end > phase_end {
                break;
            }
            out.push((t, end));
            let Some(next) = t.checked_add(self.hop) else {
                break;
            };
            t = next;
        }
        out
    }

    /// Number of windows a phase of the given length yields.
    pub fn count_in(&self, phase_len: SimDuration) -> usize {
        if phase_len < self.window {
            return 0;
        }
        let spare = phase_len - self.window;
        (spare.as_nanos() / self.hop.as_nanos()) as usize + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_phase_yields_nineteen_windows() {
        // 600 s phase, 60 s windows hopping every 30 s → starts 0..=540.
        let cfg = WindowConfig::default();
        let ws = cfg.windows_in(SimTime::ZERO, SimTime::from_secs(600));
        assert_eq!(ws.len(), 19);
        assert_eq!(ws[0], (SimTime::ZERO, SimTime::from_secs(60)));
        assert_eq!(ws[18], (SimTime::from_secs(540), SimTime::from_secs(600)));
        assert_eq!(cfg.count_in(SimDuration::from_secs(600)), 19);
    }

    #[test]
    fn short_phase_yields_nothing() {
        let cfg = WindowConfig::default();
        assert!(cfg
            .windows_in(SimTime::ZERO, SimTime::from_secs(59))
            .is_empty());
        assert_eq!(cfg.count_in(SimDuration::from_secs(59)), 0);
    }

    #[test]
    fn exact_fit_yields_one() {
        let cfg = WindowConfig::default();
        let ws = cfg.windows_in(SimTime::from_secs(100), SimTime::from_secs(160));
        assert_eq!(ws, vec![(SimTime::from_secs(100), SimTime::from_secs(160))]);
    }

    #[test]
    fn count_matches_enumeration_for_many_lengths() {
        let cfg = WindowConfig::from_secs(60, 30);
        for len in [60u64, 90, 120, 300, 599, 600, 601] {
            let n = cfg
                .windows_in(SimTime::from_secs(50), SimTime::from_secs(50 + len))
                .len();
            assert_eq!(n, cfg.count_in(SimDuration::from_secs(len)), "len={len}");
        }
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_hop_panics() {
        WindowConfig::from_secs(60, 0);
    }
}
