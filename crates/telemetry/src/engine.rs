//! The unified hopping-window finalization engine.
//!
//! Exactly one place in the workspace turns a stream of counter scrapes
//! into finalized hopping windows: this engine. The offline
//! [`Recorder`](crate::Recorder) and the online streaming ingester are both
//! thin wrappers around it — they differ only in configuration (where
//! windows are anchored, how many are retained), never in arithmetic, so
//! offline datasets and live windows agree by construction.
//!
//! The engine is push-driven and simulator-agnostic: callers feed it one
//! per-service counter row per scrape via [`WindowEngine::push`]. A window
//! `[anchor + k·hop, anchor + k·hop + window]` is finalized the moment the
//! scrape at its end boundary arrives. Per finalized window the engine
//! keeps only the two *boundary* counter rows; because every
//! [`MetricSpec`] is a pure function of the boundary rows and the window
//! length, any metric catalog can be evaluated after the fact (Table II
//! reuses one campaign across six catalogs) while memory stays
//! O(windows × services) instead of O(scrapes × services).

use crate::catalog::MetricCatalog;
use crate::dataset::Dataset;
use crate::metric::MetricSpec;
use crate::window::WindowConfig;
use icfl_micro::Counters;
use icfl_sim::{SimDuration, SimTime};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Where windows sit on the clock and which of them are kept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Hopping-window geometry.
    pub windows: WindowConfig,
    /// Scrape interval; window and hop must be multiples of it.
    pub interval: SimDuration,
    /// Window `k` spans `[anchor + k·hop, anchor + k·hop + window]`. The
    /// offline recorder anchors at the phase start (reproducing
    /// [`WindowConfig::windows_in`]); the streaming ingester anchors at
    /// time zero.
    pub anchor: SimTime,
    /// Windows *starting* before this instant are discarded (cluster
    /// warmup: queues filling, daemons settling).
    pub collect_from: SimTime,
    /// Windows *ending* after this instant are ignored, bounding an
    /// offline phase. `None` streams forever.
    pub collect_until: Option<SimTime>,
    /// How many finalized windows to retain: `None` keeps all (offline
    /// phases), `Some(n)` keeps a ring of the `n` most recent (online).
    pub retain: Option<usize>,
}

impl EngineConfig {
    /// Default scrape interval (1 s, Prometheus-style).
    pub const DEFAULT_INTERVAL: SimDuration = SimDuration::from_secs(1);

    /// Offline-phase configuration: windows anchored at `phase.0`,
    /// bounded by `phase.1`, all retained.
    pub fn offline(windows: WindowConfig, phase: (SimTime, SimTime)) -> Self {
        EngineConfig {
            windows,
            interval: EngineConfig::DEFAULT_INTERVAL,
            anchor: phase.0,
            collect_from: phase.0,
            collect_until: Some(phase.1),
            retain: None,
        }
    }

    /// Streaming configuration: windows anchored at time zero, warmup
    /// windows before `collect_from` discarded, a ring of `capacity`
    /// retained.
    pub fn streaming(windows: WindowConfig, capacity: usize, collect_from: SimTime) -> Self {
        EngineConfig {
            windows,
            interval: EngineConfig::DEFAULT_INTERVAL,
            anchor: SimTime::ZERO,
            collect_from,
            collect_until: None,
            retain: Some(capacity),
        }
    }
}

/// One finalized window: its bounds and the two boundary counter rows.
struct FinalizedWindow {
    end: SimTime,
    start_row: Vec<Counters>,
    end_row: Vec<Counters>,
}

/// Per-service window series for one metric, tagged with the `emitted`
/// generation it was computed at.
type CachedSeries = (u64, Vec<Arc<Vec<f64>>>);

/// The single hopping-window finalization implementation (see module docs).
pub struct WindowEngine {
    cfg: EngineConfig,
    num_services: usize,
    /// Recent raw snapshots spanning exactly one window length:
    /// `(scrape time, per-service counters)`, oldest first.
    snaps: VecDeque<(SimTime, Vec<Counters>)>,
    /// Finalized windows, oldest first, ring-capped by `cfg.retain`.
    finalized: VecDeque<FinalizedWindow>,
    /// Total windows finalized since creation (including evicted ones).
    emitted: u64,
    /// Memoized per-metric window series over the retained windows, tagged
    /// with the `emitted` generation they were computed at. Offline, all
    /// windows finalize before any evaluation, so the six Table II
    /// catalogs share one extraction per metric.
    cache: HashMap<MetricSpec, CachedSeries>,
}

impl std::fmt::Debug for WindowEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WindowEngine")
            .field("emitted", &self.emitted)
            .field("retained", &self.finalized.len())
            .finish()
    }
}

impl WindowEngine {
    /// Creates an engine for `num_services` services.
    ///
    /// # Panics
    ///
    /// Panics if the interval is zero, the retention capacity is zero, or
    /// window/hop are not multiples of the scrape interval (window
    /// boundaries would fall between scrapes).
    pub fn new(cfg: EngineConfig, num_services: usize) -> WindowEngine {
        assert!(!cfg.interval.is_zero(), "scrape interval must be positive");
        assert!(cfg.retain != Some(0), "ring capacity must be positive");
        assert_eq!(
            cfg.windows.window.as_nanos() % cfg.interval.as_nanos(),
            0,
            "window must be a multiple of the scrape interval"
        );
        assert_eq!(
            cfg.windows.hop.as_nanos() % cfg.interval.as_nanos(),
            0,
            "hop must be a multiple of the scrape interval"
        );
        WindowEngine {
            cfg,
            num_services,
            snaps: VecDeque::new(),
            finalized: VecDeque::new(),
            emitted: 0,
            cache: HashMap::new(),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Feeds one scrape: `row[s]` is the counter snapshot of service `s`
    /// at `now`. Finalizes the window ending at `now`, if any, and prunes
    /// snapshots no future window can start at.
    pub fn push(&mut self, now: SimTime, row: Vec<Counters>) {
        let window = self.cfg.windows.window;
        let hop = self.cfg.windows.hop;
        let anchor = self.cfg.anchor;
        self.snaps.push_back((now, row));
        // A window `[now − window, now]` closes at this scrape iff its end
        // is `anchor + window + k·hop` for some k ≥ 0 — the boundaries
        // `WindowConfig::windows_in` enumerates from `anchor`.
        let first_end = anchor.as_nanos().saturating_add(window.as_nanos());
        if now.as_nanos() >= first_end
            && (now.as_nanos() - first_end).is_multiple_of(hop.as_nanos())
        {
            let start = now.as_nanos() - window.as_nanos();
            let in_phase = self
                .cfg
                .collect_until
                .is_none_or(|until| now.as_nanos() <= until.as_nanos());
            if start >= self.cfg.collect_from.as_nanos() && in_phase {
                self.finalize_window(now);
            }
        }
        // Drop snapshots no future window can start at: every boundary
        // after `now` ends at `> now`, so its start lies at `> now − window`,
        // and starts sit on the scrape grid — the oldest start still
        // reachable is `now − window + interval`.
        let keep_from = now.as_nanos() as i128 + self.cfg.interval.as_nanos() as i128
            - window.as_nanos() as i128;
        while let Some(front) = self.snaps.front() {
            if (front.0.as_nanos() as i128) < keep_from {
                self.snaps.pop_front();
            } else {
                break;
            }
        }
    }

    fn finalize_window(&mut self, end: SimTime) {
        let start_nanos = end.as_nanos() - self.cfg.windows.window.as_nanos();
        let Some(start_row) = self
            .snaps
            .iter()
            .find(|(t, _)| t.as_nanos() == start_nanos)
            .map(|(_, row)| row.clone())
        else {
            // No snapshot at the window start (collection began
            // mid-stream); skip — only possible for the very first partial
            // window.
            return;
        };
        let end_row = self
            .snaps
            .back()
            .map(|(_, row)| row.clone())
            .expect("the closing scrape was just pushed");
        if let Some(cap) = self.cfg.retain {
            if self.finalized.len() == cap {
                self.finalized.pop_front();
            }
        }
        self.finalized.push_back(FinalizedWindow {
            end,
            start_row,
            end_row,
        });
        self.emitted += 1;
    }

    /// Total windows finalized since creation (monotonic; includes windows
    /// already evicted from the ring).
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Windows currently retained.
    pub fn retained(&self) -> usize {
        self.finalized.len()
    }

    /// End time of the newest finalized window, if any.
    pub fn newest_window_end(&self) -> Option<SimTime> {
        self.finalized.back().map(|w| w.end)
    }

    /// The boundary counter row of `service` at `at`, if `at` is a start
    /// or end boundary of a retained window. This is all the raw telemetry
    /// the engine keeps — the full scrape log is never stored.
    pub fn boundary_counters(&self, service: usize, at: SimTime) -> Option<Counters> {
        self.finalized.iter().find_map(|w| {
            if w.end == at {
                w.end_row.get(service).copied()
            } else if w.end.as_nanos() - self.cfg.windows.window.as_nanos() == at.as_nanos() {
                w.start_row.get(service).copied()
            } else {
                None
            }
        })
    }

    /// The per-service window series of one metric over every retained
    /// window, memoized until the next finalization.
    fn series(&mut self, metric: MetricSpec) -> Vec<Arc<Vec<f64>>> {
        if let Some((generation, series)) = self.cache.get(&metric) {
            if *generation == self.emitted {
                return series.clone();
            }
        }
        let secs = self.cfg.windows.window.as_secs_f64();
        let mut per_service: Vec<Vec<f64>> =
            vec![Vec::with_capacity(self.finalized.len()); self.num_services];
        for w in &self.finalized {
            for (svc, series) in per_service.iter_mut().enumerate() {
                series.push(metric.evaluate(&w.start_row[svc], &w.end_row[svc], secs));
            }
        }
        let shared: Vec<Arc<Vec<f64>>> = per_service.into_iter().map(Arc::new).collect();
        self.cache.insert(metric, (self.emitted, shared.clone()));
        shared
    }

    /// Evaluates `catalog` over every retained window. Series are shared
    /// (`Arc`) across catalogs that contain the same metric.
    pub fn dataset(&mut self, catalog: &MetricCatalog) -> Dataset {
        let values = catalog
            .metrics()
            .iter()
            .map(|metric| self.series(*metric))
            .collect();
        Dataset::from_shared(catalog.metric_names(), values)
    }

    /// Evaluates `catalog` over the `n` most recent retained windows
    /// (`None` until `n` windows are retained).
    pub fn last_n(&mut self, catalog: &MetricCatalog, n: usize) -> Option<Dataset> {
        let have = self.finalized.len();
        if n == 0 || have < n {
            return None;
        }
        let secs = self.cfg.windows.window.as_secs_f64();
        let values: Vec<Vec<Vec<f64>>> = catalog
            .metrics()
            .iter()
            .map(|metric| {
                (0..self.num_services)
                    .map(|svc| {
                        self.finalized
                            .iter()
                            .skip(have - n)
                            .map(|w| metric.evaluate(&w.start_row[svc], &w.end_row[svc], secs))
                            .collect()
                    })
                    .collect()
            })
            .collect();
        Some(Dataset::new(catalog.metric_names(), values))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::RawMetric;
    use icfl_micro::Counters;

    /// A synthetic scrape row: every service's rx counter is `t·s + t`.
    fn row(t: u64, services: usize) -> Vec<Counters> {
        (0..services)
            .map(|s| Counters {
                rx_packets: t * s as u64 + t,
                ..Counters::default()
            })
            .collect()
    }

    fn drive(engine: &mut WindowEngine, services: usize, secs: u64) {
        for t in 0..=secs {
            engine.push(SimTime::from_secs(t), row(t, services));
        }
    }

    #[test]
    fn zero_anchor_matches_windows_in_enumeration() {
        let windows = WindowConfig::from_secs(10, 5);
        let mut engine = WindowEngine::new(EngineConfig::streaming(windows, 64, SimTime::ZERO), 2);
        drive(&mut engine, 2, 60);
        let expected = windows.windows_in(SimTime::ZERO, SimTime::from_secs(60));
        assert_eq!(engine.emitted(), expected.len() as u64);
        assert_eq!(engine.newest_window_end(), Some(SimTime::from_secs(60)));
    }

    #[test]
    fn phase_anchor_bounds_and_offsets_windows() {
        // Phase [7 s, 37 s] with 10 s/5 s windows: starts 7, 12, 17, 22, 27.
        let windows = WindowConfig::from_secs(10, 5);
        let phase = (SimTime::from_secs(7), SimTime::from_secs(37));
        let mut cfg = EngineConfig::offline(windows, phase);
        // Keep boundaries on the scrape grid for this off-by-7 anchor.
        cfg.interval = SimDuration::from_secs(1);
        let mut engine = WindowEngine::new(cfg, 1);
        drive(&mut engine, 1, 60);
        assert_eq!(
            engine.emitted(),
            windows.windows_in(phase.0, phase.1).len() as u64
        );
        // No window starts before the phase or ends after it.
        assert_eq!(engine.newest_window_end(), Some(SimTime::from_secs(37)));
    }

    #[test]
    fn rate_values_come_from_boundary_rows() {
        let windows = WindowConfig::from_secs(10, 5);
        let mut engine = WindowEngine::new(EngineConfig::streaming(windows, 64, SimTime::ZERO), 1);
        drive(&mut engine, 1, 20);
        let catalog = MetricCatalog::new("rx", vec![MetricSpec::Raw(RawMetric::RxPackets)]);
        let ds = engine.dataset(&catalog);
        // rx grows by 1 per second → rate 1.0 in every window.
        assert_eq!(ds.num_windows(), 3);
        for &v in ds.samples(0, icfl_micro::ServiceId::from_index(0)) {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn ring_retention_and_last_n() {
        let windows = WindowConfig::from_secs(10, 5);
        let mut engine = WindowEngine::new(EngineConfig::streaming(windows, 4, SimTime::ZERO), 1);
        drive(&mut engine, 1, 90);
        assert_eq!(engine.emitted(), 17);
        assert_eq!(engine.retained(), 4);
        let catalog = MetricCatalog::new("rx", vec![MetricSpec::Raw(RawMetric::RxPackets)]);
        assert!(engine.last_n(&catalog, 5).is_none());
        assert_eq!(engine.last_n(&catalog, 4).unwrap().num_windows(), 4);
    }

    #[test]
    fn warmup_windows_are_discarded() {
        let windows = WindowConfig::from_secs(10, 5);
        let mut engine = WindowEngine::new(
            EngineConfig::streaming(windows, 32, SimTime::from_secs(30)),
            1,
        );
        drive(&mut engine, 1, 60);
        // Only windows starting at ≥ 30 s survive: starts 30..=50 → 5.
        assert_eq!(engine.emitted(), 5);
    }

    #[test]
    fn series_cache_is_invalidated_by_new_windows() {
        let windows = WindowConfig::from_secs(10, 5);
        let mut engine = WindowEngine::new(EngineConfig::streaming(windows, 64, SimTime::ZERO), 1);
        drive(&mut engine, 1, 20);
        let catalog = MetricCatalog::new("rx", vec![MetricSpec::Raw(RawMetric::RxPackets)]);
        assert_eq!(engine.dataset(&catalog).num_windows(), 3);
        for t in 21..=25 {
            engine.push(SimTime::from_secs(t), row(t, 1));
        }
        assert_eq!(engine.dataset(&catalog).num_windows(), 4);
    }

    #[test]
    fn boundary_counters_serve_retained_boundaries_only() {
        let windows = WindowConfig::from_secs(10, 5);
        let mut engine = WindowEngine::new(EngineConfig::streaming(windows, 64, SimTime::ZERO), 1);
        drive(&mut engine, 1, 20);
        assert!(engine
            .boundary_counters(0, SimTime::from_secs(20))
            .is_some());
        assert!(engine.boundary_counters(0, SimTime::from_secs(3)).is_none());
    }

    #[test]
    #[should_panic(expected = "multiple of the scrape interval")]
    fn misaligned_hop_panics() {
        let mut cfg = EngineConfig::streaming(WindowConfig::from_secs(10, 5), 4, SimTime::ZERO);
        cfg.interval = SimDuration::from_secs(3);
        let _ = WindowEngine::new(cfg, 1);
    }

    #[test]
    #[should_panic(expected = "ring capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = WindowEngine::new(
            EngineConfig::streaming(WindowConfig::from_secs(10, 5), 0, SimTime::ZERO),
            1,
        );
    }
}
