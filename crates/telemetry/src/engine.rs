//! The unified hopping-window finalization engine.
//!
//! Exactly one place in the workspace turns a stream of counter scrapes
//! into finalized hopping windows: this engine. The offline
//! [`Recorder`](crate::Recorder) and the online streaming ingester are both
//! thin wrappers around it — they differ only in configuration (where
//! windows are anchored, how many are retained), never in arithmetic, so
//! offline datasets and live windows agree by construction.
//!
//! The engine is push-driven and simulator-agnostic, with two entry points:
//!
//! * [`WindowEngine::push`] — the clean path: one in-order scrape per
//!   interval, windows finalized the instant their end boundary arrives.
//!   This is the arithmetic the paper's offline tables are built on and it
//!   is kept byte-for-byte unchanged.
//! * [`WindowEngine::ingest`] + [`WindowEngine::advance_watermark`] — the
//!   degraded path: scrapes may arrive late, out of order, duplicated, or
//!   not at all, and monotonic counters may reset when a pod restarts.
//!   Deliveries stage in a reorder buffer keyed by *scrape* time;
//!   duplicates coalesce (first delivery wins); advancing the watermark
//!   processes everything at or below it in time order, detects per-service
//!   counter resets and re-bases them Prometheus-style, and finalizes every
//!   window boundary the watermark has passed. A window whose boundary
//!   scrape never arrived, or which spans a counter reset, is finalized
//!   with an explicit non-[`Valid`](WindowValidity::Valid) validity flag
//!   instead of a silently-wrong rate — its series values are `NaN` and
//!   [`WindowEngine::last_n_valid`] skips it.
//!
//! A window `[anchor + k·hop, anchor + k·hop + window]` is finalized the
//! moment the scrape at its end boundary arrives (clean) or the watermark
//! passes its end (degraded). Per finalized window the engine keeps only
//! the two *boundary* counter rows; because every [`MetricSpec`] is a pure
//! function of the boundary rows and the window length, any metric catalog
//! can be evaluated after the fact (Table II reuses one campaign across six
//! catalogs) while memory stays O(windows × services) instead of
//! O(scrapes × services). The same property makes the degraded path cheap:
//! interior scrape drops cost nothing — only *boundary* drops invalidate a
//! window.
//!
//! The engine's entire state is serializable ([`WindowEngine::snapshot`] /
//! [`WindowEngine::from_snapshot`]) so an online session can checkpoint
//! mid-stream and resume byte-identically after a crash.

use crate::catalog::MetricCatalog;
use crate::dataset::Dataset;
use crate::metric::MetricSpec;
use crate::window::WindowConfig;
use icfl_micro::Counters;
use icfl_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

/// Where windows sit on the clock and which of them are kept.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Hopping-window geometry.
    pub windows: WindowConfig,
    /// Scrape interval; window and hop must be multiples of it.
    pub interval: SimDuration,
    /// Window `k` spans `[anchor + k·hop, anchor + k·hop + window]`. The
    /// offline recorder anchors at the phase start (reproducing
    /// [`WindowConfig::windows_in`]); the streaming ingester anchors at
    /// time zero.
    pub anchor: SimTime,
    /// Windows *starting* before this instant are discarded (cluster
    /// warmup: queues filling, daemons settling).
    pub collect_from: SimTime,
    /// Windows *ending* after this instant are ignored, bounding an
    /// offline phase. `None` streams forever.
    pub collect_until: Option<SimTime>,
    /// How many finalized windows to retain: `None` keeps all (offline
    /// phases), `Some(n)` keeps a ring of the `n` most recent (online).
    pub retain: Option<usize>,
}

impl EngineConfig {
    /// Default scrape interval (1 s, Prometheus-style).
    pub const DEFAULT_INTERVAL: SimDuration = SimDuration::from_secs(1);

    /// Offline-phase configuration: windows anchored at `phase.0`,
    /// bounded by `phase.1`, all retained.
    pub fn offline(windows: WindowConfig, phase: (SimTime, SimTime)) -> Self {
        EngineConfig {
            windows,
            interval: EngineConfig::DEFAULT_INTERVAL,
            anchor: phase.0,
            collect_from: phase.0,
            collect_until: Some(phase.1),
            retain: None,
        }
    }

    /// Streaming configuration: windows anchored at time zero, warmup
    /// windows before `collect_from` discarded, a ring of `capacity`
    /// retained.
    pub fn streaming(windows: WindowConfig, capacity: usize, collect_from: SimTime) -> Self {
        EngineConfig {
            windows,
            interval: EngineConfig::DEFAULT_INTERVAL,
            anchor: SimTime::ZERO,
            collect_from,
            collect_until: None,
            retain: Some(capacity),
        }
    }
}

/// Whether a finalized window's rate values can be trusted.
///
/// The clean [`WindowEngine::push`] path only ever produces
/// [`Valid`](WindowValidity::Valid) windows; the degraded path flags
/// windows the telemetry failures actually touched, and only those.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WindowValidity {
    /// Both boundary scrapes arrived and no counter reset falls inside the
    /// window: rates are exact.
    Valid,
    /// A boundary scrape was dropped (or arrived after the watermark
    /// passed): rates cannot be computed and evaluate to `NaN`.
    MissingBoundary,
    /// A per-service counter reset (pod restart) happened inside the
    /// window: the delta across the restart undercounts, so the window is
    /// excluded from inference rather than reported as a false rate dip.
    CounterReset,
}

/// Counts of telemetry-degradation events the engine has absorbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DegradeStats {
    /// Deliveries discarded because their scrape time was already below
    /// the watermark (arrived later than the reorder slack allows).
    pub late_dropped: u64,
    /// Duplicate deliveries coalesced away (first delivery wins).
    pub duplicates_coalesced: u64,
    /// Per-service counter resets detected and re-based.
    pub resets_detected: u64,
    /// Windows finalized with a non-`Valid` validity flag.
    pub invalid_windows: u64,
}

impl DegradeStats {
    /// True when no degradation event has been observed (pristine stream).
    pub fn is_clean(&self) -> bool {
        *self == DegradeStats::default()
    }
}

/// One finalized window: its bounds, validity, and the two boundary
/// counter rows (absent when the boundary scrape never arrived).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct FinalizedWindow {
    end: SimTime,
    validity: WindowValidity,
    start_row: Option<Vec<Counters>>,
    end_row: Option<Vec<Counters>>,
}

impl FinalizedWindow {
    /// The metric value of this window for one service: the boundary-row
    /// delta rate when the window is valid, `NaN` otherwise.
    fn evaluate(&self, metric: MetricSpec, svc: usize, secs: f64) -> f64 {
        match (self.validity, &self.start_row, &self.end_row) {
            (WindowValidity::Valid, Some(start), Some(end)) => {
                metric.evaluate(&start[svc], &end[svc], secs)
            }
            _ => f64::NAN,
        }
    }
}

/// Per-service window series for one metric, tagged with the `emitted`
/// generation it was computed at.
type CachedSeries = (u64, Vec<Arc<Vec<f64>>>);

/// A serializable checkpoint of a [`WindowEngine`]'s entire state (the
/// memo cache excepted — it is rebuilt on demand). Restoring via
/// [`WindowEngine::from_snapshot`] continues the stream byte-identically.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineSnapshot {
    cfg: EngineConfig,
    num_services: usize,
    snaps: Vec<(SimTime, Vec<Counters>)>,
    finalized: Vec<FinalizedWindow>,
    emitted: u64,
    staged: Vec<(u64, Vec<Counters>)>,
    watermark: Option<u64>,
    next_boundary: u64,
    last_raw: Option<Vec<Counters>>,
    rebase: Vec<Counters>,
    reset_times: Vec<u64>,
    stats: DegradeStats,
}

/// The single hopping-window finalization implementation (see module docs).
pub struct WindowEngine {
    cfg: EngineConfig,
    num_services: usize,
    /// Recent raw snapshots spanning exactly one window length:
    /// `(scrape time, per-service counters)`, oldest first. On the
    /// degraded path the rows are reset-adjusted (monotone).
    snaps: VecDeque<(SimTime, Vec<Counters>)>,
    /// Finalized windows, oldest first, ring-capped by `cfg.retain`.
    finalized: VecDeque<FinalizedWindow>,
    /// Total windows finalized since creation (including evicted ones).
    emitted: u64,
    /// Memoized per-metric window series over the retained windows, tagged
    /// with the `emitted` generation they were computed at. Offline, all
    /// windows finalize before any evaluation, so the six Table II
    /// catalogs share one extraction per metric.
    cache: HashMap<MetricSpec, CachedSeries>,
    /// Degraded-path reorder buffer: deliveries staged by *scrape* time,
    /// waiting for the watermark to pass them.
    staged: BTreeMap<u64, Vec<Counters>>,
    /// Everything at or below this scrape time (nanos) has been processed;
    /// later deliveries of older scrapes are dropped. `None` until the
    /// first [`WindowEngine::advance_watermark`].
    watermark: Option<u64>,
    /// Next window-end boundary (nanos) the degraded path must decide.
    next_boundary: u64,
    /// Last raw (pre-rebase) scrape row, for reset detection.
    last_raw: Option<Vec<Counters>>,
    /// Per-service additive offset re-basing post-restart counters onto
    /// the pre-restart stream: adjusted = raw + rebase.
    rebase: Vec<Counters>,
    /// Scrape times at which a reset was detected; windows spanning one
    /// are flagged [`WindowValidity::CounterReset`].
    reset_times: Vec<u64>,
    stats: DegradeStats,
    /// Local observability tallies, flushed to the global `icfl-obs`
    /// journal on drop. Not part of [`EngineSnapshot`]: the memo-cache
    /// counters describe this process's evaluations and the flush base
    /// ensures checkpoint/restore never double-counts (the pre-checkpoint
    /// engine flushes up to the snapshot, the restored one flushes only
    /// its post-restore delta).
    obs: EngineObs,
}

/// Per-engine observability tallies plus the journal flush base (what the
/// snapshot this engine was restored from had already accounted for).
#[derive(Debug, Clone, Copy, Default)]
struct EngineObs {
    cache_hits: u64,
    cache_misses: u64,
    reorder_peak: u64,
    base_emitted: u64,
    base_stats: DegradeStats,
}

impl std::fmt::Debug for WindowEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WindowEngine")
            .field("emitted", &self.emitted)
            .field("retained", &self.finalized.len())
            .finish()
    }
}

impl WindowEngine {
    /// Creates an engine for `num_services` services.
    ///
    /// # Panics
    ///
    /// Panics if the interval is zero, the retention capacity is zero, or
    /// window/hop are not multiples of the scrape interval (window
    /// boundaries would fall between scrapes).
    pub fn new(cfg: EngineConfig, num_services: usize) -> WindowEngine {
        assert!(!cfg.interval.is_zero(), "scrape interval must be positive");
        assert!(cfg.retain != Some(0), "ring capacity must be positive");
        assert_eq!(
            cfg.windows.window.as_nanos() % cfg.interval.as_nanos(),
            0,
            "window must be a multiple of the scrape interval"
        );
        assert_eq!(
            cfg.windows.hop.as_nanos() % cfg.interval.as_nanos(),
            0,
            "hop must be a multiple of the scrape interval"
        );
        let first_end = cfg
            .anchor
            .as_nanos()
            .saturating_add(cfg.windows.window.as_nanos());
        WindowEngine {
            cfg,
            num_services,
            snaps: VecDeque::new(),
            finalized: VecDeque::new(),
            emitted: 0,
            cache: HashMap::new(),
            staged: BTreeMap::new(),
            watermark: None,
            next_boundary: first_end,
            last_raw: None,
            rebase: vec![Counters::default(); num_services],
            reset_times: Vec::new(),
            stats: DegradeStats::default(),
            obs: EngineObs::default(),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Feeds one scrape: `row[s]` is the counter snapshot of service `s`
    /// at `now`. Finalizes the window ending at `now`, if any, and prunes
    /// snapshots no future window can start at.
    ///
    /// This is the clean in-order path; for lossy/reordered streams use
    /// [`WindowEngine::ingest`] + [`WindowEngine::advance_watermark`].
    pub fn push(&mut self, now: SimTime, row: Vec<Counters>) {
        let window = self.cfg.windows.window;
        let hop = self.cfg.windows.hop;
        let anchor = self.cfg.anchor;
        self.snaps.push_back((now, row));
        // A window `[now − window, now]` closes at this scrape iff its end
        // is `anchor + window + k·hop` for some k ≥ 0 — the boundaries
        // `WindowConfig::windows_in` enumerates from `anchor`.
        let first_end = anchor.as_nanos().saturating_add(window.as_nanos());
        if now.as_nanos() >= first_end
            && (now.as_nanos() - first_end).is_multiple_of(hop.as_nanos())
        {
            let start = now.as_nanos() - window.as_nanos();
            let in_phase = self
                .cfg
                .collect_until
                .is_none_or(|until| now.as_nanos() <= until.as_nanos());
            if start >= self.cfg.collect_from.as_nanos() && in_phase {
                self.finalize_window(now);
            }
        }
        // Drop snapshots no future window can start at: every boundary
        // after `now` ends at `> now`, so its start lies at `> now − window`,
        // and starts sit on the scrape grid — the oldest start still
        // reachable is `now − window + interval`.
        let keep_from = now.as_nanos() as i128 + self.cfg.interval.as_nanos() as i128
            - window.as_nanos() as i128;
        while let Some(front) = self.snaps.front() {
            if (front.0.as_nanos() as i128) < keep_from {
                self.snaps.pop_front();
            } else {
                break;
            }
        }
    }

    fn finalize_window(&mut self, end: SimTime) {
        let start_nanos = end.as_nanos() - self.cfg.windows.window.as_nanos();
        let Some(start_row) = self
            .snaps
            .iter()
            .find(|(t, _)| t.as_nanos() == start_nanos)
            .map(|(_, row)| row.clone())
        else {
            // No snapshot at the window start (collection began
            // mid-stream); skip — only possible for the very first partial
            // window.
            return;
        };
        let end_row = self
            .snaps
            .back()
            .map(|(_, row)| row.clone())
            .expect("the closing scrape was just pushed");
        self.record_window(FinalizedWindow {
            end,
            validity: WindowValidity::Valid,
            start_row: Some(start_row),
            end_row: Some(end_row),
        });
    }

    fn record_window(&mut self, w: FinalizedWindow) {
        if w.validity != WindowValidity::Valid {
            self.stats.invalid_windows += 1;
        }
        if let Some(cap) = self.cfg.retain {
            if self.finalized.len() == cap {
                self.finalized.pop_front();
            }
        }
        self.finalized.push_back(w);
        self.emitted += 1;
    }

    /// Stages one delivered scrape on the degraded path: `row[s]` is the
    /// counter snapshot of service `s` *taken* at `at` (delivery may be
    /// later). Returns `false` when the delivery was discarded — a
    /// duplicate of an already-staged or already-processed scrape, or a
    /// late arrival below the watermark.
    ///
    /// Nothing is processed until [`WindowEngine::advance_watermark`]
    /// passes the scrape time.
    pub fn ingest(&mut self, at: SimTime, row: Vec<Counters>) -> bool {
        let at_n = at.as_nanos();
        if self.watermark.is_some_and(|w| at_n <= w) {
            // Either a duplicate of a processed scrape or a hopelessly
            // late delivery; the watermark contract says it must not
            // rewrite history either way.
            if self.staged.contains_key(&at_n) {
                self.stats.duplicates_coalesced += 1;
            } else {
                self.stats.late_dropped += 1;
            }
            return false;
        }
        match self.staged.entry(at_n) {
            std::collections::btree_map::Entry::Occupied(_) => {
                self.stats.duplicates_coalesced += 1;
                false
            }
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(row);
                self.obs.reorder_peak = self.obs.reorder_peak.max(self.staged.len() as u64);
                true
            }
        }
    }

    /// Declares that every scrape taken at or before `to` has either been
    /// delivered ([`WindowEngine::ingest`]) or never will be: processes the
    /// staged scrapes in time order (detecting and re-basing counter
    /// resets) and finalizes every window boundary up to `to`, flagging
    /// windows whose boundary scrape is missing or which span a reset.
    ///
    /// Callers derive `to` from the delivery slack of their telemetry
    /// source: `now − max_delivery_delay`.
    pub fn advance_watermark(&mut self, to: SimTime) {
        let to_n = to.as_nanos();
        if self.watermark.is_some_and(|w| to_n <= w) {
            return;
        }
        let later = self.staged.split_off(&to_n.saturating_add(1));
        let due = std::mem::replace(&mut self.staged, later);
        for (t, raw) in due {
            // Decide boundaries strictly before this scrape first, so the
            // snapshot at a boundary is inserted before the boundary's own
            // decision, mirroring the clean path's push-then-finalize.
            self.decide_boundaries(t, false);
            self.apply_scrape(t, raw);
        }
        self.decide_boundaries(to_n, true);
        self.watermark = Some(to_n);
    }

    /// Processes one scrape on the degraded path: reset-detect, re-base,
    /// append to the snapshot deque (times arrive strictly ascending).
    fn apply_scrape(&mut self, t: u64, raw: Vec<Counters>) {
        if let Some(last) = &self.last_raw {
            let mut any_reset = false;
            for svc in 0..self.num_services.min(raw.len()).min(last.len()) {
                if raw[svc].any_field_less(&last[svc]) {
                    // Counter went backwards: the pod restarted. Re-base so
                    // the adjusted stream stays monotone; windows spanning
                    // this instant are flagged instead of trusted.
                    self.rebase[svc] = last[svc].saturating_add_fields(&self.rebase[svc]);
                    self.stats.resets_detected += 1;
                    any_reset = true;
                }
            }
            if any_reset {
                self.reset_times.push(t);
            }
        }
        let adjusted: Vec<Counters> = raw
            .iter()
            .zip(&self.rebase)
            .map(|(r, base)| r.saturating_add_fields(base))
            .collect();
        self.last_raw = Some(raw);
        self.snaps.push_back((SimTime::from_nanos(t), adjusted));
    }

    /// Finalizes every undecided boundary `b` with `b < limit` (or
    /// `b ≤ limit` when `inclusive`), then prunes snapshots and reset
    /// marks no later window can reference.
    fn decide_boundaries(&mut self, limit: u64, inclusive: bool) {
        let window_n = self.cfg.windows.window.as_nanos();
        let hop_n = self.cfg.windows.hop.as_nanos();
        while self.next_boundary < limit || (inclusive && self.next_boundary == limit) {
            let b = self.next_boundary;
            let start = b - window_n;
            let in_phase = self
                .cfg
                .collect_until
                .is_none_or(|until| b <= until.as_nanos());
            if start >= self.cfg.collect_from.as_nanos() && in_phase {
                let start_row = self
                    .snaps
                    .iter()
                    .find(|(t, _)| t.as_nanos() == start)
                    .map(|(_, row)| row.clone());
                let end_row = self
                    .snaps
                    .iter()
                    .rev()
                    .find(|(t, _)| t.as_nanos() == b)
                    .map(|(_, row)| row.clone());
                let validity = if start_row.is_none() || end_row.is_none() {
                    WindowValidity::MissingBoundary
                } else if self.reset_times.iter().any(|&r| r > start && r <= b) {
                    WindowValidity::CounterReset
                } else {
                    WindowValidity::Valid
                };
                self.record_window(FinalizedWindow {
                    end: SimTime::from_nanos(b),
                    validity,
                    start_row,
                    end_row,
                });
            }
            // The next boundary ends at b + hop and starts at
            // b + hop − window: older snapshots and reset marks are dead.
            let keep_from = b as i128 + hop_n as i128 - window_n as i128;
            while let Some(front) = self.snaps.front() {
                if (front.0.as_nanos() as i128) < keep_from {
                    self.snaps.pop_front();
                } else {
                    break;
                }
            }
            self.reset_times.retain(|&r| (r as i128) > keep_from);
            self.next_boundary = b.saturating_add(hop_n);
        }
    }

    /// Total windows finalized since creation (monotonic; includes windows
    /// already evicted from the ring).
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Windows currently retained.
    pub fn retained(&self) -> usize {
        self.finalized.len()
    }

    /// End time of the newest finalized window, if any.
    pub fn newest_window_end(&self) -> Option<SimTime> {
        self.finalized.back().map(|w| w.end)
    }

    /// End time and validity of every retained window, oldest first.
    pub fn retained_windows(&self) -> Vec<(SimTime, WindowValidity)> {
        self.finalized.iter().map(|w| (w.end, w.validity)).collect()
    }

    /// Degradation events absorbed so far (all zero on the clean path).
    pub fn degrade_stats(&self) -> DegradeStats {
        self.stats
    }

    /// The boundary counter row of `service` at `at`, if `at` is a start
    /// or end boundary of a retained window. This is all the raw telemetry
    /// the engine keeps — the full scrape log is never stored.
    pub fn boundary_counters(&self, service: usize, at: SimTime) -> Option<Counters> {
        self.finalized.iter().find_map(|w| {
            if w.end == at {
                w.end_row.as_ref().and_then(|row| row.get(service).copied())
            } else if w.end.as_nanos() - self.cfg.windows.window.as_nanos() == at.as_nanos() {
                w.start_row
                    .as_ref()
                    .and_then(|row| row.get(service).copied())
            } else {
                None
            }
        })
    }

    /// The per-service window series of one metric over every retained
    /// window, memoized until the next finalization.
    fn series(&mut self, metric: MetricSpec) -> Vec<Arc<Vec<f64>>> {
        if let Some((generation, series)) = self.cache.get(&metric) {
            if *generation == self.emitted {
                self.obs.cache_hits += 1;
                return series.clone();
            }
        }
        self.obs.cache_misses += 1;
        let secs = self.cfg.windows.window.as_secs_f64();
        let mut per_service: Vec<Vec<f64>> =
            vec![Vec::with_capacity(self.finalized.len()); self.num_services];
        for w in &self.finalized {
            for (svc, series) in per_service.iter_mut().enumerate() {
                series.push(w.evaluate(metric, svc, secs));
            }
        }
        let shared: Vec<Arc<Vec<f64>>> = per_service.into_iter().map(Arc::new).collect();
        self.cache.insert(metric, (self.emitted, shared.clone()));
        shared
    }

    /// Evaluates `catalog` over every retained window. Series are shared
    /// (`Arc`) across catalogs that contain the same metric. Non-valid
    /// windows contribute `NaN` samples.
    pub fn dataset(&mut self, catalog: &MetricCatalog) -> Dataset {
        let values = catalog
            .metrics()
            .iter()
            .map(|metric| self.series(*metric))
            .collect();
        Dataset::from_shared(catalog.metric_names(), values)
    }

    /// Evaluates `catalog` over the `n` most recent retained windows
    /// (`None` until `n` windows are retained). Non-valid windows in the
    /// range contribute `NaN` samples; gap-aware consumers should prefer
    /// [`WindowEngine::last_n_valid`].
    pub fn last_n(&mut self, catalog: &MetricCatalog, n: usize) -> Option<Dataset> {
        let have = self.finalized.len();
        if n == 0 || have < n {
            return None;
        }
        self.window_dataset(catalog, (have - n..have).collect())
    }

    /// Evaluates `catalog` over the `n` most recent retained **valid**
    /// windows, skipping windows whose telemetry was degraded (`None`
    /// until `n` valid windows are retained). On a clean stream every
    /// window is valid, so this is exactly [`WindowEngine::last_n`].
    pub fn last_n_valid(&mut self, catalog: &MetricCatalog, n: usize) -> Option<Dataset> {
        if n == 0 {
            return None;
        }
        let valid: Vec<usize> = self
            .finalized
            .iter()
            .enumerate()
            .filter(|(_, w)| w.validity == WindowValidity::Valid)
            .map(|(i, _)| i)
            .collect();
        if valid.len() < n {
            return None;
        }
        self.window_dataset(catalog, valid[valid.len() - n..].to_vec())
    }

    /// Evaluates `catalog` over the retained windows at `indices`.
    fn window_dataset(&mut self, catalog: &MetricCatalog, indices: Vec<usize>) -> Option<Dataset> {
        let secs = self.cfg.windows.window.as_secs_f64();
        let values: Vec<Vec<Vec<f64>>> = catalog
            .metrics()
            .iter()
            .map(|metric| {
                (0..self.num_services)
                    .map(|svc| {
                        indices
                            .iter()
                            .map(|&i| self.finalized[i].evaluate(*metric, svc, secs))
                            .collect()
                    })
                    .collect()
            })
            .collect();
        Some(Dataset::new(catalog.metric_names(), values))
    }

    /// Serializes the engine's entire state (minus the rebuildable memo
    /// cache) for crash-safe checkpointing.
    pub fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot {
            cfg: self.cfg,
            num_services: self.num_services,
            snaps: self.snaps.iter().cloned().collect(),
            finalized: self.finalized.iter().cloned().collect(),
            emitted: self.emitted,
            staged: self
                .staged
                .iter()
                .map(|(t, row)| (*t, row.clone()))
                .collect(),
            watermark: self.watermark,
            next_boundary: self.next_boundary,
            last_raw: self.last_raw.clone(),
            rebase: self.rebase.clone(),
            reset_times: self.reset_times.clone(),
            stats: self.stats,
        }
    }

    /// Restores an engine from a [`WindowEngine::snapshot`]; the restored
    /// engine continues the stream byte-identically to the original.
    pub fn from_snapshot(snap: EngineSnapshot) -> WindowEngine {
        WindowEngine {
            cfg: snap.cfg,
            num_services: snap.num_services,
            snaps: snap.snaps.into(),
            finalized: snap.finalized.into(),
            emitted: snap.emitted,
            cache: HashMap::new(),
            staged: snap.staged.into_iter().collect(),
            watermark: snap.watermark,
            next_boundary: snap.next_boundary,
            last_raw: snap.last_raw,
            rebase: snap.rebase,
            reset_times: snap.reset_times,
            stats: snap.stats,
            obs: EngineObs {
                // The engine this snapshot came from flushed everything up
                // to the snapshot when it dropped; only the delta from
                // here is this engine's to report.
                base_emitted: snap.emitted,
                base_stats: snap.stats,
                ..EngineObs::default()
            },
        }
    }
}

impl Drop for WindowEngine {
    /// Flushes this engine's journal deltas to the global `icfl-obs`
    /// collector. Every value is a deterministic function of the scrape
    /// stream, so the journal totals are independent of worker-thread
    /// count and scheduling order.
    fn drop(&mut self) {
        let windows = self.emitted.saturating_sub(self.obs.base_emitted);
        let invalid = self
            .stats
            .invalid_windows
            .saturating_sub(self.obs.base_stats.invalid_windows);
        let late = self
            .stats
            .late_dropped
            .saturating_sub(self.obs.base_stats.late_dropped);
        let dups = self
            .stats
            .duplicates_coalesced
            .saturating_sub(self.obs.base_stats.duplicates_coalesced);
        let resets = self
            .stats
            .resets_detected
            .saturating_sub(self.obs.base_stats.resets_detected);
        for (name, v) in [
            ("icfl_window_engines_total", 1),
            ("icfl_windows_finalized_total", windows),
            ("icfl_windows_invalid_total", invalid),
            ("icfl_scrapes_late_dropped_total", late),
            ("icfl_scrapes_duplicate_total", dups),
            ("icfl_counter_resets_total", resets),
            ("icfl_window_cache_hits_total", self.obs.cache_hits),
            ("icfl_window_cache_misses_total", self.obs.cache_misses),
        ] {
            if v > 0 {
                icfl_obs::counter_add(name, &[], v);
            }
        }
        if self.obs.reorder_peak > 0 {
            icfl_obs::gauge_max("icfl_reorder_depth_peak", &[], self.obs.reorder_peak);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::RawMetric;
    use icfl_micro::Counters;

    /// A synthetic scrape row: every service's rx counter is `t·s + t`.
    fn row(t: u64, services: usize) -> Vec<Counters> {
        (0..services)
            .map(|s| Counters {
                rx_packets: t * s as u64 + t,
                ..Counters::default()
            })
            .collect()
    }

    fn drive(engine: &mut WindowEngine, services: usize, secs: u64) {
        for t in 0..=secs {
            engine.push(SimTime::from_secs(t), row(t, services));
        }
    }

    fn rx_catalog() -> MetricCatalog {
        MetricCatalog::new("rx", vec![MetricSpec::Raw(RawMetric::RxPackets)])
    }

    #[test]
    fn zero_anchor_matches_windows_in_enumeration() {
        let windows = WindowConfig::from_secs(10, 5);
        let mut engine = WindowEngine::new(EngineConfig::streaming(windows, 64, SimTime::ZERO), 2);
        drive(&mut engine, 2, 60);
        let expected = windows.windows_in(SimTime::ZERO, SimTime::from_secs(60));
        assert_eq!(engine.emitted(), expected.len() as u64);
        assert_eq!(engine.newest_window_end(), Some(SimTime::from_secs(60)));
    }

    #[test]
    fn phase_anchor_bounds_and_offsets_windows() {
        // Phase [7 s, 37 s] with 10 s/5 s windows: starts 7, 12, 17, 22, 27.
        let windows = WindowConfig::from_secs(10, 5);
        let phase = (SimTime::from_secs(7), SimTime::from_secs(37));
        let mut cfg = EngineConfig::offline(windows, phase);
        // Keep boundaries on the scrape grid for this off-by-7 anchor.
        cfg.interval = SimDuration::from_secs(1);
        let mut engine = WindowEngine::new(cfg, 1);
        drive(&mut engine, 1, 60);
        assert_eq!(
            engine.emitted(),
            windows.windows_in(phase.0, phase.1).len() as u64
        );
        // No window starts before the phase or ends after it.
        assert_eq!(engine.newest_window_end(), Some(SimTime::from_secs(37)));
    }

    #[test]
    fn rate_values_come_from_boundary_rows() {
        let windows = WindowConfig::from_secs(10, 5);
        let mut engine = WindowEngine::new(EngineConfig::streaming(windows, 64, SimTime::ZERO), 1);
        drive(&mut engine, 1, 20);
        let ds = engine.dataset(&rx_catalog());
        // rx grows by 1 per second → rate 1.0 in every window.
        assert_eq!(ds.num_windows(), 3);
        for &v in ds.samples(0, icfl_micro::ServiceId::from_index(0)) {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn ring_retention_and_last_n() {
        let windows = WindowConfig::from_secs(10, 5);
        let mut engine = WindowEngine::new(EngineConfig::streaming(windows, 4, SimTime::ZERO), 1);
        drive(&mut engine, 1, 90);
        assert_eq!(engine.emitted(), 17);
        assert_eq!(engine.retained(), 4);
        let catalog = rx_catalog();
        assert!(engine.last_n(&catalog, 5).is_none());
        assert_eq!(engine.last_n(&catalog, 4).unwrap().num_windows(), 4);
    }

    #[test]
    fn warmup_windows_are_discarded() {
        let windows = WindowConfig::from_secs(10, 5);
        let mut engine = WindowEngine::new(
            EngineConfig::streaming(windows, 32, SimTime::from_secs(30)),
            1,
        );
        drive(&mut engine, 1, 60);
        // Only windows starting at ≥ 30 s survive: starts 30..=50 → 5.
        assert_eq!(engine.emitted(), 5);
    }

    #[test]
    fn series_cache_is_invalidated_by_new_windows() {
        let windows = WindowConfig::from_secs(10, 5);
        let mut engine = WindowEngine::new(EngineConfig::streaming(windows, 64, SimTime::ZERO), 1);
        drive(&mut engine, 1, 20);
        let catalog = rx_catalog();
        assert_eq!(engine.dataset(&catalog).num_windows(), 3);
        for t in 21..=25 {
            engine.push(SimTime::from_secs(t), row(t, 1));
        }
        assert_eq!(engine.dataset(&catalog).num_windows(), 4);
    }

    #[test]
    fn boundary_counters_serve_retained_boundaries_only() {
        let windows = WindowConfig::from_secs(10, 5);
        let mut engine = WindowEngine::new(EngineConfig::streaming(windows, 64, SimTime::ZERO), 1);
        drive(&mut engine, 1, 20);
        assert!(engine
            .boundary_counters(0, SimTime::from_secs(20))
            .is_some());
        assert!(engine.boundary_counters(0, SimTime::from_secs(3)).is_none());
    }

    #[test]
    #[should_panic(expected = "multiple of the scrape interval")]
    fn misaligned_hop_panics() {
        let mut cfg = EngineConfig::streaming(WindowConfig::from_secs(10, 5), 4, SimTime::ZERO);
        cfg.interval = SimDuration::from_secs(3);
        let _ = WindowEngine::new(cfg, 1);
    }

    #[test]
    #[should_panic(expected = "ring capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = WindowEngine::new(
            EngineConfig::streaming(WindowConfig::from_secs(10, 5), 0, SimTime::ZERO),
            1,
        );
    }

    // ---- degraded path ----

    fn streaming_pair(capacity: usize) -> (WindowEngine, WindowEngine) {
        let cfg = EngineConfig::streaming(WindowConfig::from_secs(10, 5), capacity, SimTime::ZERO);
        (WindowEngine::new(cfg, 2), WindowEngine::new(cfg, 2))
    }

    #[test]
    fn in_order_ingest_equals_push() {
        let (mut clean, mut degraded) = streaming_pair(64);
        for t in 0..=60u64 {
            clean.push(SimTime::from_secs(t), row(t, 2));
            assert!(degraded.ingest(SimTime::from_secs(t), row(t, 2)));
            degraded.advance_watermark(SimTime::from_secs(t));
        }
        assert_eq!(clean.emitted(), degraded.emitted());
        assert_eq!(clean.retained_windows(), degraded.retained_windows());
        let catalog = rx_catalog();
        let a = serde_json::to_string(&clean.dataset(&catalog)).unwrap();
        let b = serde_json::to_string(&degraded.dataset(&catalog)).unwrap();
        assert_eq!(a, b, "clean and degraded paths must agree byte-for-byte");
        assert!(degraded.degrade_stats().is_clean());
    }

    #[test]
    fn reordered_delivery_within_slack_matches_clean() {
        let (mut clean, mut degraded) = streaming_pair(64);
        for t in 0..=60u64 {
            clean.push(SimTime::from_secs(t), row(t, 2));
        }
        // Deliver scrapes in pairs swapped (1,0), (3,2), … — out of order
        // but never more than one interval late. The watermark only
        // advances once a pair is complete, honoring the delivery slack.
        let order: Vec<u64> = (0..=60).collect();
        for pair in order.chunks(2) {
            for &t in pair.iter().rev() {
                degraded.ingest(SimTime::from_secs(t), row(t, 2));
            }
            degraded.advance_watermark(SimTime::from_secs(*pair.last().unwrap()));
        }
        let catalog = rx_catalog();
        let a = serde_json::to_string(&clean.dataset(&catalog)).unwrap();
        let b = serde_json::to_string(&degraded.dataset(&catalog)).unwrap();
        assert_eq!(a, b);
        assert!(degraded.degrade_stats().is_clean());
    }

    #[test]
    fn dropped_boundary_marks_exactly_the_affected_windows() {
        let (mut clean, mut degraded) = streaming_pair(64);
        for t in 0..=40u64 {
            clean.push(SimTime::from_secs(t), row(t, 2));
            if t != 20 {
                degraded.ingest(SimTime::from_secs(t), row(t, 2));
            }
            degraded.advance_watermark(SimTime::from_secs(t));
        }
        // t=20 is the end boundary of [10,20] and the start of [20,30]:
        // exactly those two windows are invalid, all others match clean.
        let validity = degraded.retained_windows();
        assert_eq!(validity.len(), clean.retained_windows().len());
        for (end, v) in &validity {
            let expected = if end.as_secs_f64() as u64 == 20 || end.as_secs_f64() as u64 == 30 {
                WindowValidity::MissingBoundary
            } else {
                WindowValidity::Valid
            };
            assert_eq!(*v, expected, "window ending at {end}");
        }
        assert_eq!(degraded.degrade_stats().invalid_windows, 2);
        // Untouched windows evaluate identically; invalid ones are NaN.
        let catalog = rx_catalog();
        let c = clean.dataset(&catalog);
        let d = degraded.dataset(&catalog);
        let svc = icfl_micro::ServiceId::from_index(0);
        for (i, (cv, dv)) in c.samples(0, svc).iter().zip(d.samples(0, svc)).enumerate() {
            if validity[i].1 == WindowValidity::Valid {
                assert_eq!(cv.to_bits(), dv.to_bits());
            } else {
                assert!(dv.is_nan());
            }
        }
    }

    #[test]
    fn duplicates_coalesce_first_delivery_wins() {
        let (mut clean, mut degraded) = streaming_pair(64);
        for t in 0..=30u64 {
            clean.push(SimTime::from_secs(t), row(t, 2));
            assert!(degraded.ingest(SimTime::from_secs(t), row(t, 2)));
            // A corrupted duplicate delivered immediately after must lose.
            assert!(!degraded.ingest(SimTime::from_secs(t), row(t + 999, 2)));
            degraded.advance_watermark(SimTime::from_secs(t));
        }
        assert_eq!(degraded.degrade_stats().duplicates_coalesced, 31);
        let catalog = rx_catalog();
        let a = serde_json::to_string(&clean.dataset(&catalog)).unwrap();
        let b = serde_json::to_string(&degraded.dataset(&catalog)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn late_arrivals_below_watermark_are_dropped() {
        let (_, mut degraded) = streaming_pair(64);
        for t in 0..=20u64 {
            degraded.ingest(SimTime::from_secs(t), row(t, 2));
            degraded.advance_watermark(SimTime::from_secs(t));
        }
        assert!(!degraded.ingest(SimTime::from_secs(5), row(5, 2)));
        assert_eq!(degraded.degrade_stats().late_dropped, 1);
    }

    #[test]
    fn counter_reset_flags_spanning_windows_and_rebases_after() {
        let (mut clean, mut degraded) = streaming_pair(64);
        // Service 0 restarts at t=23: its counters re-base to zero there.
        let restart = 23u64;
        for t in 0..=60u64 {
            clean.push(SimTime::from_secs(t), row(t, 2));
            let mut r = row(t, 2);
            if t >= restart {
                r[0] = r[0].saturating_sub_fields(&row(restart, 2)[0]);
            }
            degraded.ingest(SimTime::from_secs(t), r);
            degraded.advance_watermark(SimTime::from_secs(t));
        }
        assert_eq!(degraded.degrade_stats().resets_detected, 1);
        let catalog = rx_catalog();
        let c = clean.dataset(&catalog);
        let d = degraded.dataset(&catalog);
        let svc = icfl_micro::ServiceId::from_index(0);
        for (i, (end, v)) in degraded.retained_windows().iter().enumerate() {
            let end_s = end.as_secs_f64() as u64;
            if end_s.saturating_sub(10) < restart && restart <= end_s {
                assert_eq!(*v, WindowValidity::CounterReset, "window ending at {end}");
                assert!(d.samples(0, svc)[i].is_nan());
            } else {
                assert_eq!(*v, WindowValidity::Valid, "window ending at {end}");
                // Fully pre- or post-reset windows are byte-equal to clean:
                // the restart base cancels in the boundary delta.
                assert_eq!(
                    c.samples(0, svc)[i].to_bits(),
                    d.samples(0, svc)[i].to_bits(),
                    "window ending at {end}"
                );
            }
        }
    }

    #[test]
    fn last_n_valid_skips_degraded_windows() {
        let (_, mut degraded) = streaming_pair(64);
        for t in 0..=40u64 {
            if t != 20 {
                degraded.ingest(SimTime::from_secs(t), row(t, 2));
            }
            degraded.advance_watermark(SimTime::from_secs(t));
        }
        let catalog = rx_catalog();
        // 7 windows retained, 2 invalid → last_n_valid(5) exists and is
        // NaN-free, while last_n(7) contains the NaN windows.
        let valid = degraded.last_n_valid(&catalog, 5).unwrap();
        let svc = icfl_micro::ServiceId::from_index(0);
        assert!(valid.samples(0, svc).iter().all(|v| v.is_finite()));
        assert!(degraded.last_n_valid(&catalog, 6).is_none());
        let raw = degraded.last_n(&catalog, 7).unwrap();
        assert!(raw.samples(0, svc).iter().any(|v| v.is_nan()));
    }

    #[test]
    fn snapshot_roundtrip_continues_byte_identically() {
        let cfg = EngineConfig::streaming(WindowConfig::from_secs(10, 5), 8, SimTime::ZERO);
        let mut whole = WindowEngine::new(cfg, 2);
        let mut half = WindowEngine::new(cfg, 2);
        for t in 0..=33u64 {
            for e in [&mut whole, &mut half] {
                if t % 7 != 3 {
                    e.ingest(SimTime::from_secs(t), row(t, 2));
                }
                e.advance_watermark(SimTime::from_secs(t.saturating_sub(2)));
            }
        }
        let json = serde_json::to_string(&half.snapshot()).unwrap();
        let mut restored = WindowEngine::from_snapshot(serde_json::from_str(&json).unwrap());
        for t in 34..=80u64 {
            for e in [&mut whole, &mut restored] {
                if t % 7 != 3 {
                    e.ingest(SimTime::from_secs(t), row(t, 2));
                }
                e.advance_watermark(SimTime::from_secs(t.saturating_sub(2)));
            }
        }
        assert_eq!(whole.retained_windows(), restored.retained_windows());
        assert_eq!(whole.degrade_stats(), restored.degrade_stats());
        let catalog = rx_catalog();
        let a = serde_json::to_string(&whole.dataset(&catalog)).unwrap();
        let b = serde_json::to_string(&restored.dataset(&catalog)).unwrap();
        assert_eq!(a, b);
    }
}
