//! A small time-series type with the transformations an SRE applies before
//! eyeballing or testing telemetry: differencing, rates, moving averages,
//! EWMA smoothing, and alignment.
//!
//! [`Recorder::dataset`](crate::Recorder::dataset) covers the paper's fixed
//! hopping-window pipeline; `TimeSeries` supports ad-hoc analysis (the
//! Fig. 2 investigation, examples, and notebook-style exploration).

use icfl_sim::SimTime;
use serde::{Deserialize, Serialize};

/// One observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimePoint {
    /// Observation instant.
    pub time: SimTime,
    /// Observed value.
    pub value: f64,
}

/// A time-ordered series of `f64` observations.
///
/// # Examples
///
/// ```
/// use icfl_sim::SimTime;
/// use icfl_telemetry::TimeSeries;
///
/// let ts = TimeSeries::from_values(
///     (0..5).map(|i| (SimTime::from_secs(i), (i * i) as f64)),
/// );
/// let diffs = ts.difference();
/// assert_eq!(diffs.values(), vec![1.0, 3.0, 5.0, 7.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<TimePoint>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> TimeSeries {
        TimeSeries::default()
    }

    /// Builds a series from `(time, value)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if the pairs are not strictly increasing in time.
    pub fn from_values(pairs: impl IntoIterator<Item = (SimTime, f64)>) -> TimeSeries {
        let mut ts = TimeSeries::new();
        for (time, value) in pairs {
            ts.push(time, value);
        }
        ts
    }

    /// Appends an observation.
    ///
    /// # Panics
    ///
    /// Panics if `time` is not after the last observation.
    pub fn push(&mut self, time: SimTime, value: f64) {
        if let Some(last) = self.points.last() {
            assert!(
                time > last.time,
                "observations must be strictly time-ordered"
            );
        }
        self.points.push(TimePoint { time, value });
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the series has no observations.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The observations, in order.
    pub fn points(&self) -> &[TimePoint] {
        &self.points
    }

    /// Just the values, in order.
    pub fn values(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.value).collect()
    }

    /// The sub-series within `[from, to)`.
    pub fn slice(&self, from: SimTime, to: SimTime) -> TimeSeries {
        TimeSeries {
            points: self
                .points
                .iter()
                .filter(|p| p.time >= from && p.time < to)
                .copied()
                .collect(),
        }
    }

    /// First differences `v[i+1] − v[i]`, stamped at the later time.
    pub fn difference(&self) -> TimeSeries {
        TimeSeries {
            points: self
                .points
                .windows(2)
                .map(|w| TimePoint {
                    time: w[1].time,
                    value: w[1].value - w[0].value,
                })
                .collect(),
        }
    }

    /// Per-second rate `(v[i+1] − v[i]) / Δt`, stamped at the later time —
    /// turns a cumulative counter into a rate series.
    pub fn rate(&self) -> TimeSeries {
        TimeSeries {
            points: self
                .points
                .windows(2)
                .map(|w| {
                    let dt = (w[1].time - w[0].time).as_secs_f64();
                    TimePoint {
                        time: w[1].time,
                        value: (w[1].value - w[0].value) / dt,
                    }
                })
                .collect(),
        }
    }

    /// Centered-start moving average over `window` observations (stamped at
    /// the window's last time). Returns an empty series when `window == 0`
    /// or exceeds the length.
    pub fn moving_average(&self, window: usize) -> TimeSeries {
        if window == 0 || window > self.points.len() {
            return TimeSeries::new();
        }
        TimeSeries {
            points: self
                .points
                .windows(window)
                .map(|w| TimePoint {
                    time: w[window - 1].time,
                    value: w.iter().map(|p| p.value).sum::<f64>() / window as f64,
                })
                .collect(),
        }
    }

    /// Exponentially weighted moving average with smoothing factor
    /// `alpha ∈ (0, 1]` (1 = no smoothing).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn ewma(&self, alpha: f64) -> TimeSeries {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        let mut out = Vec::with_capacity(self.points.len());
        let mut state: Option<f64> = None;
        for p in &self.points {
            let next = match state {
                None => p.value,
                Some(prev) => alpha * p.value + (1.0 - alpha) * prev,
            };
            state = Some(next);
            out.push(TimePoint {
                time: p.time,
                value: next,
            });
        }
        TimeSeries { points: out }
    }

    /// Pairs this series with `other` at exactly-equal timestamps.
    pub fn align(&self, other: &TimeSeries) -> Vec<(SimTime, f64, f64)> {
        let mut out = Vec::new();
        let mut j = 0;
        for p in &self.points {
            while j < other.points.len() && other.points[j].time < p.time {
                j += 1;
            }
            if j < other.points.len() && other.points[j].time == p.time {
                out.push((p.time, p.value, other.points[j].value));
            }
        }
        out
    }
}

impl FromIterator<(SimTime, f64)> for TimeSeries {
    fn from_iter<T: IntoIterator<Item = (SimTime, f64)>>(iter: T) -> Self {
        TimeSeries::from_values(iter)
    }
}

impl Extend<(SimTime, f64)> for TimeSeries {
    fn extend<T: IntoIterator<Item = (SimTime, f64)>>(&mut self, iter: T) {
        for (t, v) in iter {
            self.push(t, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(series: &[(u64, f64)]) -> TimeSeries {
        TimeSeries::from_values(series.iter().map(|&(t, v)| (SimTime::from_secs(t), v)))
    }

    #[test]
    fn push_enforces_time_order() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_secs(1), 1.0);
        ts.push(SimTime::from_secs(2), 2.0);
        assert_eq!(ts.len(), 2);
        assert!(!ts.is_empty());
    }

    #[test]
    #[should_panic(expected = "strictly time-ordered")]
    fn out_of_order_push_panics() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_secs(2), 1.0);
        ts.push(SimTime::from_secs(1), 2.0);
    }

    #[test]
    fn rate_converts_counters() {
        // Counter rising 10/s scraped every 2 s.
        let ts = secs(&[(0, 0.0), (2, 20.0), (4, 40.0)]);
        let r = ts.rate();
        assert_eq!(r.values(), vec![10.0, 10.0]);
        assert_eq!(r.points()[0].time, SimTime::from_secs(2));
    }

    #[test]
    fn slice_is_half_open() {
        let ts = secs(&[(0, 0.0), (1, 1.0), (2, 2.0), (3, 3.0)]);
        let s = ts.slice(SimTime::from_secs(1), SimTime::from_secs(3));
        assert_eq!(s.values(), vec![1.0, 2.0]);
    }

    #[test]
    fn moving_average_smooths() {
        let ts = secs(&[(0, 0.0), (1, 10.0), (2, 0.0), (3, 10.0)]);
        let ma = ts.moving_average(2);
        assert_eq!(ma.values(), vec![5.0, 5.0, 5.0]);
        assert!(ts.moving_average(0).is_empty());
        assert!(ts.moving_average(9).is_empty());
    }

    #[test]
    fn ewma_converges_to_constant() {
        let ts = secs(&[(0, 10.0), (1, 10.0), (2, 10.0)]);
        assert_eq!(ts.ewma(0.5).values(), vec![10.0, 10.0, 10.0]);
        let step = secs(&[(0, 0.0), (1, 10.0), (2, 10.0)]);
        let sm = step.ewma(0.5).values();
        assert_eq!(sm[0], 0.0);
        assert_eq!(sm[1], 5.0);
        assert_eq!(sm[2], 7.5);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_bad_alpha() {
        secs(&[(0, 1.0)]).ewma(0.0);
    }

    #[test]
    fn align_matches_equal_timestamps() {
        let a = secs(&[(0, 1.0), (1, 2.0), (3, 3.0)]);
        let b = secs(&[(1, 20.0), (2, 30.0), (3, 40.0)]);
        let pairs = a.align(&b);
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0], (SimTime::from_secs(1), 2.0, 20.0));
        assert_eq!(pairs[1], (SimTime::from_secs(3), 3.0, 40.0));
    }

    #[test]
    fn collect_and_extend() {
        let mut ts: TimeSeries = (0..3).map(|i| (SimTime::from_secs(i), i as f64)).collect();
        ts.extend([(SimTime::from_secs(5), 5.0)]);
        assert_eq!(ts.len(), 4);
        assert_eq!(ts.difference().len(), 3);
    }
}
