//! Metric catalogs — the named metric sets evaluated in the paper's
//! Table II (raw vs derived × {msg rate, cpu, all}) plus the single-metric
//! set used by baseline \[23\].

use crate::metric::{MetricSpec, RawMetric};
use serde::{Deserialize, Serialize};

/// A named, ordered set of metrics fed to the learning algorithms.
///
/// # Examples
///
/// ```
/// use icfl_telemetry::MetricCatalog;
///
/// let cat = MetricCatalog::derived_all();
/// assert_eq!(cat.name(), "derived-all");
/// assert!(cat.len() >= 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricCatalog {
    name: String,
    metrics: Vec<MetricSpec>,
}

impl MetricCatalog {
    /// Creates a catalog from explicit metrics.
    ///
    /// # Panics
    ///
    /// Panics if `metrics` is empty — an empty catalog can learn nothing.
    pub fn new(name: impl Into<String>, metrics: Vec<MetricSpec>) -> Self {
        assert!(!metrics.is_empty(), "a metric catalog must not be empty");
        MetricCatalog {
            name: name.into(),
            metrics,
        }
    }

    /// Raw message rate only (Table II "raw / msg rate").
    pub fn raw_msg_rate() -> Self {
        MetricCatalog::new("raw-msg", vec![MetricSpec::Raw(RawMetric::MsgCount)])
    }

    /// Raw CPU rate only (Table II "raw / cpu").
    pub fn raw_cpu() -> Self {
        MetricCatalog::new("raw-cpu", vec![MetricSpec::Raw(RawMetric::CpuSeconds)])
    }

    /// All raw rates (Table II "raw / all"): msg, cpu, rx, tx.
    pub fn raw_all() -> Self {
        MetricCatalog::new(
            "raw-all",
            vec![
                MetricSpec::Raw(RawMetric::MsgCount),
                MetricSpec::Raw(RawMetric::CpuSeconds),
                MetricSpec::Raw(RawMetric::RxPackets),
                MetricSpec::Raw(RawMetric::TxPackets),
            ],
        )
    }

    /// Derived message rate only (Table II "derived / msg rate"):
    /// messages per received packet.
    pub fn derived_msg() -> Self {
        MetricCatalog::new(
            "derived-msg",
            vec![MetricSpec::per_request(RawMetric::MsgCount)],
        )
    }

    /// Derived CPU only (Table II "derived / cpu"): CPU per received packet.
    pub fn derived_cpu() -> Self {
        MetricCatalog::new(
            "derived-cpu",
            vec![MetricSpec::per_request(RawMetric::CpuSeconds)],
        )
    }

    /// All derived metrics (Table II "derived / all") — the paper's
    /// proposed configuration, also used for Table I.
    pub fn derived_all() -> Self {
        MetricCatalog::new(
            "derived-all",
            vec![
                MetricSpec::per_request(RawMetric::MsgCount),
                MetricSpec::per_request(RawMetric::CpuSeconds),
                MetricSpec::per_request(RawMetric::TxPackets),
            ],
        )
    }

    /// Error-log rate only — the configuration of baseline \[23\]
    /// (Wang et al., AAAI'22), which filters logs down to errors.
    pub fn error_log_only() -> Self {
        MetricCatalog::new(
            "error-log-only",
            vec![MetricSpec::Raw(RawMetric::ErrorLogCount)],
        )
    }

    /// The catalog's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The metrics, in order.
    pub fn metrics(&self) -> &[MetricSpec] {
        &self.metrics
    }

    /// Number of metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Always false (construction forbids empty catalogs); provided for
    /// API completeness.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Metric display names, in order.
    pub fn metric_names(&self) -> Vec<String> {
        self.metrics.iter().map(|m| m.name()).collect()
    }

    /// The six catalogs of Table II, in the paper's column order.
    pub fn table2_catalogs() -> Vec<MetricCatalog> {
        vec![
            MetricCatalog::raw_msg_rate(),
            MetricCatalog::raw_cpu(),
            MetricCatalog::raw_all(),
            MetricCatalog::derived_msg(),
            MetricCatalog::derived_cpu(),
            MetricCatalog::derived_all(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_are_distinct() {
        let cats = MetricCatalog::table2_catalogs();
        let mut names: Vec<&str> = cats.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn derived_all_uses_rx_as_denominator() {
        for m in MetricCatalog::derived_all().metrics() {
            match m {
                MetricSpec::Derived { independent, .. } => {
                    assert_eq!(*independent, RawMetric::RxPackets)
                }
                MetricSpec::Raw(_) => panic!("derived_all must not contain raw metrics"),
            }
        }
    }

    #[test]
    fn error_log_only_matches_baseline_23() {
        let cat = MetricCatalog::error_log_only();
        assert_eq!(cat.len(), 1);
        assert_eq!(cat.metrics()[0], MetricSpec::Raw(RawMetric::ErrorLogCount));
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_catalog_panics() {
        MetricCatalog::new("empty", vec![]);
    }

    #[test]
    fn metric_names_align_with_metrics() {
        let cat = MetricCatalog::raw_all();
        assert_eq!(cat.metric_names().len(), cat.len());
        assert_eq!(cat.metric_names()[0], "msg");
        assert!(!cat.is_empty());
    }
}
