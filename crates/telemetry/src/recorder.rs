//! The telemetry scraper: periodic counter snapshots and windowed dataset
//! extraction.
//!
//! Plays the role of Prometheus + the paper's data-collection service: a
//! [`Recorder`] attached to a simulation scrapes every service's counters on
//! a fixed interval; [`Recorder::dataset`] later differentiates those
//! snapshots into hopping-window rate/ratio series per metric catalog.

use crate::catalog::MetricCatalog;
use crate::dataset::Dataset;
use crate::metric::MetricSpec;
use crate::window::WindowConfig;
use icfl_micro::{Cluster, Counters, ServiceId};
use icfl_sim::{Sim, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Errors from dataset extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TelemetryError {
    /// No scrape exists at the requested instant (phase bounds must be
    /// multiples of the scrape interval, within the recorded range).
    MissingSample(SimTime),
    /// The phase yielded zero windows.
    EmptyPhase,
}

impl std::fmt::Display for TelemetryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TelemetryError::MissingSample(t) => write!(f, "no telemetry sample at {t}"),
            TelemetryError::EmptyPhase => write!(f, "phase too short for one window"),
        }
    }
}

impl std::error::Error for TelemetryError {}

#[derive(Debug, Serialize, Deserialize)]
struct Store {
    interval: SimDuration,
    times: Vec<SimTime>,
    /// `samples[tick][service]`.
    samples: Vec<Vec<Counters>>,
}

/// Key of one memoized per-metric window extraction: the scraped counters
/// at fixed times are immutable once recorded, so equal keys always yield
/// equal series.
type SeriesKey = (SimTime, SimTime, WindowConfig, MetricSpec);

/// Per-service shared window series of a single metric over one phase.
type SharedSeries = Vec<Arc<Vec<f64>>>;

/// A handle to the telemetry store being filled by the scrape loop.
///
/// Cloning is cheap (shared storage). The recorder must be
/// [attached](Recorder::attach) *before* the simulation runs past time zero
/// so the baseline snapshot exists.
///
/// Extracted window series are memoized per
/// `(phase, window config, metric)`: the six Table II catalogs overlap
/// heavily in their metric sets, and every catalog after the first reuses
/// the shared series instead of re-differentiating the scrape log. The
/// store and cache sit behind mutexes, so a `Recorder` can be handed
/// across threads by the parallel campaign executor.
///
/// # Examples
///
/// ```
/// use icfl_micro::{Cluster, ClusterSpec, ServiceSpec, steps};
/// use icfl_sim::{Sim, SimTime};
/// use icfl_telemetry::{MetricCatalog, Recorder, WindowConfig};
///
/// let spec = ClusterSpec::new("demo")
///     .service(ServiceSpec::web("a").endpoint("/", vec![steps::compute_ms(1)]));
/// let mut cluster = Cluster::build(&spec, 5)?;
/// let mut sim = Sim::new(5);
/// Cluster::start(&mut sim, &mut cluster);
/// let recorder = Recorder::attach(&mut sim, cluster.num_services());
///
/// sim.run_until(SimTime::from_secs(120), &mut cluster);
///
/// let ds = recorder.dataset(
///     &MetricCatalog::raw_all(),
///     SimTime::ZERO,
///     SimTime::from_secs(120),
///     WindowConfig::default(),
/// ).unwrap();
/// assert_eq!(ds.num_windows(), 3); // 120 s phase, 60 s window, 30 s hop
/// # Ok::<(), icfl_micro::BuildError>(())
/// ```
#[derive(Clone)]
pub struct Recorder {
    store: Arc<Mutex<Store>>,
    cache: Arc<Mutex<HashMap<SeriesKey, SharedSeries>>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.store.lock().expect("telemetry store lock");
        f.debug_struct("Recorder")
            .field("interval", &s.interval)
            .field("scrapes", &s.times.len())
            .finish()
    }
}

impl Recorder {
    /// Default scrape interval (1 s, Prometheus-style).
    pub const DEFAULT_INTERVAL: SimDuration = SimDuration::from_secs(1);

    /// Attaches a scraper with the default 1 s interval.
    pub fn attach(sim: &mut Sim<Cluster>, num_services: usize) -> Recorder {
        Recorder::attach_with_interval(sim, num_services, Recorder::DEFAULT_INTERVAL)
    }

    /// Attaches a scraper with a custom interval.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero or the simulation is already past time
    /// zero (the baseline snapshot would be missing).
    pub fn attach_with_interval(
        sim: &mut Sim<Cluster>,
        num_services: usize,
        interval: SimDuration,
    ) -> Recorder {
        assert!(!interval.is_zero(), "scrape interval must be positive");
        assert_eq!(
            sim.now(),
            SimTime::ZERO,
            "attach the recorder before running"
        );
        let store = Arc::new(Mutex::new(Store {
            interval,
            times: Vec::new(),
            samples: Vec::new(),
        }));
        let store2 = Arc::clone(&store);
        sim.schedule_periodic(SimTime::ZERO, interval, move |sim, cl: &mut Cluster| {
            let mut s = store2.lock().expect("telemetry store lock");
            s.times.push(sim.now());
            let row: Vec<Counters> = (0..num_services)
                .map(|i| cl.counters(ServiceId::from_index(i)))
                .collect();
            s.samples.push(row);
        });
        Recorder {
            store,
            cache: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// Number of scrapes recorded so far.
    pub fn num_scrapes(&self) -> usize {
        self.store.lock().expect("telemetry store lock").times.len()
    }

    /// The counter snapshot of `service` at exactly `at`, if scraped.
    pub fn counters_at(&self, service: ServiceId, at: SimTime) -> Option<Counters> {
        let s = self.store.lock().expect("telemetry store lock");
        let idx = (at.as_nanos() / s.interval.as_nanos()) as usize;
        if s.times.get(idx).copied() == Some(at) {
            Some(s.samples[idx][service.index()])
        } else {
            None
        }
    }

    /// Extracts a windowed [`Dataset`] for `catalog` over
    /// `[phase_start, phase_end]` — this is `D(M, s)` for every metric and
    /// service.
    ///
    /// Per-metric series are served from the shared window cache when the
    /// same `(phase, windows, metric)` triple was extracted before (by any
    /// catalog); only cache misses touch the scrape log.
    ///
    /// # Errors
    ///
    /// [`TelemetryError::EmptyPhase`] if the phase fits no window;
    /// [`TelemetryError::MissingSample`] if a window boundary was never
    /// scraped (boundaries must be multiples of the scrape interval inside
    /// the recorded range).
    pub fn dataset(
        &self,
        catalog: &MetricCatalog,
        phase_start: SimTime,
        phase_end: SimTime,
        windows: WindowConfig,
    ) -> Result<Dataset, TelemetryError> {
        let bounds = windows.windows_in(phase_start, phase_end);
        if bounds.is_empty() {
            return Err(TelemetryError::EmptyPhase);
        }
        let mut cache = self.cache.lock().expect("telemetry cache lock");
        let mut values: Vec<SharedSeries> = Vec::with_capacity(catalog.len());
        // The store is only locked (and the scrape log only walked) for
        // metrics missing from the cache.
        let mut store: Option<std::sync::MutexGuard<'_, Store>> = None;
        for metric in catalog.metrics() {
            let key: SeriesKey = (phase_start, phase_end, windows, *metric);
            if let Some(series) = cache.get(&key) {
                values.push(series.clone());
                continue;
            }
            let s = store.get_or_insert_with(|| self.store.lock().expect("telemetry store lock"));
            let series = extract_series(s, metric, &bounds)?;
            cache.insert(key, series.clone());
            values.push(series);
        }
        Ok(Dataset::from_shared(catalog.metric_names(), values))
    }
}

/// Differentiates the scrape log into one shared window series per service
/// for a single metric.
fn extract_series(
    store: &Store,
    metric: &MetricSpec,
    bounds: &[(SimTime, SimTime)],
) -> Result<SharedSeries, TelemetryError> {
    let num_services = store.samples.first().map_or(0, Vec::len);
    let lookup = |at: SimTime| -> Result<&Vec<Counters>, TelemetryError> {
        let idx = (at.as_nanos() / store.interval.as_nanos()) as usize;
        if store.times.get(idx).copied() == Some(at) {
            Ok(&store.samples[idx])
        } else {
            Err(TelemetryError::MissingSample(at))
        }
    };
    let mut per_service: Vec<Vec<f64>> = vec![Vec::with_capacity(bounds.len()); num_services];
    for &(ws, we) in bounds {
        let start_row = lookup(ws)?;
        let end_row = lookup(we)?;
        let secs = (we - ws).as_secs_f64();
        for (svc, series) in per_service.iter_mut().enumerate() {
            series.push(metric.evaluate(&start_row[svc], &end_row[svc], secs));
        }
    }
    Ok(per_service.into_iter().map(Arc::new).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use icfl_micro::steps;
    use icfl_micro::{ClusterSpec, ServiceSpec, Status};

    fn demo_cluster(seed: u64) -> (Sim<Cluster>, Cluster) {
        let spec = ClusterSpec::new("demo")
            .service(
                ServiceSpec::web("a")
                    .with_concurrency(16)
                    .endpoint("/", vec![steps::compute_ms(2), steps::call("b", "/")]),
            )
            .service(
                ServiceSpec::web("b")
                    .with_concurrency(16)
                    .endpoint("/", vec![steps::compute_ms(1)]),
            );
        let mut cluster = Cluster::build(&spec, seed).unwrap();
        let mut sim = Sim::new(seed);
        Cluster::start(&mut sim, &mut cluster);
        (sim, cluster)
    }

    fn drive_steady_load(sim: &mut Sim<Cluster>, until_s: u64) {
        for i in 0..(until_s * 10) {
            let at = SimTime::ZERO + SimDuration::from_millis(100 * i);
            sim.schedule_at(at, |sim, cl: &mut Cluster| {
                let a = cl.service_id("a").unwrap();
                Cluster::submit(sim, cl, a, "/", |_, _, resp| {
                    assert_eq!(resp.status, Status::Ok);
                });
            });
        }
    }

    #[test]
    fn scrapes_on_schedule() {
        let (mut sim, mut cluster) = demo_cluster(1);
        let rec = Recorder::attach(&mut sim, cluster.num_services());
        sim.run_until(SimTime::from_secs(10), &mut cluster);
        // t = 0..=10 → 11 scrapes.
        assert_eq!(rec.num_scrapes(), 11);
        assert!(rec
            .counters_at(ServiceId::from_index(0), SimTime::from_secs(5))
            .is_some());
        assert!(rec
            .counters_at(ServiceId::from_index(0), SimTime::from_nanos(1))
            .is_none());
    }

    #[test]
    fn dataset_has_expected_shape_and_rates() {
        let (mut sim, mut cluster) = demo_cluster(2);
        let rec = Recorder::attach(&mut sim, cluster.num_services());
        drive_steady_load(&mut sim, 180);
        sim.run_until(SimTime::from_secs(180), &mut cluster);
        let ds = rec
            .dataset(
                &MetricCatalog::raw_all(),
                SimTime::ZERO,
                SimTime::from_secs(180),
                WindowConfig::default(),
            )
            .unwrap();
        assert_eq!(ds.num_metrics(), 4);
        assert_eq!(ds.num_services(), 2);
        assert_eq!(ds.num_windows(), 5);
        // b receives ~10 req/s → rx rate ≈ 10/s (one packet per request,
        // plus none outgoing).
        let rx_idx = 2; // raw_all order: msg, cpu, rx, tx
        let b = ServiceId::from_index(1);
        for &v in ds.samples(rx_idx, b) {
            assert!((v - 10.0).abs() < 1.5, "rx rate={v}");
        }
    }

    #[test]
    fn derived_dataset_is_load_invariant_in_steady_state() {
        // Double the load via two submissions per tick; derived cpu/rx at b
        // should match the single-load value.
        let per_request_cpu = |double: bool| {
            let (mut sim, mut cluster) = demo_cluster(3);
            let rec = Recorder::attach(&mut sim, cluster.num_services());
            for i in 0..1800 {
                let at = SimTime::ZERO + SimDuration::from_millis(100 * i);
                let n = if double { 2 } else { 1 };
                sim.schedule_at(at, move |sim, cl: &mut Cluster| {
                    for _ in 0..n {
                        let a = cl.service_id("a").unwrap();
                        Cluster::submit(sim, cl, a, "/", |_, _, _| {});
                    }
                });
            }
            sim.run_until(SimTime::from_secs(180), &mut cluster);
            let ds = rec
                .dataset(
                    &MetricCatalog::derived_cpu(),
                    SimTime::ZERO,
                    SimTime::from_secs(180),
                    WindowConfig::default(),
                )
                .unwrap();
            let b = ServiceId::from_index(1);
            let xs = ds.samples(0, b);
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        let single = per_request_cpu(false);
        let double = per_request_cpu(true);
        assert!(
            (single - double).abs() / single < 0.15,
            "single={single} double={double}"
        );
    }

    #[test]
    fn phase_outside_recording_errors() {
        let (mut sim, mut cluster) = demo_cluster(4);
        let rec = Recorder::attach(&mut sim, cluster.num_services());
        sim.run_until(SimTime::from_secs(30), &mut cluster);
        let err = rec
            .dataset(
                &MetricCatalog::raw_cpu(),
                SimTime::ZERO,
                SimTime::from_secs(300),
                WindowConfig::default(),
            )
            .unwrap_err();
        assert!(matches!(err, TelemetryError::MissingSample(_)));
    }

    #[test]
    fn too_short_phase_errors() {
        let (mut sim, mut cluster) = demo_cluster(5);
        let rec = Recorder::attach(&mut sim, cluster.num_services());
        sim.run_until(SimTime::from_secs(30), &mut cluster);
        let err = rec
            .dataset(
                &MetricCatalog::raw_cpu(),
                SimTime::ZERO,
                SimTime::from_secs(30),
                WindowConfig::default(),
            )
            .unwrap_err();
        assert_eq!(err, TelemetryError::EmptyPhase);
    }

    #[test]
    #[should_panic(expected = "attach the recorder before running")]
    fn late_attach_panics() {
        let (mut sim, mut cluster) = demo_cluster(6);
        sim.run_until(SimTime::from_secs(1), &mut cluster);
        let _ = Recorder::attach(&mut sim, cluster.num_services());
    }
}
