//! The telemetry scraper: periodic counter snapshots feeding the shared
//! [`WindowEngine`].
//!
//! Plays the role of Prometheus + the paper's data-collection service: a
//! [`Recorder`] attached to a simulation scrapes every service's counters
//! on a fixed interval and pushes each row into a phase-scoped
//! [`WindowEngine`], which finalizes hopping windows incrementally as the
//! simulation runs. [`Recorder::dataset`] then evaluates any metric
//! catalog over the finalized windows — the same arithmetic, in the same
//! engine, as the online streaming ingester.

use crate::catalog::MetricCatalog;
use crate::dataset::Dataset;
use crate::engine::{EngineConfig, WindowEngine};
use crate::window::WindowConfig;
use icfl_micro::{Cluster, Counters, ServiceId};
use icfl_sim::{Sim, SimDuration, SimTime};
use std::sync::{Arc, Mutex};

/// Errors from dataset extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TelemetryError {
    /// A window boundary was never scraped (the phase extends beyond the
    /// simulated range, or its bounds are off the scrape grid).
    MissingSample(SimTime),
    /// The phase yielded zero windows.
    EmptyPhase,
}

impl std::fmt::Display for TelemetryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TelemetryError::MissingSample(t) => write!(f, "no telemetry sample at {t}"),
            TelemetryError::EmptyPhase => write!(f, "phase too short for one window"),
        }
    }
}

impl std::error::Error for TelemetryError {}

/// A handle to the window engine being filled by the scrape loop.
///
/// Cloning is cheap (shared engine). The recorder must be
/// [attached](Recorder::attach) *before* the simulation runs past time
/// zero so the baseline snapshot exists, and it is scoped to one
/// observation phase fixed at attach time — windows are finalized
/// incrementally inside `[phase.0, phase.1]` and only their boundary
/// counter rows are retained, so memory is O(windows), not O(scrapes).
///
/// Extracted window series are memoized per metric inside the engine: the
/// six Table II catalogs overlap heavily in their metric sets, and every
/// catalog after the first reuses the shared series instead of
/// re-evaluating boundary rows. The engine sits behind a mutex, so a
/// `Recorder` can be handed across threads by the parallel campaign
/// executor.
///
/// # Examples
///
/// ```
/// use icfl_micro::{Cluster, ClusterSpec, ServiceSpec, steps};
/// use icfl_sim::{Sim, SimTime};
/// use icfl_telemetry::{MetricCatalog, Recorder, WindowConfig};
///
/// let spec = ClusterSpec::new("demo")
///     .service(ServiceSpec::web("a").endpoint("/", vec![steps::compute_ms(1)]));
/// let mut cluster = Cluster::build(&spec, 5)?;
/// let mut sim = Sim::new(5);
/// Cluster::start(&mut sim, &mut cluster);
/// let recorder = Recorder::attach(
///     &mut sim,
///     cluster.num_services(),
///     (SimTime::ZERO, SimTime::from_secs(120)),
///     WindowConfig::default(),
/// );
///
/// sim.run_until(SimTime::from_secs(120), &mut cluster);
///
/// let ds = recorder.dataset(&MetricCatalog::raw_all()).unwrap();
/// assert_eq!(ds.num_windows(), 3); // 120 s phase, 60 s window, 30 s hop
/// # Ok::<(), icfl_micro::BuildError>(())
/// ```
#[derive(Clone)]
pub struct Recorder {
    engine: Arc<Mutex<WindowEngine>>,
    phase: (SimTime, SimTime),
    windows: WindowConfig,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let e = self.engine.lock().expect("telemetry engine lock");
        f.debug_struct("Recorder")
            .field("phase", &self.phase)
            .field("windows_finalized", &e.retained())
            .finish()
    }
}

impl Recorder {
    /// Default scrape interval (1 s, Prometheus-style).
    pub const DEFAULT_INTERVAL: SimDuration = EngineConfig::DEFAULT_INTERVAL;

    /// Attaches a scraper with the default 1 s interval, observing the
    /// hopping windows of `windows` inside `phase`.
    ///
    /// `num_services` selects the scrape granularity: pass
    /// `cluster.num_services()` for per-service aggregate rows (replicas
    /// summed — the classic layout) or `cluster.num_rows()` for one row
    /// per *replica* in the cluster's flattened service-major order
    /// (instance-granularity localization). Any other value panics at the
    /// first scrape.
    pub fn attach(
        sim: &mut Sim<Cluster>,
        num_services: usize,
        phase: (SimTime, SimTime),
        windows: WindowConfig,
    ) -> Recorder {
        Recorder::attach_with_interval(
            sim,
            num_services,
            phase,
            windows,
            Recorder::DEFAULT_INTERVAL,
        )
    }

    /// Attaches a scraper with a custom interval.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero, window or hop are not multiples of
    /// it, or the simulation is already past time zero (the baseline
    /// snapshot would be missing).
    pub fn attach_with_interval(
        sim: &mut Sim<Cluster>,
        num_services: usize,
        phase: (SimTime, SimTime),
        windows: WindowConfig,
        interval: SimDuration,
    ) -> Recorder {
        assert_eq!(
            sim.now(),
            SimTime::ZERO,
            "attach the recorder before running"
        );
        let mut cfg = EngineConfig::offline(windows, phase);
        cfg.interval = interval;
        let engine = Arc::new(Mutex::new(WindowEngine::new(cfg, num_services)));
        let engine2 = Arc::clone(&engine);
        sim.schedule_periodic(SimTime::ZERO, interval, move |sim, cl: &mut Cluster| {
            // `scrape_rows` is a single contiguous memcpy off the cluster's
            // counters arena when `num_services` matches the row layout,
            // and a per-service replica aggregation otherwise.
            let row: Vec<Counters> = cl.scrape_rows(num_services);
            icfl_obs::counter_add("icfl_telemetry_batched_scrapes_total", &[], 1);
            if num_services > cl.num_services() {
                // Instance-granularity scrape: one batch covers every
                // replica row, not just per-service aggregates.
                icfl_obs::counter_add("icfl_telemetry_replica_scrape_batches_total", &[], 1);
            }
            engine2
                .lock()
                .expect("telemetry engine lock")
                .push(sim.now(), row);
        });
        Recorder {
            engine,
            phase,
            windows,
        }
    }

    /// The observation phase fixed at attach time.
    pub fn phase(&self) -> (SimTime, SimTime) {
        self.phase
    }

    /// The window configuration fixed at attach time.
    pub fn windows(&self) -> WindowConfig {
        self.windows
    }

    /// Number of windows finalized so far.
    pub fn windows_finalized(&self) -> usize {
        self.engine
            .lock()
            .expect("telemetry engine lock")
            .retained()
    }

    /// The counter snapshot of `service` at `at`, if `at` is a boundary of
    /// a finalized window. Boundary rows are all the raw telemetry kept —
    /// the full scrape log is never stored.
    pub fn boundary_counters(&self, service: ServiceId, at: SimTime) -> Option<Counters> {
        self.engine
            .lock()
            .expect("telemetry engine lock")
            .boundary_counters(service.index(), at)
    }

    /// Evaluates a windowed [`Dataset`] for `catalog` over the attach-time
    /// phase — this is `D(M, s)` for every metric and service.
    ///
    /// Per-metric series are served from the engine's shared window cache
    /// when the same metric was extracted before (by any catalog); only
    /// cache misses touch the boundary rows.
    ///
    /// # Errors
    ///
    /// [`TelemetryError::EmptyPhase`] if the phase fits no window;
    /// [`TelemetryError::MissingSample`] if a window of the phase was
    /// never finalized (the simulation stopped early, or the phase bounds
    /// are off the scrape grid).
    pub fn dataset(&self, catalog: &MetricCatalog) -> Result<Dataset, TelemetryError> {
        let expected = self.windows.windows_in(self.phase.0, self.phase.1);
        if expected.is_empty() {
            return Err(TelemetryError::EmptyPhase);
        }
        let mut engine = self.engine.lock().expect("telemetry engine lock");
        if engine.retained() < expected.len() {
            return Err(TelemetryError::MissingSample(expected[engine.retained()].1));
        }
        let mut span = icfl_obs::span("windowing");
        span.arg("catalog", catalog.name());
        span.arg("windows", expected.len());
        Ok(engine.dataset(catalog))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icfl_micro::steps;
    use icfl_micro::{ClusterSpec, ServiceSpec, Status};

    fn demo_cluster(seed: u64) -> (Sim<Cluster>, Cluster) {
        let spec = ClusterSpec::new("demo")
            .service(
                ServiceSpec::web("a")
                    .with_concurrency(16)
                    .endpoint("/", vec![steps::compute_ms(2), steps::call("b", "/")]),
            )
            .service(
                ServiceSpec::web("b")
                    .with_concurrency(16)
                    .endpoint("/", vec![steps::compute_ms(1)]),
            );
        let mut cluster = Cluster::build(&spec, seed).unwrap();
        let mut sim = Sim::new(seed);
        Cluster::start(&mut sim, &mut cluster);
        (sim, cluster)
    }

    fn drive_steady_load(sim: &mut Sim<Cluster>, until_s: u64) {
        for i in 0..(until_s * 10) {
            let at = SimTime::ZERO + SimDuration::from_millis(100 * i);
            sim.schedule_at(at, |sim, cl: &mut Cluster| {
                let a = cl.service_id("a").unwrap();
                Cluster::submit(sim, cl, a, "/", |_, _, resp| {
                    assert_eq!(resp.status, Status::Ok);
                });
            });
        }
    }

    fn full_phase(secs: u64) -> (SimTime, SimTime) {
        (SimTime::ZERO, SimTime::from_secs(secs))
    }

    #[test]
    fn windows_finalize_incrementally_with_boundary_counters() {
        let (mut sim, mut cluster) = demo_cluster(1);
        let rec = Recorder::attach(
            &mut sim,
            cluster.num_services(),
            full_phase(120),
            WindowConfig::default(),
        );
        sim.run_until(SimTime::from_secs(90), &mut cluster);
        // Windows [0,60] and [30,90] have closed; [60,120] has not.
        assert_eq!(rec.windows_finalized(), 2);
        sim.run_until(SimTime::from_secs(120), &mut cluster);
        assert_eq!(rec.windows_finalized(), 3);
        assert!(rec
            .boundary_counters(ServiceId::from_index(0), SimTime::from_secs(60))
            .is_some());
        assert!(rec
            .boundary_counters(ServiceId::from_index(0), SimTime::from_nanos(1))
            .is_none());
    }

    #[test]
    fn dataset_has_expected_shape_and_rates() {
        let (mut sim, mut cluster) = demo_cluster(2);
        let rec = Recorder::attach(
            &mut sim,
            cluster.num_services(),
            full_phase(180),
            WindowConfig::default(),
        );
        drive_steady_load(&mut sim, 180);
        sim.run_until(SimTime::from_secs(180), &mut cluster);
        let ds = rec.dataset(&MetricCatalog::raw_all()).unwrap();
        assert_eq!(ds.num_metrics(), 4);
        assert_eq!(ds.num_services(), 2);
        assert_eq!(ds.num_windows(), 5);
        // b receives ~10 req/s → rx rate ≈ 10/s (one packet per request,
        // plus none outgoing).
        let rx_idx = 2; // raw_all order: msg, cpu, rx, tx
        let b = ServiceId::from_index(1);
        for &v in ds.samples(rx_idx, b) {
            assert!((v - 10.0).abs() < 1.5, "rx rate={v}");
        }
    }

    #[test]
    fn derived_dataset_is_load_invariant_in_steady_state() {
        // Double the load via two submissions per tick; derived cpu/rx at b
        // should match the single-load value.
        let per_request_cpu = |double: bool| {
            let (mut sim, mut cluster) = demo_cluster(3);
            let rec = Recorder::attach(
                &mut sim,
                cluster.num_services(),
                full_phase(180),
                WindowConfig::default(),
            );
            for i in 0..1800 {
                let at = SimTime::ZERO + SimDuration::from_millis(100 * i);
                let n = if double { 2 } else { 1 };
                sim.schedule_at(at, move |sim, cl: &mut Cluster| {
                    for _ in 0..n {
                        let a = cl.service_id("a").unwrap();
                        Cluster::submit(sim, cl, a, "/", |_, _, _| {});
                    }
                });
            }
            sim.run_until(SimTime::from_secs(180), &mut cluster);
            let ds = rec.dataset(&MetricCatalog::derived_cpu()).unwrap();
            let b = ServiceId::from_index(1);
            let xs = ds.samples(0, b);
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        let single = per_request_cpu(false);
        let double = per_request_cpu(true);
        assert!(
            (single - double).abs() / single < 0.15,
            "single={single} double={double}"
        );
    }

    #[test]
    fn phase_outside_recording_errors() {
        let (mut sim, mut cluster) = demo_cluster(4);
        let rec = Recorder::attach(
            &mut sim,
            cluster.num_services(),
            full_phase(300),
            WindowConfig::default(),
        );
        sim.run_until(SimTime::from_secs(30), &mut cluster);
        let err = rec.dataset(&MetricCatalog::raw_cpu()).unwrap_err();
        assert_eq!(err, TelemetryError::MissingSample(SimTime::from_secs(60)));
    }

    #[test]
    fn too_short_phase_errors() {
        let (mut sim, mut cluster) = demo_cluster(5);
        let rec = Recorder::attach(
            &mut sim,
            cluster.num_services(),
            full_phase(30),
            WindowConfig::default(),
        );
        sim.run_until(SimTime::from_secs(30), &mut cluster);
        let err = rec.dataset(&MetricCatalog::raw_cpu()).unwrap_err();
        assert_eq!(err, TelemetryError::EmptyPhase);
    }

    #[test]
    #[should_panic(expected = "attach the recorder before running")]
    fn late_attach_panics() {
        let (mut sim, mut cluster) = demo_cluster(6);
        sim.run_until(SimTime::from_secs(1), &mut cluster);
        let _ = Recorder::attach(
            &mut sim,
            cluster.num_services(),
            full_phase(120),
            WindowConfig::default(),
        );
    }
}
