//! Drain-style log template mining.
//!
//! The paper collects *all* console messages ("filtering error messages
//! requires significant domain knowledge") and aggregates them into a
//! message-rate metric. Real AIOps pipelines additionally cluster raw
//! messages into **templates** ("finished processing <*> items") so
//! per-template rates can be monitored. This module provides a compact
//! single-pass miner in the spirit of Drain: tokenize, mask numbers, group
//! by token count, and merge messages whose fixed tokens agree above a
//! similarity threshold, wildcarding the disagreeing positions.

use icfl_micro::LogRecord;
use serde::{Deserialize, Serialize};

/// Identifier of a mined template.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TemplateId(usize);

impl TemplateId {
    /// Raw index into [`TemplateMiner::templates`].
    pub fn index(self) -> usize {
        self.0
    }
}

/// One position of a template: a fixed word or a wildcard.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Token {
    /// A literal token that every member message shares.
    Word(String),
    /// A parameter position (`<*>`).
    Wildcard,
}

/// A mined template with its match count.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Template {
    /// The token pattern.
    pub tokens: Vec<Token>,
    /// How many messages matched.
    pub count: u64,
}

impl Template {
    /// Renders the pattern with `<*>` wildcards.
    pub fn pattern(&self) -> String {
        self.tokens
            .iter()
            .map(|t| match t {
                Token::Word(w) => w.as_str(),
                Token::Wildcard => "<*>",
            })
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// A single-pass log template miner.
///
/// # Examples
///
/// ```
/// use icfl_telemetry::TemplateMiner;
///
/// let mut miner = TemplateMiner::new(0.6);
/// let a = miner.observe("finished processing 100 items");
/// let b = miner.observe("finished processing 250 items");
/// assert_eq!(a, b); // numbers are masked, same template
/// assert_eq!(miner.templates()[a.index()].pattern(), "finished processing <*> items");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TemplateMiner {
    templates: Vec<Template>,
    similarity_threshold: f64,
}

impl TemplateMiner {
    /// Creates a miner; `similarity_threshold ∈ [0, 1]` is the minimum
    /// fraction of agreeing positions required to join an existing
    /// template (Drain uses ~0.5–0.7).
    ///
    /// # Panics
    ///
    /// Panics if the threshold is outside `[0, 1]`.
    pub fn new(similarity_threshold: f64) -> TemplateMiner {
        assert!(
            (0.0..=1.0).contains(&similarity_threshold),
            "similarity threshold must be in [0, 1]"
        );
        TemplateMiner {
            templates: Vec::new(),
            similarity_threshold,
        }
    }

    /// The mined templates, in discovery order.
    pub fn templates(&self) -> &[Template] {
        &self.templates
    }

    /// Total messages observed.
    pub fn total_observed(&self) -> u64 {
        self.templates.iter().map(|t| t.count).sum()
    }

    /// Ingests one message and returns its template.
    pub fn observe(&mut self, message: &str) -> TemplateId {
        let tokens = tokenize(message);
        let mut best: Option<(usize, f64)> = None;
        for (i, t) in self.templates.iter().enumerate() {
            if t.tokens.len() != tokens.len() {
                continue;
            }
            let sim = similarity(&t.tokens, &tokens);
            if sim >= self.similarity_threshold && best.is_none_or(|(_, s)| sim > s) {
                best = Some((i, sim));
            }
        }
        match best {
            Some((i, _)) => {
                let t = &mut self.templates[i];
                for (slot, tok) in t.tokens.iter_mut().zip(&tokens) {
                    if let Token::Word(w) = slot {
                        let matches = matches!(tok, Token::Word(v) if v == w);
                        if !matches {
                            *slot = Token::Wildcard;
                        }
                    }
                }
                t.count += 1;
                TemplateId(i)
            }
            None => {
                self.templates.push(Template { tokens, count: 1 });
                TemplateId(self.templates.len() - 1)
            }
        }
    }

    /// Ingests a batch of records (e.g.
    /// [`Cluster::recent_logs`](icfl_micro::Cluster::recent_logs) output)
    /// and returns per-record template ids.
    pub fn observe_records(&mut self, records: &[LogRecord]) -> Vec<TemplateId> {
        records.iter().map(|r| self.observe(&r.message)).collect()
    }
}

fn tokenize(message: &str) -> Vec<Token> {
    message
        .split_whitespace()
        .map(|w| {
            // Mask tokens containing digits (counts, ids, latencies).
            if w.chars().any(|c| c.is_ascii_digit()) {
                Token::Wildcard
            } else {
                Token::Word(w.to_owned())
            }
        })
        .collect()
}

/// Fraction of positions that agree (wildcards agree with anything).
fn similarity(a: &[Token], b: &[Token]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    if a.is_empty() {
        return 1.0;
    }
    let same = a
        .iter()
        .zip(b)
        .filter(|(x, y)| match (x, y) {
            (Token::Wildcard, _) | (_, Token::Wildcard) => true,
            (Token::Word(u), Token::Word(v)) => u == v,
        })
        .count();
    same as f64 / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_messages_share_a_template() {
        let mut m = TemplateMiner::new(0.6);
        let a = m.observe("I am okay!");
        let b = m.observe("I am okay!");
        assert_eq!(a, b);
        assert_eq!(m.templates().len(), 1);
        assert_eq!(m.templates()[0].count, 2);
        assert_eq!(m.total_observed(), 2);
    }

    #[test]
    fn numeric_parameters_are_masked() {
        let mut m = TemplateMiner::new(0.6);
        let a = m.observe("error: downstream call failed (503)");
        let b = m.observe("error: downstream call failed (504)");
        assert_eq!(a, b);
        assert!(m.templates()[a.index()].pattern().contains("<*>"));
    }

    #[test]
    fn word_parameters_become_wildcards_on_merge() {
        let mut m = TemplateMiner::new(0.6);
        let a = m.observe("user alice logged in");
        let b = m.observe("user bob logged in");
        assert_eq!(a, b);
        assert_eq!(m.templates()[a.index()].pattern(), "user <*> logged in");
    }

    #[test]
    fn dissimilar_messages_get_distinct_templates() {
        let mut m = TemplateMiner::new(0.6);
        let a = m.observe("connection to work store failed");
        let b = m.observe("no items to process for more than another while");
        assert_ne!(a, b);
        assert_eq!(m.templates().len(), 2);
        // Different lengths never merge.
        let c = m.observe("connection to work store failed again today");
        assert_ne!(a, c);
    }

    #[test]
    fn threshold_one_requires_exact_match_modulo_numbers() {
        let mut m = TemplateMiner::new(1.0);
        let a = m.observe("alpha beta gamma");
        let b = m.observe("alpha beta delta");
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "similarity threshold")]
    fn invalid_threshold_panics() {
        TemplateMiner::new(1.5);
    }

    #[test]
    fn observe_records_batches() {
        use icfl_micro::{LogLevel, LogRecord};
        use icfl_sim::SimTime;
        let mut m = TemplateMiner::new(0.6);
        let recs: Vec<LogRecord> = (0..3)
            .map(|i| LogRecord {
                time: SimTime::from_secs(i),
                level: LogLevel::Info,
                message: format!("finished processing {} items", 100 * (i + 1)),
            })
            .collect();
        let ids = m.observe_records(&recs);
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(m.templates().len(), 1);
    }
}
