//! Metric definitions: raw counters and the paper's derived
//! (dependent ⊘ independent) metrics.

use icfl_micro::Counters;
use serde::{Deserialize, Serialize};

/// A raw cumulative counter scraped from a service, mirroring what the paper
/// collects via cAdvisor/Prometheus and `kubectl logs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RawMetric {
    /// `container_cpu_user_seconds_total`.
    CpuSeconds,
    /// `container_network_receive_packets_total` — the paper's *independent*
    /// metric (a proxy for requests received).
    RxPackets,
    /// `container_network_transmit_packets_total`.
    TxPackets,
    /// All console log messages (info + error): the paper's `msg rate`
    /// source.
    MsgCount,
    /// Error-level log messages only (what baseline \[23\] uses).
    ErrorLogCount,
    /// Info-level log messages only.
    InfoLogCount,
    /// Requests delivered to the service (service-mesh style request count).
    RequestsReceived,
    /// Requests the service issued downstream.
    RequestsSent,
}

impl RawMetric {
    /// Reads the cumulative value of this metric from a counter snapshot.
    pub fn read(self, c: &Counters) -> f64 {
        match self {
            RawMetric::CpuSeconds => c.cpu_seconds(),
            RawMetric::RxPackets => c.rx_packets as f64,
            RawMetric::TxPackets => c.tx_packets as f64,
            RawMetric::MsgCount => c.logs_total as f64,
            RawMetric::ErrorLogCount => c.logs_error as f64,
            RawMetric::InfoLogCount => c.logs_info as f64,
            RawMetric::RequestsReceived => c.requests_received as f64,
            RawMetric::RequestsSent => c.requests_sent as f64,
        }
    }

    /// Stable short name.
    pub fn name(self) -> &'static str {
        match self {
            RawMetric::CpuSeconds => "cpu",
            RawMetric::RxPackets => "rx_packets",
            RawMetric::TxPackets => "tx_packets",
            RawMetric::MsgCount => "msg",
            RawMetric::ErrorLogCount => "error_log",
            RawMetric::InfoLogCount => "info_log",
            RawMetric::RequestsReceived => "requests_received",
            RawMetric::RequestsSent => "requests_sent",
        }
    }
}

impl std::fmt::Display for RawMetric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// A metric as used by the learning algorithms: either a raw per-second
/// rate, or a derived ratio of two raw rates within each window.
///
/// Derived metrics implement §V-A's deconfounding heuristic: dividing a
/// *dependent* metric (CPU, logs, tx) by an *independent* one (received
/// packets) yields a per-request quantity that is invariant to the offered
/// load — the property that keeps Algorithm 2 accurate at 4× load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MetricSpec {
    /// The raw metric's per-second rate within each window.
    Raw(RawMetric),
    /// `dependent ⊘ independent` within each window; the denominator is
    /// add-one smoothed so windows with zero traffic stay finite.
    Derived {
        /// The numerator (dependent) metric.
        dependent: RawMetric,
        /// The denominator (independent) metric.
        independent: RawMetric,
    },
}

impl MetricSpec {
    /// The paper's derived-metric constructor: `dependent ⊘ rx_packets`.
    pub fn per_request(dependent: RawMetric) -> Self {
        MetricSpec::Derived {
            dependent,
            independent: RawMetric::RxPackets,
        }
    }

    /// Evaluates the metric over one window given counter snapshots at the
    /// window's start and end.
    ///
    /// Raw metrics return a per-second rate; derived metrics return
    /// `Δdependent / (Δindependent + 1)`.
    pub fn evaluate(&self, start: &Counters, end: &Counters, window_secs: f64) -> f64 {
        match *self {
            MetricSpec::Raw(m) => (m.read(end) - m.read(start)) / window_secs.max(1e-9),
            MetricSpec::Derived {
                dependent,
                independent,
            } => {
                let dd = dependent.read(end) - dependent.read(start);
                let di = independent.read(end) - independent.read(start);
                dd / (di + 1.0)
            }
        }
    }

    /// Human-readable name, e.g. `"msg"` or `"cpu/rx_packets"`.
    pub fn name(&self) -> String {
        match *self {
            MetricSpec::Raw(m) => m.name().to_owned(),
            MetricSpec::Derived {
                dependent,
                independent,
            } => {
                format!("{}/{}", dependent.name(), independent.name())
            }
        }
    }
}

impl std::fmt::Display for MetricSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icfl_micro::LogLevel;
    use icfl_sim::SimDuration;

    fn snapshot(cpu_ms: u64, rx: u64, logs: u64) -> Counters {
        let mut c = Counters::default();
        c.add_cpu(SimDuration::from_millis(cpu_ms));
        c.rx_packets = rx;
        for _ in 0..logs {
            c.add_log(LogLevel::Info);
        }
        c
    }

    #[test]
    fn raw_rate_is_delta_over_seconds() {
        let start = snapshot(0, 100, 10);
        let end = snapshot(0, 400, 40);
        let rx = MetricSpec::Raw(RawMetric::RxPackets).evaluate(&start, &end, 60.0);
        assert!((rx - 5.0).abs() < 1e-12); // 300 packets / 60 s
        let msg = MetricSpec::Raw(RawMetric::MsgCount).evaluate(&start, &end, 60.0);
        assert!((msg - 0.5).abs() < 1e-12);
    }

    #[test]
    fn derived_is_load_invariant() {
        // 1× load window vs 4× load window: same per-request CPU.
        let start = Counters::default();
        let end_1x = snapshot(100, 100, 0);
        let end_4x = snapshot(400, 400, 0);
        let m = MetricSpec::per_request(RawMetric::CpuSeconds);
        let v1 = m.evaluate(&start, &end_1x, 60.0);
        let v4 = m.evaluate(&start, &end_4x, 60.0);
        assert!((v1 - v4).abs() / v1 < 0.05, "v1={v1} v4={v4}");
        // But the raw rates differ 4×.
        let r = MetricSpec::Raw(RawMetric::CpuSeconds);
        let r1 = r.evaluate(&start, &end_1x, 60.0);
        let r4 = r.evaluate(&start, &end_4x, 60.0);
        assert!((r4 / r1 - 4.0).abs() < 0.05);
    }

    #[test]
    fn derived_survives_zero_denominator() {
        let start = Counters::default();
        let end = snapshot(30, 0, 0); // idle CPU, no traffic
        let m = MetricSpec::per_request(RawMetric::CpuSeconds);
        let v = m.evaluate(&start, &end, 60.0);
        assert!(v.is_finite());
        assert!((v - 0.030).abs() < 1e-9);
    }

    #[test]
    fn all_raw_metrics_read_the_right_field() {
        let mut c = Counters::default();
        c.add_cpu(SimDuration::from_secs(2));
        c.rx_packets = 3;
        c.tx_packets = 4;
        c.add_log(LogLevel::Info);
        c.add_log(LogLevel::Error);
        c.requests_received = 7;
        c.requests_sent = 8;
        assert_eq!(RawMetric::CpuSeconds.read(&c), 2.0);
        assert_eq!(RawMetric::RxPackets.read(&c), 3.0);
        assert_eq!(RawMetric::TxPackets.read(&c), 4.0);
        assert_eq!(RawMetric::MsgCount.read(&c), 2.0);
        assert_eq!(RawMetric::ErrorLogCount.read(&c), 1.0);
        assert_eq!(RawMetric::InfoLogCount.read(&c), 1.0);
        assert_eq!(RawMetric::RequestsReceived.read(&c), 7.0);
        assert_eq!(RawMetric::RequestsSent.read(&c), 8.0);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(MetricSpec::Raw(RawMetric::MsgCount).name(), "msg");
        assert_eq!(
            MetricSpec::per_request(RawMetric::CpuSeconds).name(),
            "cpu/rx_packets"
        );
    }
}
