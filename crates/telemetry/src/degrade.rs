//! The telemetry-degradation model: seeded, deterministic corruption of a
//! scrape stream.
//!
//! Real Prometheus/cAdvisor scrapes drop, arrive late and out of order,
//! duplicate, and reset to zero when pods restart. [`ScrapeDegrader`]
//! reproduces all four failure modes between the scrape loop and the
//! [`WindowEngine`](crate::WindowEngine): each clean `(time, row)` scrape
//! is offered to the degrader, which may discard it, re-base it below a
//! simulated pod restart, hold it back a bounded number of intervals, or
//! emit it twice. The degrader draws from its *own* seeded RNG stream —
//! never from the simulation's — so enabling degradation perturbs only
//! scrape delivery, not the cluster, load, or fault behavior underneath.
//!
//! Determinism contract: the degrader draws a fixed number of random
//! values per offered scrape regardless of outcome, so the fate of scrape
//! `k` depends only on the seed and `k` — never on which earlier scrapes
//! happened to drop. Its entire state (RNG included) is serializable,
//! which is what makes mid-session checkpoint/resume byte-identical.

use icfl_micro::Counters;
use icfl_sim::{Rng, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Tuning of the degradation model. All probabilities are per scrape;
/// `default()` (all zero) is a no-op pass-through.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradationConfig {
    /// Seed of the degrader's private RNG stream (independent of the
    /// simulation seed; derive it via `icfl_scenario::seeds::degradation`).
    pub seed: u64,
    /// Probability a scrape is lost entirely.
    pub drop_prob: f64,
    /// Probability a scrape's delivery is delayed by 1..=`max_delay_intervals`
    /// scrape intervals (out-of-order arrival once another scrape lands
    /// in between).
    pub delay_prob: f64,
    /// Upper bound on delivery delay, in scrape intervals. Also the
    /// reorder slack the consuming engine must tolerate: scrapes never
    /// arrive later than this. Zero forces in-order delivery.
    pub max_delay_intervals: u32,
    /// Probability a scrape is delivered twice (the duplicate arrives
    /// after a delay drawn like a delayed scrape's).
    pub duplicate_prob: f64,
    /// Probability that, at a given scrape, one service's counters reset
    /// to zero (simulated pod restart). The service is drawn uniformly.
    pub reset_prob: f64,
}

impl Default for DegradationConfig {
    fn default() -> Self {
        DegradationConfig::none(0)
    }
}

impl DegradationConfig {
    /// A pass-through configuration (no degradation) rooted at `seed`.
    pub fn none(seed: u64) -> Self {
        DegradationConfig {
            seed,
            drop_prob: 0.0,
            delay_prob: 0.0,
            max_delay_intervals: 0,
            duplicate_prob: 0.0,
            reset_prob: 0.0,
        }
    }

    /// Sets the drop probability, returning `self`.
    pub fn with_drop(mut self, p: f64) -> Self {
        self.drop_prob = p;
        self
    }

    /// Sets delivery jitter: delay probability and its bound in intervals.
    pub fn with_delay(mut self, p: f64, max_intervals: u32) -> Self {
        self.delay_prob = p;
        self.max_delay_intervals = max_intervals;
        self
    }

    /// Sets the duplicate probability, returning `self`.
    pub fn with_duplicates(mut self, p: f64) -> Self {
        self.duplicate_prob = p;
        self
    }

    /// Sets the counter-reset probability, returning `self`.
    pub fn with_resets(mut self, p: f64) -> Self {
        self.reset_prob = p;
        self
    }

    /// True when every failure mode is disabled (pure pass-through).
    pub fn is_none(&self) -> bool {
        self.drop_prob == 0.0
            && self.delay_prob == 0.0
            && self.duplicate_prob == 0.0
            && self.reset_prob == 0.0
    }

    /// The reorder slack this configuration implies: no scrape is ever
    /// delivered more than this long after its scrape time.
    pub fn slack(&self, interval: SimDuration) -> SimDuration {
        SimDuration::from_nanos(
            interval
                .as_nanos()
                .saturating_mul(u64::from(self.max_delay_intervals)),
        )
    }
}

/// One delivered scrape: the time it was *taken* (not delivered) and the
/// per-service counter row as the collector saw it (post-restart rows are
/// relative to the restart).
pub type DeliveredScrape = (SimTime, Vec<Counters>);

/// The stateful degradation pipeline for one scrape stream (see module
/// docs). Fully serializable for crash-safe checkpoint/resume.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScrapeDegrader {
    cfg: DegradationConfig,
    interval: SimDuration,
    rng: Rng,
    /// Per-service restart baseline subtracted from raw counters; a reset
    /// snaps the baseline to the current raw row.
    bases: Vec<Counters>,
    /// Held-back deliveries as `(delivery time nanos, scrape)`, kept in
    /// delivery order (stable-sorted by delivery time, enqueue order
    /// breaking ties). A `Vec` rather than a map: the buffer never exceeds
    /// a few delay slots, and the serde shim only maps string keys.
    pending: Vec<(u64, DeliveredScrape)>,
    /// Scrapes dropped at the source so far.
    dropped: u64,
    /// Duplicate deliveries emitted so far.
    duplicated: u64,
    /// Counter resets injected so far.
    resets: u64,
}

impl ScrapeDegrader {
    /// A degrader for `num_services` services scraping every `interval`.
    pub fn new(cfg: DegradationConfig, interval: SimDuration, num_services: usize) -> Self {
        ScrapeDegrader {
            cfg,
            interval,
            rng: Rng::seeded(cfg.seed).fork("telemetry/degrade"),
            bases: vec![Counters::default(); num_services],
            pending: Vec::new(),
            dropped: 0,
            duplicated: 0,
            resets: 0,
        }
    }

    /// The configuration this degrader runs.
    pub fn config(&self) -> &DegradationConfig {
        &self.cfg
    }

    /// The reorder slack the consuming engine must tolerate.
    pub fn slack(&self) -> SimDuration {
        self.cfg.slack(self.interval)
    }

    /// Scrapes dropped at the source so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Duplicate deliveries emitted so far.
    pub fn duplicated(&self) -> u64 {
        self.duplicated
    }

    /// Counter resets injected so far.
    pub fn resets_injected(&self) -> u64 {
        self.resets
    }

    /// Offers the clean scrape taken at `now` and returns every delivery
    /// due at or before `now`, oldest delivery time first.
    ///
    /// Exactly six RNG draws happen per offer regardless of outcome, so
    /// scrape `k`'s fate depends only on the seed and `k`.
    pub fn offer(&mut self, now: SimTime, raw: Vec<Counters>) -> Vec<DeliveredScrape> {
        // Fixed draw schedule: reset?, victim, drop?, delay?+amount, dup?+delay.
        let u_reset = self.rng.uniform_f64();
        let victim = self.rng.below(self.bases.len().max(1) as u64) as usize;
        let u_drop = self.rng.uniform_f64();
        let u_delay = self.rng.uniform_f64();
        let delay_by = 1 + self
            .rng
            .below(u64::from(self.cfg.max_delay_intervals).max(1));
        let u_dup = self.rng.uniform_f64();

        if u_reset < self.cfg.reset_prob && victim < raw.len() {
            self.bases[victim] = raw[victim];
            self.resets += 1;
        }
        let row: Vec<Counters> = raw
            .iter()
            .zip(&self.bases)
            .map(|(r, b)| r.saturating_sub_fields(b))
            .collect();

        if u_drop < self.cfg.drop_prob {
            self.dropped += 1;
        } else {
            let delayed = u_delay < self.cfg.delay_prob && self.cfg.max_delay_intervals > 0;
            let deliver_at = if delayed {
                now.as_nanos()
                    .saturating_add(self.interval.as_nanos().saturating_mul(delay_by))
            } else {
                now.as_nanos()
            };
            self.pending.push((deliver_at, (now, row.clone())));
            if u_dup < self.cfg.duplicate_prob {
                // The duplicate rides one interval behind the original so
                // it exercises the consumer's coalescing after reorder.
                let dup_at = deliver_at.saturating_add(self.interval.as_nanos());
                self.pending.push((dup_at, (now, row)));
                self.duplicated += 1;
            }
        }

        self.take_due(now)
    }

    /// Pops every pending delivery due at or before `now` without offering
    /// a new scrape (used to drain the pipeline at stream end).
    pub fn take_due(&mut self, now: SimTime) -> Vec<DeliveredScrape> {
        let now_n = now.as_nanos();
        let mut due: Vec<(u64, DeliveredScrape)> = Vec::new();
        let mut keep = Vec::with_capacity(self.pending.len());
        for entry in self.pending.drain(..) {
            if entry.0 <= now_n {
                due.push(entry);
            } else {
                keep.push(entry);
            }
        }
        self.pending = keep;
        // Stable by delivery time: simultaneous deliveries keep enqueue order.
        due.sort_by_key(|(at, _)| *at);
        due.into_iter().map(|(_, scrape)| scrape).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(v: u64, services: usize) -> Vec<Counters> {
        (0..services)
            .map(|_| Counters {
                rx_packets: v,
                ..Counters::default()
            })
            .collect()
    }

    #[test]
    fn pass_through_delivers_everything_in_order() {
        let mut d = ScrapeDegrader::new(DegradationConfig::none(7), SimDuration::from_secs(1), 2);
        for t in 0..20u64 {
            let due = d.offer(SimTime::from_secs(t), row(t, 2));
            assert_eq!(due.len(), 1);
            assert_eq!(due[0].0, SimTime::from_secs(t));
            assert_eq!(due[0].1, row(t, 2));
        }
        assert_eq!(d.dropped(), 0);
        assert_eq!(d.duplicated(), 0);
    }

    #[test]
    fn drops_are_deterministic_and_roughly_at_rate() {
        let cfg = DegradationConfig::none(11).with_drop(0.2);
        let run = || {
            let mut d = ScrapeDegrader::new(cfg, SimDuration::from_secs(1), 1);
            let mut delivered = 0usize;
            for t in 0..1000u64 {
                delivered += d.offer(SimTime::from_secs(t), row(t, 1)).len();
            }
            (delivered, d.dropped())
        };
        let (delivered, dropped) = run();
        assert_eq!(run(), (delivered, dropped), "same seed, same fate");
        assert_eq!(delivered as u64 + dropped, 1000);
        assert!((150..=250).contains(&dropped), "dropped={dropped}");
    }

    #[test]
    fn delays_stay_within_slack_and_duplicates_repeat_scrape_times() {
        let cfg = DegradationConfig::none(13)
            .with_delay(0.5, 3)
            .with_duplicates(0.3);
        let mut d = ScrapeDegrader::new(cfg, SimDuration::from_secs(1), 1);
        assert_eq!(d.slack(), SimDuration::from_secs(3));
        let mut seen: Vec<(u64, u64)> = Vec::new(); // (delivered_at, scrape_time)
        for t in 0..200u64 {
            for (st, _) in d.offer(SimTime::from_secs(t), row(t, 1)) {
                seen.push((t, st.as_secs_f64() as u64));
            }
        }
        // Drain deliveries still in flight past the end of the stream.
        for t in 200..210u64 {
            for (st, _) in d.take_due(SimTime::from_secs(t)) {
                seen.push((t, st.as_secs_f64() as u64));
            }
        }
        for (at, st) in &seen {
            assert!(at - st <= 4, "delivery {at} too late for scrape {st}");
        }
        assert!(d.duplicated() > 0);
        let dups = seen.len() as u64 - (200 - d.dropped());
        assert_eq!(dups, d.duplicated());
    }

    #[test]
    fn resets_rebase_the_victim_counters() {
        let cfg = DegradationConfig::none(17).with_resets(1.0);
        let mut d = ScrapeDegrader::new(cfg, SimDuration::from_secs(1), 1);
        let first = d.offer(SimTime::from_secs(0), row(100, 1));
        // Reset fired at the first scrape: reported counters re-base to 0.
        assert_eq!(first[0].1[0].rx_packets, 0);
        assert_eq!(d.resets_injected(), 1);
    }

    #[test]
    fn checkpoint_roundtrip_preserves_the_stream() {
        let cfg = DegradationConfig::none(23)
            .with_drop(0.1)
            .with_delay(0.4, 2)
            .with_duplicates(0.2)
            .with_resets(0.05);
        let mut whole = ScrapeDegrader::new(cfg, SimDuration::from_secs(1), 2);
        let mut first_half = ScrapeDegrader::new(cfg, SimDuration::from_secs(1), 2);
        let mut a = Vec::new();
        let mut b = Vec::new();
        for t in 0..50u64 {
            a.extend(whole.offer(SimTime::from_secs(t), row(t, 2)));
            b.extend(first_half.offer(SimTime::from_secs(t), row(t, 2)));
        }
        // Serialize mid-stream, restore, and continue: identical deliveries.
        let json = serde_json::to_string(&first_half).unwrap();
        let mut restored: ScrapeDegrader = serde_json::from_str(&json).unwrap();
        for t in 50..100u64 {
            a.extend(whole.offer(SimTime::from_secs(t), row(t, 2)));
            b.extend(restored.offer(SimTime::from_secs(t), row(t, 2)));
        }
        assert_eq!(a, b);
    }
}
