//! Windowed metric datasets — the `D_0(M, s)` / `D_s(M, s')` objects of
//! Algorithms 1 and 2.

use icfl_micro::ServiceId;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Windowed samples for every (metric, service) pair over one phase.
///
/// `values[m][s]` is the time-ordered vector of per-window metric values of
/// metric `m` at service `s`. A `Dataset` is produced by
/// [`Recorder::dataset`](crate::Recorder::dataset) for the baseline phase,
/// each fault phase, and each production evaluation window.
///
/// Each per-(metric, service) series is behind an [`Arc`], so cloning a
/// `Dataset` — or sharing one series across the several metric catalogs
/// that contain the same metric — never copies sample data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    metric_names: Vec<String>,
    values: Vec<Vec<Arc<Vec<f64>>>>,
}

impl Dataset {
    /// Assembles a dataset from owned per-window values.
    ///
    /// # Panics
    ///
    /// Panics if `values` is not `[metric][service][window]`-shaped with one
    /// outer entry per metric name.
    pub fn new(metric_names: Vec<String>, values: Vec<Vec<Vec<f64>>>) -> Self {
        Dataset::from_shared(
            metric_names,
            values
                .into_iter()
                .map(|m| m.into_iter().map(Arc::new).collect())
                .collect(),
        )
    }

    /// Assembles a dataset from already-shared series (the recorder's
    /// window cache hands the same `Arc`s to every catalog that uses a
    /// metric).
    ///
    /// # Panics
    ///
    /// Panics as [`Dataset::new`] does on shape mismatch.
    pub fn from_shared(metric_names: Vec<String>, values: Vec<Vec<Arc<Vec<f64>>>>) -> Self {
        assert_eq!(
            metric_names.len(),
            values.len(),
            "one value matrix per metric"
        );
        if let Some(first) = values.first() {
            for m in &values[1..] {
                assert_eq!(m.len(), first.len(), "all metrics cover the same services");
            }
        }
        Dataset {
            metric_names,
            values,
        }
    }

    /// Number of metrics.
    pub fn num_metrics(&self) -> usize {
        self.values.len()
    }

    /// Number of services.
    pub fn num_services(&self) -> usize {
        self.values.first().map_or(0, Vec::len)
    }

    /// Metric display names, in order.
    pub fn metric_names(&self) -> &[String] {
        &self.metric_names
    }

    /// The windowed samples of metric `metric` at `service`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn samples(&self, metric: usize, service: ServiceId) -> &[f64] {
        &self.values[metric][service.index()]
    }

    /// Number of windows per (metric, service) series.
    pub fn num_windows(&self) -> usize {
        self.values
            .first()
            .and_then(|m| m.first())
            .map_or(0, |s| s.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Dataset {
        Dataset::new(
            vec!["m0".into(), "m1".into()],
            vec![
                vec![vec![1.0, 2.0], vec![3.0, 4.0]],
                vec![vec![5.0, 6.0], vec![7.0, 8.0]],
            ],
        )
    }

    #[test]
    fn shape_accessors() {
        let d = demo();
        assert_eq!(d.num_metrics(), 2);
        assert_eq!(d.num_services(), 2);
        assert_eq!(d.num_windows(), 2);
        assert_eq!(d.metric_names(), &["m0".to_owned(), "m1".to_owned()]);
        assert_eq!(d.samples(1, ServiceId::from_index(0)), &[5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "one value matrix per metric")]
    fn mismatched_names_panic() {
        Dataset::new(vec!["a".into()], vec![vec![], vec![]]);
    }

    #[test]
    fn serde_roundtrip() {
        let d = demo();
        let json = serde_json::to_string(&d).unwrap();
        let back: Dataset = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn empty_dataset_dimensions() {
        let d = Dataset::new(vec![], vec![]);
        assert_eq!(d.num_metrics(), 0);
        assert_eq!(d.num_services(), 0);
        assert_eq!(d.num_windows(), 0);
    }
}
