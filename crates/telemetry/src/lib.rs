//! # icfl-telemetry — metrics pipeline for the ICFL reproduction
//!
//! The observability substrate standing in for cAdvisor + Prometheus + log
//! scraping in the paper's testbed (§V-A):
//!
//! * [`Recorder`] — periodic counter scraping from a simulated
//!   [`Cluster`](icfl_micro::Cluster);
//! * [`WindowConfig`] — the paper's 60 s hopping windows, hopped every 30 s;
//! * [`WindowEngine`] — the single incremental hopping-window finalizer
//!   behind both the offline recorder and the online streaming ingester;
//! * [`RawMetric`] / [`MetricSpec`] — raw rates and derived
//!   (dependent ⊘ independent) metrics, the deconfounding heuristic of §V-A;
//! * [`MetricCatalog`] — the named metric sets of Table II;
//! * [`Dataset`] — the windowed `D(M, s)` sample matrices consumed by
//!   Algorithms 1 and 2 in `icfl-core`;
//! * [`TimeSeries`] — ad-hoc series transformations (rates, smoothing);
//! * [`TemplateMiner`] — Drain-style clustering of raw log messages into
//!   templates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod catalog;
mod dataset;
mod engine;
mod metric;
mod recorder;
mod templates;
mod timeseries;
mod window;

pub use catalog::MetricCatalog;
pub use dataset::Dataset;
pub use engine::{EngineConfig, WindowEngine};
pub use metric::{MetricSpec, RawMetric};
pub use recorder::{Recorder, TelemetryError};
pub use templates::{Template, TemplateId, TemplateMiner, Token};
pub use timeseries::{TimePoint, TimeSeries};
pub use window::WindowConfig;
