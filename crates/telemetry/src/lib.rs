//! # icfl-telemetry — metrics pipeline for the ICFL reproduction
//!
//! The observability substrate standing in for cAdvisor + Prometheus + log
//! scraping in the paper's testbed (§V-A):
//!
//! * [`Recorder`] — periodic counter scraping from a simulated
//!   [`Cluster`](icfl_micro::Cluster);
//! * [`WindowConfig`] — the paper's 60 s hopping windows, hopped every 30 s;
//! * [`WindowEngine`] — the single incremental hopping-window finalizer
//!   behind both the offline recorder and the online streaming ingester,
//!   with a watermarked reorder/validity path for degraded telemetry and
//!   serializable checkpoints ([`EngineSnapshot`]);
//! * [`ScrapeDegrader`] / [`DegradationConfig`] — the seeded
//!   telemetry-degradation model (drops, delivery jitter, duplicates,
//!   counter resets) injected between the scrape loop and the engine;
//! * [`RawMetric`] / [`MetricSpec`] — raw rates and derived
//!   (dependent ⊘ independent) metrics, the deconfounding heuristic of §V-A;
//! * [`MetricCatalog`] — the named metric sets of Table II;
//! * [`Dataset`] — the windowed `D(M, s)` sample matrices consumed by
//!   Algorithms 1 and 2 in `icfl-core`;
//! * [`TimeSeries`] — ad-hoc series transformations (rates, smoothing);
//! * [`TemplateMiner`] — Drain-style clustering of raw log messages into
//!   templates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod catalog;
mod dataset;
mod degrade;
mod engine;
mod metric;
mod recorder;
mod templates;
mod timeseries;
mod window;

pub use catalog::MetricCatalog;
pub use dataset::Dataset;
pub use degrade::{DegradationConfig, DeliveredScrape, ScrapeDegrader};
pub use engine::{DegradeStats, EngineConfig, EngineSnapshot, WindowEngine, WindowValidity};
pub use metric::{MetricSpec, RawMetric};
pub use recorder::{Recorder, TelemetryError};
pub use templates::{Template, TemplateId, TemplateMiner, Token};
pub use timeseries::{TimePoint, TimeSeries};
pub use window::WindowConfig;
