//! Property-based tests of the scenario harness's seed-derivation
//! contract: per-(component, service) random streams are *named* forks of
//! the root seed, so extending a topology with additional services never
//! perturbs the streams — and therefore the observable behavior — of the
//! services that were already there.

use icfl_apps::App;
use icfl_loadgen::UserFlow;
use icfl_micro::{steps, ClusterSpec, Counters, ServiceSpec};
use icfl_scenario::{seeds, Scenario};
use icfl_sim::SimTime;
use proptest::prelude::*;

/// A chain app `s0 → s1 → … → s(n−1)` with `extra` additional isolated
/// services appended (never called, never driven) — the topology-extension
/// scenario the harness must keep stable.
fn chain_app(n: usize, extra: usize) -> App {
    let mut spec = ClusterSpec::new("chain");
    for i in 0..n {
        let mut svc = ServiceSpec::web(format!("s{i}")).with_concurrency(8);
        let steps = if i + 1 < n {
            vec![
                steps::compute_ms(1),
                steps::call(&format!("s{}", i + 1), "/"),
            ]
        } else {
            vec![steps::compute_ms(1)]
        };
        svc = svc.endpoint("/", steps);
        spec = spec.service(svc);
    }
    for i in 0..extra {
        spec = spec.service(
            ServiceSpec::web(format!("x{i}"))
                .with_concurrency(8)
                .endpoint("/", vec![steps::compute_ms(1)]),
        );
    }
    App {
        name: "chain".into(),
        spec,
        flows: vec![UserFlow::new("root", "s0", "/")],
        fault_targets: (0..n).map(|i| format!("s{i}")).collect(),
    }
}

/// Runs the scenario for 20 simulated seconds and returns the counters of
/// the first `n` (chain) services.
fn chain_counters(app: &App, seed: u64, n: usize) -> Vec<Counters> {
    let mut scenario = Scenario::builder(app, seed).build().expect("assemble");
    scenario.run_until(SimTime::from_secs(20));
    (0..n)
        .map(|i| {
            let id = scenario
                .cluster
                .service_id(&format!("s{i}"))
                .expect("chain service");
            scenario.cluster.counters(id)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Adding services to a topology leaves the per-(component, service)
    /// streams — and hence the simulated behavior — of existing services
    /// untouched: the extended app reproduces the base app's counters
    /// byte-for-byte on the shared services.
    #[test]
    fn added_services_do_not_perturb_existing_streams(
        seed in 0u64..u64::MAX,
        n in 2usize..5,
        extra in 1usize..4,
    ) {
        let base = chain_app(n, 0);
        let extended = chain_app(n, extra);
        prop_assert_eq!(
            chain_counters(&base, seed, n),
            chain_counters(&extended, seed, n)
        );
    }

    /// Sweep seed derivation is index-pure: a job's root seed depends only
    /// on (base, index, stream), never on the number of jobs — so growing
    /// a sweep cannot re-seed earlier jobs.
    #[test]
    fn sweep_seeds_are_index_pure_and_streams_disjoint(
        base in any::<u64>(),
        index in 0usize..1_000,
    ) {
        let campaign = seeds::campaign_fault(base, index);
        let eval = seeds::eval_case(base, index);
        prop_assert_eq!(campaign, seeds::derive(base, index, seeds::CAMPAIGN_STREAM));
        prop_assert_eq!(eval, seeds::derive(base, index, seeds::EVAL_STREAM));
        prop_assert_ne!(campaign, eval);
        // Consecutive indices of one stream never collide either.
        prop_assert_ne!(campaign, seeds::campaign_fault(base, index + 1));
    }
}
