//! Scrape-trace recording and replay: the wire format between a simulated
//! run and the networked ingest path.
//!
//! A [`TraceTap`] records every raw counter scrape of a scenario — the
//! exact rows a [`StreamingIngester`](../../icfl_online) would have seen —
//! into a [`ScrapeTrace`]: a self-describing header ([`TraceMeta`]: app,
//! seed, scrape interval, service names, scheduled fault episodes)
//! followed by one line per scrape. The trace is what `icfl-loadgen-http`
//! replays over the wire against `icfl-server`, and what the loopback
//! determinism test feeds both the server and an in-process session to
//! prove the socket boundary changes nothing.
//!
//! # Wire format
//!
//! Line 1 is the [`TraceMeta`] as serde JSON. Every following line is one
//! scrape in the compact form
//!
//! ```text
//! [<t_nanos>,[[c0,...,c10],[c0,...,c10],...]]
//! ```
//!
//! — valid JSON, but encoded and parsed by hand ([`encode_scrape_line`] /
//! [`parse_scrape_line`]) because the server's ingest hot path decodes
//! tens of thousands of these per second and a generic `Value` round trip
//! would dominate the cost. The 11 counter fields follow the declaration
//! order of [`Counters`] (see [`counters_to_array`]); that order is part
//! of the format and is pinned by a unit test.

use crate::TelemetryTap;
use icfl_micro::{Cluster, Counters};
use icfl_sim::{Sim, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Number of `u64` fields in one [`Counters`] record on the wire.
pub const COUNTER_FIELDS: usize = 11;

/// Flattens a [`Counters`] record into its wire order: `cpu_nanos`,
/// `rx_packets`, `tx_packets`, `logs_total`, `logs_error`, `logs_info`,
/// `requests_received`, `requests_sent`, `responses_ok`, `responses_err`,
/// `queue_dropped`.
pub fn counters_to_array(c: &Counters) -> [u64; COUNTER_FIELDS] {
    [
        c.cpu_nanos,
        c.rx_packets,
        c.tx_packets,
        c.logs_total,
        c.logs_error,
        c.logs_info,
        c.requests_received,
        c.requests_sent,
        c.responses_ok,
        c.responses_err,
        c.queue_dropped,
    ]
}

/// Rebuilds a [`Counters`] record from its wire order (inverse of
/// [`counters_to_array`]).
pub fn counters_from_array(a: [u64; COUNTER_FIELDS]) -> Counters {
    Counters {
        cpu_nanos: a[0],
        rx_packets: a[1],
        tx_packets: a[2],
        logs_total: a[3],
        logs_error: a[4],
        logs_info: a[5],
        requests_received: a[6],
        requests_sent: a[7],
        responses_ok: a[8],
        responses_err: a[9],
        queue_dropped: a[10],
    }
}

/// One scheduled fault episode carried in the trace header, so a replay
/// consumer can score detection latency against ground truth without the
/// original schedule object.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEpisode {
    /// Episode start on the simulation clock, in nanoseconds.
    pub start_nanos: u64,
    /// Episode end (fault cleared), in nanoseconds.
    pub end_nanos: u64,
    /// Names of the faulted services (one per concurrent fault).
    pub services: Vec<String>,
}

/// The self-describing trace header (line 1 of the file).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceMeta {
    /// Application name (doubles as the model-registry key).
    pub app: String,
    /// Seed of the recorded run.
    pub seed: u64,
    /// Scrape interval, in nanoseconds.
    pub interval_nanos: u64,
    /// Service names in [`icfl_micro::ServiceId`] index order; the number
    /// of columns every scrape line must have.
    pub service_names: Vec<String>,
    /// Ground-truth fault episodes scheduled in the recorded run.
    pub episodes: Vec<TraceEpisode>,
}

impl TraceMeta {
    /// The ground-truth episode active at `nanos`, extended by `slack`
    /// nanoseconds past its end — detection lags injection, so a verdict
    /// timestamp lands *after* the fault window it explains. Returns the
    /// first matching episode (episodes are disjoint and ordered).
    pub fn episode_covering(&self, nanos: u64, slack: u64) -> Option<&TraceEpisode> {
        self.episodes
            .iter()
            .find(|ep| nanos >= ep.start_nanos && nanos <= ep.end_nanos.saturating_add(slack))
    }
}

/// A recorded scrape stream plus its header, replayable over the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScrapeTrace {
    /// The header.
    pub meta: TraceMeta,
    /// `(time_nanos, one Counters row per service)`, strictly increasing
    /// in time.
    pub scrapes: Vec<(u64, Vec<Counters>)>,
}

/// Errors raised while decoding a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The header line is missing or not valid `TraceMeta` JSON.
    Header(String),
    /// A scrape line failed to parse (1-based line number, reason).
    Line(usize, String),
    /// An I/O failure while reading or writing the trace file.
    Io(String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Header(e) => write!(f, "trace header: {e}"),
            TraceError::Line(n, e) => write!(f, "trace line {n}: {e}"),
            TraceError::Io(e) => write!(f, "trace io: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl ScrapeTrace {
    /// Serializes the whole trace: header line, then one scrape per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = serde_json::to_string(&self.meta).expect("trace meta serializes");
        out.push('\n');
        for (at, row) in &self.scrapes {
            out.push_str(&encode_scrape_line(*at, row));
            out.push('\n');
        }
        out
    }

    /// Parses a trace serialized by [`ScrapeTrace::to_jsonl`].
    ///
    /// # Errors
    ///
    /// [`TraceError::Header`] on a bad first line, [`TraceError::Line`] on
    /// a bad scrape line (including a row whose service count disagrees
    /// with the header).
    pub fn from_jsonl(text: &str) -> Result<ScrapeTrace, TraceError> {
        let mut lines = text.lines();
        let header = lines
            .next()
            .ok_or_else(|| TraceError::Header("empty input".to_owned()))?;
        let meta: TraceMeta =
            serde_json::from_str(header).map_err(|e| TraceError::Header(e.to_string()))?;
        let mut scrapes = Vec::new();
        for (i, line) in lines.enumerate() {
            if line.is_empty() {
                continue;
            }
            let (at, row) = parse_scrape_line(line).map_err(|e| TraceError::Line(i + 2, e))?;
            if row.len() != meta.service_names.len() {
                return Err(TraceError::Line(
                    i + 2,
                    format!(
                        "{} services in row, header declares {}",
                        row.len(),
                        meta.service_names.len()
                    ),
                ));
            }
            scrapes.push((at, row));
        }
        Ok(ScrapeTrace { meta, scrapes })
    }

    /// Writes the trace to `path` (creating parent directories).
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] on any filesystem failure.
    pub fn save(&self, path: &Path) -> Result<(), TraceError> {
        let io = |e: std::io::Error| TraceError::Io(format!("{}: {e}", path.display()));
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).map_err(io)?;
        }
        let mut f = std::io::BufWriter::new(std::fs::File::create(path).map_err(io)?);
        f.write_all(self.to_jsonl().as_bytes()).map_err(io)?;
        f.flush().map_err(io)
    }

    /// Reads a trace written by [`ScrapeTrace::save`].
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] on filesystem failure, otherwise as
    /// [`ScrapeTrace::from_jsonl`].
    pub fn load(path: &Path) -> Result<ScrapeTrace, TraceError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| TraceError::Io(format!("{}: {e}", path.display())))?;
        ScrapeTrace::from_jsonl(&text)
    }

    /// The simulation span covered by the scrapes (zero when empty).
    pub fn span(&self) -> SimDuration {
        match (self.scrapes.first(), self.scrapes.last()) {
            (Some(&(first, _)), Some(&(last, _))) => SimDuration::from_nanos(last - first),
            _ => SimDuration::ZERO,
        }
    }
}

/// Encodes one scrape as a compact single-line JSON array
/// `[t,[[...],[...]]]`.
pub fn encode_scrape_line(at_nanos: u64, row: &[Counters]) -> String {
    // ~20 digits per field plus separators; pre-size to skip reallocs.
    let mut out = String::with_capacity(24 + row.len() * (COUNTER_FIELDS * 21 + 4));
    out.push('[');
    out.push_str(&at_nanos.to_string());
    out.push_str(",[");
    for (i, c) in row.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        for (j, v) in counters_to_array(c).iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&v.to_string());
        }
        out.push(']');
    }
    out.push_str("]]");
    out
}

/// Decodes one line produced by [`encode_scrape_line`]. Hand-rolled for
/// the server's ingest hot path; accepts optional spaces after commas but
/// is otherwise strict.
///
/// # Errors
///
/// A human-readable reason on any structural mismatch (wrong bracketing,
/// non-digit where a `u64` is required, wrong field count, overflow,
/// trailing garbage).
pub fn parse_scrape_line(line: &str) -> Result<(u64, Vec<Counters>), String> {
    let mut p = Cursor {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.expect(b'[')?;
    let at = p.u64()?;
    p.expect(b',')?;
    p.expect(b'[')?;
    let mut row = Vec::new();
    if p.peek() == Some(b']') {
        p.pos += 1;
    } else {
        loop {
            p.expect(b'[')?;
            let mut fields = [0u64; COUNTER_FIELDS];
            for (j, slot) in fields.iter_mut().enumerate() {
                if j > 0 {
                    p.expect(b',')?;
                }
                *slot = p.u64()?;
            }
            p.expect(b']')?;
            row.push(counters_from_array(fields));
            match p.peek() {
                Some(b',') => p.pos += 1,
                Some(b']') => {
                    p.pos += 1;
                    break;
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", p.pos)),
            }
            p.skip_spaces();
        }
    }
    p.expect(b']')?;
    p.skip_spaces();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at {}", p.pos));
    }
    Ok((at, row))
}

/// Minimal byte cursor for [`parse_scrape_line`].
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn skip_spaces(&mut self) {
        while self.bytes.get(self.pos) == Some(&b' ') {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_spaces();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        match self.peek() {
            Some(got) if got == b => {
                self.pos += 1;
                Ok(())
            }
            got => Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                got.map(|g| g as char)
            )),
        }
    }

    fn u64(&mut self) -> Result<u64, String> {
        self.skip_spaces();
        let start = self.pos;
        let mut v: u64 = 0;
        while let Some(&b) = self.bytes.get(self.pos) {
            if !b.is_ascii_digit() {
                break;
            }
            v = v
                .checked_mul(10)
                .and_then(|v| v.checked_add(u64::from(b - b'0')))
                .ok_or_else(|| format!("u64 overflow at byte {start}"))?;
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected digit at byte {start}"));
        }
        Ok(v)
    }
}

/// The recorded stream: `(t_nanos, one Counters row per service)`.
type ScrapeRows = Vec<(u64, Vec<Counters>)>;

/// A shared sink the [`TraceTap`] scrape loop appends into.
#[derive(Debug, Clone, Default)]
pub struct ScrapeSink(Arc<Mutex<ScrapeRows>>);

impl ScrapeSink {
    /// Drains the recorded scrapes (strictly increasing in time).
    pub fn take(&self) -> Vec<(u64, Vec<Counters>)> {
        std::mem::take(&mut *self.0.lock().expect("scrape sink lock"))
    }
}

/// Telemetry tap that records every raw scrape instead of windowing it —
/// the recording side of the trace format. Attach via
/// [`ScenarioBuilder::build_with`](crate::ScenarioBuilder::build_with),
/// run the scenario, then [`ScrapeSink::take`] the stream.
#[derive(Debug, Clone, Copy)]
pub struct TraceTap {
    interval: SimDuration,
    instances: bool,
}

impl TraceTap {
    /// A tap scraping every `interval` from time zero, one row per
    /// *service* (aggregated across replicas — the pre-replica wire shape).
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(interval: SimDuration) -> TraceTap {
        assert!(
            interval > SimDuration::ZERO,
            "trace tap interval must be positive"
        );
        TraceTap {
            interval,
            instances: false,
        }
    }

    /// A tap scraping every `interval` with one row per *replica*
    /// ([`Cluster::num_rows`] rows, in dense row order) — the recording
    /// side of instance-granularity online localization. Feed consumers
    /// name rows via [`Cluster::target_label`].
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn instances(interval: SimDuration) -> TraceTap {
        TraceTap {
            instances: true,
            ..TraceTap::new(interval)
        }
    }
}

impl TelemetryTap for TraceTap {
    type Handle = ScrapeSink;

    fn attach(self, sim: &mut Sim<Cluster>, cluster: &Cluster) -> Self::Handle {
        let sink = ScrapeSink::default();
        let shared = Arc::clone(&sink.0);
        let n = if self.instances {
            cluster.num_rows()
        } else {
            cluster.num_services()
        };
        sim.schedule_periodic(
            SimTime::ZERO,
            self.interval,
            move |sim, cl: &mut Cluster| {
                let row = cl.scrape_rows(n);
                shared
                    .lock()
                    .expect("scrape sink lock")
                    .push((sim.now().as_nanos(), row));
            },
        );
        sink
    }

    fn describe(&self) -> String {
        if self.instances {
            format!("trace-instances(interval={})", self.interval)
        } else {
            format!("trace(interval={})", self.interval)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_counters(k: u64) -> Counters {
        counters_from_array([
            k,
            k + 1,
            k + 2,
            k + 3,
            k + 4,
            k + 5,
            k + 6,
            k + 7,
            k + 8,
            k + 9,
            k + 10,
        ])
    }

    #[test]
    fn episode_covering_honors_bounds_and_slack() {
        let meta = TraceMeta {
            app: "demo".into(),
            seed: 1,
            interval_nanos: 1_000_000_000,
            service_names: vec!["a".into()],
            episodes: vec![
                TraceEpisode {
                    start_nanos: 100,
                    end_nanos: 200,
                    services: vec!["a".into()],
                },
                TraceEpisode {
                    start_nanos: 500,
                    end_nanos: 600,
                    services: vec!["a".into()],
                },
            ],
        };
        assert!(meta.episode_covering(99, 0).is_none());
        assert_eq!(meta.episode_covering(100, 0).unwrap().start_nanos, 100);
        assert_eq!(meta.episode_covering(200, 0).unwrap().start_nanos, 100);
        // Slack extends attribution past the fault end (detection lag).
        assert!(meta.episode_covering(250, 0).is_none());
        assert_eq!(meta.episode_covering(250, 50).unwrap().start_nanos, 100);
        assert_eq!(meta.episode_covering(500, 0).unwrap().start_nanos, 500);
        // Slack saturates instead of overflowing.
        assert!(meta.episode_covering(u64::MAX, u64::MAX).is_some());
    }

    #[test]
    fn counters_array_roundtrip_pins_field_order() {
        let c = Counters {
            cpu_nanos: 1,
            rx_packets: 2,
            tx_packets: 3,
            logs_total: 4,
            logs_error: 5,
            logs_info: 6,
            requests_received: 7,
            requests_sent: 8,
            responses_ok: 9,
            responses_err: 10,
            queue_dropped: 11,
        };
        assert_eq!(counters_to_array(&c), [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]);
        assert_eq!(counters_from_array(counters_to_array(&c)), c);
    }

    #[test]
    fn scrape_line_roundtrips_and_is_valid_json() {
        let row = vec![sample_counters(100), sample_counters(u64::MAX - 10)];
        let line = encode_scrape_line(987_654_321, &row);
        serde_json::parse_value_str(&line).expect("scrape line is valid JSON");
        let (at, parsed) = parse_scrape_line(&line).unwrap();
        assert_eq!(at, 987_654_321);
        assert_eq!(parsed, row);
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        for bad in [
            "",
            "[1,[[1,2,3]]]",                    // wrong field count
            "[1,[[1,2,3,4,5,6,7,8,9,10,11]]",   // unbalanced
            "[1,[[1,2,3,4,5,6,7,8,9,10,11]]]x", // trailing garbage
            "[-1,[[1,2,3,4,5,6,7,8,9,10,11]]]", // negative time
            "[1,[[99999999999999999999999,0,0,0,0,0,0,0,0,0,0]]]", // overflow
        ] {
            assert!(parse_scrape_line(bad).is_err(), "accepted: {bad}");
        }
        // Empty row is structurally fine; the header-count check catches it.
        assert_eq!(parse_scrape_line("[5,[]]").unwrap(), (5, Vec::new()));
    }

    #[test]
    fn trace_jsonl_roundtrip() {
        let trace = ScrapeTrace {
            meta: TraceMeta {
                app: "demo".to_owned(),
                seed: 7,
                interval_nanos: 1_000_000_000,
                service_names: vec!["a".to_owned(), "b".to_owned()],
                episodes: vec![TraceEpisode {
                    start_nanos: 10,
                    end_nanos: 20,
                    services: vec!["b".to_owned()],
                }],
            },
            scrapes: vec![
                (1_000_000_000, vec![sample_counters(1), sample_counters(2)]),
                (2_000_000_000, vec![sample_counters(3), sample_counters(4)]),
            ],
        };
        let text = trace.to_jsonl();
        assert_eq!(ScrapeTrace::from_jsonl(&text).unwrap(), trace);
        assert_eq!(trace.span(), SimDuration::from_secs(1));
    }

    #[test]
    fn from_jsonl_rejects_row_width_mismatch() {
        let trace = ScrapeTrace {
            meta: TraceMeta {
                app: "demo".to_owned(),
                seed: 0,
                interval_nanos: 1,
                service_names: vec!["a".to_owned()],
                episodes: Vec::new(),
            },
            scrapes: vec![(1, vec![sample_counters(1), sample_counters(2)])],
        };
        match ScrapeTrace::from_jsonl(&trace.to_jsonl()) {
            Err(TraceError::Line(2, why)) => assert!(why.contains("2 services")),
            other => panic!("expected width mismatch, got {other:?}"),
        }
    }
}
