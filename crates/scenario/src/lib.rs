//! # icfl-scenario — the unified scenario harness
//!
//! One assembly path for every simulated run in the workspace. The paper's
//! platform (Fig. 3) runs a single substrate under both its
//! data-collection and inference services; this crate is that substrate's
//! constructor. A [`ScenarioBuilder`] owns the *entire* run assembly —
//! application instantiation, per-(component, service) seed derivation,
//! `Sim` + `Cluster` construction and start, closed-/open-loop load
//! attach, fault-injection scheduling, and telemetry taps — so the offline
//! campaign runner, the online session driver, the baselines, the
//! experiment binaries, the Criterion benches, and the integration tests
//! all assemble runs through the same code, in the same order.
//!
//! Assembly order is part of the determinism contract: events scheduled at
//! the same simulation time tie-break by insertion order, so every site
//! must create the cluster, start it, attach telemetry, start load, and
//! schedule faults in exactly this sequence for byte-identical outputs.
//! Centralizing the sequence here makes it impossible for call sites to
//! drift.
//!
//! ```
//! use icfl_scenario::{RecorderTap, Scenario};
//! use icfl_sim::SimTime;
//! use icfl_telemetry::{MetricCatalog, WindowConfig};
//!
//! let app = icfl_apps::pattern1();
//! let phase = (SimTime::ZERO, SimTime::from_secs(120));
//! let (mut scenario, recorder) = Scenario::builder(&app, 7)
//!     .build_with(RecorderTap::new(phase, WindowConfig::from_secs(10, 5)))?;
//! scenario.run_until(phase.1);
//! let ds = recorder.dataset(&MetricCatalog::raw_all()).unwrap();
//! assert_eq!(ds.num_windows(), 23);
//! # Ok::<(), icfl_scenario::ScenarioError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod seeds;
pub mod trace;

pub use trace::{ScrapeSink, ScrapeTrace, TraceEpisode, TraceError, TraceMeta, TraceTap};

use icfl_apps::App;
use icfl_faults::{arm_cascade, CascadeRule, FaultInjector, InterventionTrace};
use icfl_loadgen::{start_load, ArrivalModel, LoadConfig, LoadError, UserFlow};
use icfl_micro::{BuildError, Cluster, FaultKind, ServiceId, TargetId};
use icfl_sim::{Sim, SimTime};
use icfl_telemetry::{Recorder, WindowConfig};

/// Errors raised while assembling a scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioError {
    /// The application's cluster failed to build (also covers unknown
    /// preset-fault service names).
    Build(BuildError),
    /// The load generator rejected its configuration.
    Load(LoadError),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Build(e) => write!(f, "cluster build failed: {e}"),
            ScenarioError::Load(e) => write!(f, "load generator failed: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<BuildError> for ScenarioError {
    fn from(e: BuildError) -> Self {
        ScenarioError::Build(e)
    }
}

impl From<LoadError> for ScenarioError {
    fn from(e: LoadError) -> Self {
        ScenarioError::Load(e)
    }
}

/// A telemetry collector that can be attached to a scenario at the fixed
/// point in its assembly order (after the cluster starts, before load).
///
/// The offline [`RecorderTap`] and the online streaming-ingester tap (in
/// `icfl-online`) are the two implementations — both drive the same
/// `icfl_telemetry::WindowEngine`, configured for batch or streaming
/// collection. [`NoTap`] assembles a scenario with no telemetry at all
/// (topology probes, scheduler benches).
pub trait TelemetryTap {
    /// The collector handle returned to the caller (e.g. a `Recorder`).
    type Handle;

    /// Attaches the collector to the not-yet-run simulation.
    fn attach(self, sim: &mut Sim<Cluster>, cluster: &Cluster) -> Self::Handle;

    /// A short description recorded in the run manifest (e.g. `"none"`,
    /// `"recorder"`, or an ingester's degradation summary).
    fn describe(&self) -> String {
        "custom".to_owned()
    }
}

/// No telemetry: the scenario runs without any scrape loop.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoTap;

impl TelemetryTap for NoTap {
    type Handle = ();

    fn attach(self, _sim: &mut Sim<Cluster>, _cluster: &Cluster) -> Self::Handle {}

    fn describe(&self) -> String {
        "none".to_owned()
    }
}

/// Offline collection: a phase-scoped [`Recorder`] over the shared window
/// engine, as used by campaigns, production runs, and figure experiments.
#[derive(Debug, Clone, Copy)]
pub struct RecorderTap {
    phase: (SimTime, SimTime),
    windows: WindowConfig,
    instances: bool,
}

impl RecorderTap {
    /// A recorder observing the hopping `windows` inside `phase`, with one
    /// telemetry row per *service* (replica counters aggregated — the
    /// classic layout).
    pub fn new(phase: (SimTime, SimTime), windows: WindowConfig) -> Self {
        RecorderTap {
            phase,
            windows,
            instances: false,
        }
    }

    /// A recorder with one telemetry row per *replica* in the cluster's
    /// flattened service-major row order ([`Cluster::row_targets`] names
    /// the rows). On single-replica clusters this is byte-identical to
    /// [`RecorderTap::new`].
    pub fn instances(phase: (SimTime, SimTime), windows: WindowConfig) -> Self {
        RecorderTap {
            phase,
            windows,
            instances: true,
        }
    }
}

impl TelemetryTap for RecorderTap {
    type Handle = Recorder;

    fn attach(self, sim: &mut Sim<Cluster>, cluster: &Cluster) -> Self::Handle {
        let rows = if self.instances {
            cluster.num_rows()
        } else {
            cluster.num_services()
        };
        Recorder::attach(sim, rows, self.phase, self.windows)
    }

    fn describe(&self) -> String {
        if self.instances {
            "recorder-instances".to_owned()
        } else {
            "recorder".to_owned()
        }
    }
}

/// One fault scheduled onto the simulation clock.
struct ScheduledFault {
    target: TargetId,
    fault: FaultKind,
    from: SimTime,
    to: SimTime,
    trace: InterventionTrace,
}

/// One armed overload-triggered cascade.
struct ScheduledCascade {
    rule: CascadeRule,
    until: SimTime,
    trace: InterventionTrace,
}

/// Builder for one simulated run. See the [crate docs](crate) for the
/// assembly order it guarantees.
pub struct ScenarioBuilder<'a> {
    app: &'a App,
    seed: u64,
    replicas: usize,
    arrival: Option<ArrivalModel>,
    flows: Option<Vec<UserFlow>>,
    preset_faults: Vec<(String, FaultKind)>,
    scheduled: Vec<ScheduledFault>,
    cascades: Vec<ScheduledCascade>,
}

impl<'a> ScenarioBuilder<'a> {
    /// Sets the closed-loop load scale (default 1×).
    pub fn replicas(mut self, replicas: usize) -> Self {
        self.replicas = replicas;
        self
    }

    /// Overrides the arrival model (e.g. open-loop for Fig. 2's
    /// deconfounded arm). Defaults to the [`LoadConfig`] closed-loop
    /// model.
    pub fn arrival(mut self, model: ArrivalModel) -> Self {
        self.arrival = Some(model);
        self
    }

    /// Overrides the driven userflows (default: all of the app's flows).
    /// Fig. 4 uses this to trace one flow at a time.
    pub fn flows(mut self, flows: Vec<UserFlow>) -> Self {
        self.flows = Some(flows);
        self
    }

    /// Activates `fault` on the named service from time zero, before the
    /// cluster starts (Fig. 2's always-on fault arms).
    pub fn preset_fault(mut self, service: &str, fault: FaultKind) -> Self {
        self.preset_faults.push((service.to_owned(), fault));
        self
    }

    /// Schedules `fault` on `service` over `[from, to]`, logging both
    /// transitions to `trace`. Faults fire in the order they were added.
    pub fn fault_between(
        self,
        service: ServiceId,
        fault: FaultKind,
        from: SimTime,
        to: SimTime,
        trace: &InterventionTrace,
    ) -> Self {
        self.target_fault_between(TargetId::Service(service), fault, from, to, trace)
    }

    /// Schedules `fault` on a [`TargetId`] — a whole service or one replica
    /// of it — over `[from, to]`, logging both transitions to `trace`.
    /// Faults fire in the order they were added.
    pub fn target_fault_between(
        mut self,
        target: TargetId,
        fault: FaultKind,
        from: SimTime,
        to: SimTime,
        trace: &InterventionTrace,
    ) -> Self {
        self.scheduled.push(ScheduledFault {
            target,
            fault,
            from,
            to,
            trace: trace.clone(),
        });
        self
    }

    /// Arms an overload-triggered [`CascadeRule`] active until `until`:
    /// when the watched service's queue overflow crosses the rule's
    /// threshold, the secondary fault is injected (once) and recorded in
    /// `trace` with its trigger. Cascades arm after all scheduled faults.
    pub fn cascade(mut self, rule: CascadeRule, until: SimTime, trace: &InterventionTrace) -> Self {
        self.cascades.push(ScheduledCascade {
            rule,
            until,
            trace: trace.clone(),
        });
        self
    }

    /// Assembles the scenario with `tap` as its telemetry collector,
    /// returning the runnable scenario and the tap's handle.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Build`] if the cluster cannot be built or a preset
    /// fault names an unknown service; [`ScenarioError::Load`] if the load
    /// generator rejects its configuration.
    pub fn build_with<T: TelemetryTap>(
        self,
        tap: T,
    ) -> Result<(Scenario, T::Handle), ScenarioError> {
        let mut span = icfl_obs::span("scenario-build");
        span.arg("app", &self.app.name);
        span.arg("seed", self.seed);
        icfl_obs::counter_add("icfl_scenarios_built_total", &[("app", &self.app.name)], 1);
        icfl_obs::record_manifest(self.manifest(&tap));
        let (mut cluster, targets) = self.app.build(self.seed)?;
        for (name, fault) in &self.preset_faults {
            let id = cluster
                .service_id(name)
                .ok_or_else(|| BuildError::UnknownService(name.clone()))?;
            cluster.set_fault(id, Some(fault.clone()));
        }
        // Pre-size the scheduler's bucket queue and cancellation set from
        // the built topology (services × workers × queue depth) instead of
        // a one-size-fits-all constant.
        let mut sim = Sim::with_capacity(self.seed, cluster.pending_events_hint());
        Cluster::start(&mut sim, &mut cluster);
        let handle = tap.attach(&mut sim, &cluster);
        let mut load =
            LoadConfig::closed_loop(self.flows.unwrap_or_else(|| self.app.flows.clone()))
                .with_replicas(self.replicas);
        if let Some(model) = self.arrival {
            load = load.with_model(model);
        }
        start_load(&mut sim, &mut cluster, &load)?;
        for s in &self.scheduled {
            FaultInjector::inject_target_between(
                &mut sim,
                s.target,
                s.fault.clone(),
                s.from,
                s.to,
                &s.trace,
            );
        }
        for c in &self.cascades {
            arm_cascade(&mut sim, c.rule.clone(), c.until, &c.trace);
        }
        Ok((
            Scenario {
                sim,
                cluster,
                targets,
                flushed_queue_stats: icfl_sim::QueueStats::default(),
            },
            handle,
        ))
    }

    /// Assembles the scenario without telemetry.
    ///
    /// # Errors
    ///
    /// As [`ScenarioBuilder::build_with`].
    pub fn build(self) -> Result<Scenario, ScenarioError> {
        let (scenario, ()) = self.build_with(NoTap)?;
        Ok(scenario)
    }

    /// The reproducibility record of what this builder is about to
    /// assemble, recorded in the global `icfl-obs` collector per build.
    fn manifest<T: TelemetryTap>(&self, tap: &T) -> icfl_obs::RunManifest {
        icfl_obs::RunManifest {
            app: self.app.name.clone(),
            seed: self.seed,
            replicas: self.replicas,
            arrival: match &self.arrival {
                Some(model) => format!("{model:?}"),
                None => "closed-loop(default)".to_owned(),
            },
            flows: self
                .flows
                .as_ref()
                .unwrap_or(&self.app.flows)
                .iter()
                .map(|f| f.name.clone())
                .collect(),
            preset_faults: self
                .preset_faults
                .iter()
                .map(|(name, fault)| format!("{name}:{fault:?}"))
                .collect(),
            scheduled_faults: self
                .scheduled
                .iter()
                .map(|s| {
                    // Service-wide targets keep the pre-replica format so
                    // existing manifest journals stay byte-identical.
                    let target = match s.target {
                        TargetId::Service(svc) => format!("svc{}", svc.index()),
                        TargetId::Instance(svc, r) => format!("svc{}@r{}", svc.index(), r),
                    };
                    format!("{target}:{:?}@[{},{})", s.fault, s.from, s.to)
                })
                .chain(self.cascades.iter().map(|c| {
                    format!(
                        "cascade(watch=svc{},drops>={}):{:?}@[..,{})",
                        c.rule.watch.index(),
                        c.rule.drop_threshold,
                        c.rule.fault,
                        c.until
                    )
                }))
                .collect(),
            tap: tap.describe(),
        }
    }
}

/// A fully assembled run: the simulation, its cluster, and the app's
/// resolved fault targets.
pub struct Scenario {
    /// The event-driven simulation, ready at time zero (load and faults
    /// already scheduled).
    pub sim: Sim<Cluster>,
    /// The running cluster.
    pub cluster: Cluster,
    /// The app's fault targets, resolved to service ids.
    pub targets: Vec<ServiceId>,
    /// Queue stats already published to `icfl-obs` (delta flushing).
    flushed_queue_stats: icfl_sim::QueueStats,
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("now", &self.sim.now())
            .field("services", &self.cluster.num_services())
            .finish()
    }
}

impl Scenario {
    /// Starts building a scenario for `app` rooted at `seed`.
    pub fn builder(app: &App, seed: u64) -> ScenarioBuilder<'_> {
        ScenarioBuilder {
            app,
            seed,
            replicas: 1,
            arrival: None,
            flows: None,
            preset_faults: Vec::new(),
            scheduled: Vec::new(),
            cascades: Vec::new(),
        }
    }

    /// Advances the simulation to `until`.
    pub fn run_until(&mut self, until: SimTime) {
        let mut span = icfl_obs::span("sim-run");
        span.arg("until", until);
        self.sim.run_until(until, &mut self.cluster);
        self.flush_queue_stats();
    }

    /// Journals the bucketed scheduler's internals into the global
    /// `icfl-obs` collector. Stats are cumulative per simulation, so
    /// repeated flushes publish deltas for the counters and keep the
    /// occupancy high-water as a max gauge.
    fn flush_queue_stats(&mut self) {
        let stats = self.sim.queue_stats();
        icfl_obs::gauge_max(
            "icfl_sched_bucket_occupancy_high_water",
            &[],
            stats.occupancy_high_water,
        );
        let last = &mut self.flushed_queue_stats;
        icfl_obs::counter_add(
            "icfl_sched_resizes_total",
            &[],
            stats.resizes - last.resizes,
        );
        icfl_obs::counter_add(
            "icfl_sched_cascades_total",
            &[],
            stats.cascades - last.cascades,
        );
        icfl_obs::counter_add(
            "icfl_sched_rotations_total",
            &[],
            stats.rotations - last.rotations,
        );
        *last = stats;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icfl_sim::SimDuration;
    use icfl_telemetry::MetricCatalog;

    #[test]
    fn recorder_tap_collects_the_phase() {
        let app = icfl_apps::pattern1();
        let phase = (SimTime::ZERO, SimTime::from_secs(60));
        let (mut scenario, recorder) = Scenario::builder(&app, 11)
            .build_with(RecorderTap::new(phase, WindowConfig::from_secs(10, 5)))
            .unwrap();
        assert_eq!(scenario.targets.len(), 3);
        scenario.run_until(phase.1);
        let ds = recorder.dataset(&MetricCatalog::raw_all()).unwrap();
        assert_eq!(ds.num_windows(), 11);
        assert_eq!(ds.num_services(), 3);
    }

    #[test]
    fn scheduled_fault_is_logged_and_applied() {
        let app = icfl_apps::pattern1();
        let trace = InterventionTrace::new();
        let from = SimTime::from_secs(10);
        let to = SimTime::from_secs(20);
        let (mut scenario, ()) = Scenario::builder(&app, 12)
            .fault_between(
                ServiceId::from_index(1),
                FaultKind::ServiceUnavailable,
                from,
                to,
                &trace,
            )
            .build_with(NoTap)
            .unwrap();
        scenario.run_until(SimTime::from_secs(30));
        // Both transitions (set + clear) are in the audit log.
        assert_eq!(trace.len(), 1);
    }

    #[test]
    fn unknown_preset_fault_service_is_a_build_error() {
        let app = icfl_apps::pattern1();
        let err = Scenario::builder(&app, 13)
            .preset_fault("ghost", FaultKind::ServiceUnavailable)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ScenarioError::Build(BuildError::UnknownService("ghost".into()))
        );
    }

    #[test]
    fn same_seed_same_assembly_is_deterministic() {
        let app = icfl_apps::pattern1();
        let run = || {
            let mut s = Scenario::builder(&app, 21).build().unwrap();
            s.run_until(SimTime::ZERO + SimDuration::from_secs(30));
            s.cluster
                .service_ids()
                .into_iter()
                .map(|id| s.cluster.counters(id))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
