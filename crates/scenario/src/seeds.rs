//! Canonical seed derivation for every layer of a scenario.
//!
//! Determinism in this workspace rests on two rules, both owned here:
//!
//! 1. **Independent runs get independent root seeds.** Sweeps (campaign
//!    fault runs, evaluation cases, production sessions) derive one root
//!    seed per job from a base seed via [`derive()`], using a distinct odd
//!    multiplier ("stream") per sweep kind so e.g. training and evaluation
//!    traffic stay independent even at the same base seed. The derivation
//!    is per-index, so results never depend on thread count or on how
//!    many other jobs exist.
//!
//! 2. **Within a run, components get *named* RNG forks.** `Cluster::build`
//!    forks `cluster/{name}` from the root seed and then one stream per
//!    component (`service/{name}`, `daemon/{i}`, `net`); the load
//!    generator forks `loadgen/user/{u}` / `loadgen/open` from the
//!    simulation RNG. A named fork depends only on the parent seed and
//!    the name — never on how many sibling forks exist — so **adding a
//!    service to a topology does not perturb the random streams of the
//!    existing services** (property-tested in this crate).

/// Stream multiplier for the campaign's per-target fault runs.
pub const CAMPAIGN_STREAM: u64 = 0xd1b5_4a32_d192_ed03;

/// Stream multiplier for evaluation cases and production sessions
/// (golden-ratio increment; differs from [`CAMPAIGN_STREAM`] so training
/// and evaluation traffic are independent at the same base seed).
pub const EVAL_STREAM: u64 = 0x9e37_79b9_7f4a_7c15;

/// Salt XORed into a base seed to derive the evaluation-phase seed from
/// the training-phase seed.
pub const EVAL_PHASE_SALT: u64 = 0x00e1_7ab1_e5ee_d5ee;

/// Salt XORed into derived production-session seeds.
pub const SESSION_SALT: u64 = 0x00b5_e55e_d011_4e5e;

/// The `index`-th seed of the `stream` rooted at `base`:
/// `base + (index + 1) · stream` (wrapping). Index-pure — job `i`'s seed
/// never depends on how many jobs run or in what order.
pub fn derive(base: u64, index: usize, stream: u64) -> u64 {
    base.wrapping_add((index as u64 + 1).wrapping_mul(stream))
}

/// Root seed of the campaign's `index`-th per-target fault run.
pub fn campaign_fault(base: u64, index: usize) -> u64 {
    derive(base, index, CAMPAIGN_STREAM)
}

/// Root seed of the `index`-th evaluation case.
pub fn eval_case(base: u64, index: usize) -> u64 {
    derive(base, index, EVAL_STREAM)
}

/// Base seed of the evaluation phase paired with a training phase rooted
/// at `train_base`.
pub fn eval_phase(train_base: u64) -> u64 {
    train_base ^ EVAL_PHASE_SALT
}

/// Root seed of one production session: sessions are laid out on a
/// 16-wide per-app grid of the eval stream, salted so they collide with
/// neither training nor evaluation runs.
pub fn production_session(root: u64, app_index: usize, session_index: usize) -> u64 {
    derive(root, app_index * 16 + session_index, EVAL_STREAM) ^ SESSION_SALT
}

/// Salt XORed into derived telemetry-degradation seeds.
pub const DEGRADATION_SALT: u64 = 0x00de_6ade_d5c4_a9e5;

/// Seed of the telemetry-degradation stream paired with a simulation
/// rooted at `session_seed`. Salted so the degrader's private RNG never
/// aliases the cluster's own forks: whether a scrape is dropped must be
/// independent of the workload it measures.
pub fn degradation(session_seed: u64) -> u64 {
    session_seed ^ DEGRADATION_SALT
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_index_pure_and_distinct() {
        for i in 0..8 {
            assert_eq!(campaign_fault(42, i), derive(42, i, CAMPAIGN_STREAM));
            assert_ne!(campaign_fault(42, i), eval_case(42, i));
        }
        assert_eq!(
            production_session(7, 1, 3),
            derive(7, 19, EVAL_STREAM) ^ SESSION_SALT
        );
    }

    #[test]
    fn eval_phase_differs_from_training() {
        assert_ne!(eval_phase(42), 42);
        assert_eq!(eval_phase(eval_phase(42)), 42);
    }
}
