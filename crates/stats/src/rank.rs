//! Mann–Whitney U test (Wilcoxon rank-sum) — an alternative distribution-
//! shift detector usable in place of the KS test in Algorithms 1–2.

use crate::error::{check_no_nan, check_nonempty, Result};
use crate::special::normal_two_sided_p;
use serde::{Deserialize, Serialize};

/// Result of a Mann–Whitney U test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MannWhitneyResult {
    /// The U statistic of the first sample.
    pub u: f64,
    /// Two-sided p-value from the tie-corrected normal approximation.
    pub p_value: f64,
    /// Standardized statistic.
    pub z: f64,
    /// Size of the first sample.
    pub n1: usize,
    /// Size of the second sample.
    pub n2: usize,
}

impl MannWhitneyResult {
    /// True when the test rejects at level `alpha`.
    pub fn rejects_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Assigns mid-ranks (1-based, ties averaged) to the pooled data.
/// Returns per-observation ranks and the tie-correction term Σ(t³−t).
fn mid_ranks(pool: &[f64]) -> (Vec<f64>, f64) {
    let mut order: Vec<usize> = (0..pool.len()).collect();
    order.sort_by(|&a, &b| pool[a].partial_cmp(&pool[b]).expect("no NaN"));
    let mut ranks = vec![0.0; pool.len()];
    let mut tie_term = 0.0;
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && pool[order[j + 1]] == pool[order[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg_rank;
        }
        let t = (j - i + 1) as f64;
        if t > 1.0 {
            tie_term += t * t * t - t;
        }
        i = j + 1;
    }
    (ranks, tie_term)
}

/// Two-sided Mann–Whitney U test with tie-corrected normal approximation.
///
/// # Errors
///
/// Returns an error if either sample is empty or contains NaN.
///
/// # Examples
///
/// ```
/// use icfl_stats::mann_whitney_u;
///
/// let a: Vec<f64> = (0..30).map(|i| i as f64).collect();
/// let b: Vec<f64> = (0..30).map(|i| i as f64 + 25.0).collect();
/// assert!(mann_whitney_u(&a, &b)?.rejects_at(0.01));
/// # Ok::<(), icfl_stats::StatsError>(())
/// ```
pub fn mann_whitney_u(xs: &[f64], ys: &[f64]) -> Result<MannWhitneyResult> {
    check_nonempty(xs)?;
    check_nonempty(ys)?;
    check_no_nan(xs)?;
    check_no_nan(ys)?;
    let n1 = xs.len();
    let n2 = ys.len();
    let pool: Vec<f64> = xs.iter().chain(ys.iter()).copied().collect();
    let (ranks, tie_term) = mid_ranks(&pool);
    let r1: f64 = ranks[..n1].iter().sum();
    let u1 = r1 - (n1 * (n1 + 1)) as f64 / 2.0;
    let (n1f, n2f) = (n1 as f64, n2 as f64);
    let n = n1f + n2f;
    let mean_u = n1f * n2f / 2.0;
    let var_u = n1f * n2f / 12.0 * ((n + 1.0) - tie_term / (n * (n - 1.0)));
    // All observations tied → zero variance → no evidence of a shift.
    let (z, p) = if var_u <= 0.0 {
        (0.0, 1.0)
    } else {
        // Continuity correction.
        let z = (u1 - mean_u - 0.5 * (u1 - mean_u).signum()) / var_u.sqrt();
        (z, normal_two_sided_p(z))
    };
    Ok(MannWhitneyResult {
        u: u1,
        p_value: p,
        z,
        n1,
        n2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_do_not_reject() {
        let xs: Vec<f64> = (0..25).map(f64::from).collect();
        let r = mann_whitney_u(&xs, &xs).unwrap();
        assert!(r.p_value > 0.9, "p={}", r.p_value);
    }

    #[test]
    fn clear_shift_rejects() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = (0..20).map(|i| i as f64 + 100.0).collect();
        let r = mann_whitney_u(&xs, &ys).unwrap();
        assert!(r.rejects_at(0.001));
        assert_eq!(r.u, 0.0); // every x below every y
    }

    #[test]
    fn u_statistics_sum_to_n1_n2() {
        let xs = [3.0, 1.0, 4.0, 1.5];
        let ys = [2.0, 5.0, 0.5];
        let r12 = mann_whitney_u(&xs, &ys).unwrap();
        let r21 = mann_whitney_u(&ys, &xs).unwrap();
        assert!((r12.u + r21.u - (xs.len() * ys.len()) as f64).abs() < 1e-9);
    }

    #[test]
    fn all_tied_data_has_p_one() {
        let xs = [4.0; 10];
        let ys = [4.0; 12];
        let r = mann_whitney_u(&xs, &ys).unwrap();
        assert_eq!(r.p_value, 1.0);
        assert_eq!(r.z, 0.0);
    }

    #[test]
    fn mid_ranks_average_ties() {
        let (ranks, tie) = mid_ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(ranks, vec![1.0, 2.5, 2.5, 4.0]);
        assert_eq!(tie, 6.0); // t=2 → 8-2=6
    }

    #[test]
    fn rejects_scale_preserving_median_shift_at_window_sizes() {
        // ~19 samples per phase, as in the paper's windowed data.
        let xs: Vec<f64> = (0..19).map(|i| 10.0 + (i % 4) as f64).collect();
        let ys: Vec<f64> = (0..19).map(|i| 16.0 + (i % 4) as f64).collect();
        assert!(mann_whitney_u(&xs, &ys).unwrap().rejects_at(0.05));
    }

    #[test]
    fn empty_input_errors() {
        assert!(mann_whitney_u(&[], &[1.0]).is_err());
        assert!(mann_whitney_u(&[1.0], &[]).is_err());
    }
}
