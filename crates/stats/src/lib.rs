//! # icfl-stats — hand-rolled statistics for interventional causal learning
//!
//! Every statistical routine the ICFL reproduction needs, implemented from
//! scratch (no stats crates are available in the offline dependency set; see
//! `DESIGN.md`):
//!
//! * [`ks_test`] / [`ks_statistic`] / [`ks_permutation_test`] — the paper's
//!   distribution-shift test (Algorithms 1 & 2);
//! * [`mann_whitney_u`], [`welch_t_test`],
//!   [`anderson_darling_test`] — alternative detectors for ablations,
//!   unified behind [`ShiftDetector`];
//! * [`pearson`], [`spearman`], [`partial_correlation_test`] — association
//!   measures and the Fisher-z CI test used by constraint-based causal
//!   discovery (the RCD baseline);
//! * [`g_square_test`] — discrete conditional-independence test;
//! * [`mean`], [`variance`], [`quantile`], [`FiveNumber`],
//!   [`discretize_equal_frequency`] — descriptive statistics (Fig. 2's
//!   boxplots) and discretization;
//! * [`special`] — log-gamma, incomplete gamma/beta, normal/t/chi-square
//!   CDFs, and the Kolmogorov distribution.
//!
//! # Examples
//!
//! ```
//! use icfl_stats::{ks_test, ShiftDetector};
//!
//! let normal_ops = vec![49.0, 51.0, 50.5, 48.7, 50.1, 49.3, 50.8, 49.9];
//! let under_fault = vec![12.0, 13.5, 11.2, 12.8, 13.1, 11.9, 12.4, 12.6];
//!
//! // Raw KS test ...
//! let r = ks_test(&normal_ops, &under_fault)?;
//! assert!(r.p_value < 0.05);
//!
//! // ... or the configured detector used throughout the pipeline.
//! let det = ShiftDetector::ks(0.05).with_min_effect(0.1);
//! assert!(det.shifted(&normal_ops, &under_fault)?.shifted);
//! # Ok::<(), icfl_stats::StatsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ad;
mod bootstrap;
mod citest;
mod corr;
mod desc;
mod detector;
mod error;
mod ks;
mod rank;
pub mod special;
mod ttest;

pub use ad::{anderson_darling_statistic, anderson_darling_test, AndersonDarlingResult};
pub use bootstrap::{bootstrap_mean_ci, ConfidenceInterval};
pub use citest::{g_square_test, GSquareResult};
pub use corr::{partial_correlation_test, pearson, spearman, CorrIndepResult};
pub use desc::{
    discretize_equal_frequency, mean, quantile, quantile_sorted, std_dev, variance, FiveNumber,
};
pub use detector::{ShiftDecision, ShiftDetector, TestKind};
pub use error::{Result, StatsError};
pub use ks::{ks_permutation_test, ks_statistic, ks_test, KsResult};
pub use rank::{mann_whitney_u, MannWhitneyResult};
pub use ttest::{welch_t_test, WelchResult};
