//! Two-sample Anderson–Darling test (Scholz & Stephens 1987, tie-adjusted),
//! with a permutation p-value.
//!
//! AD weights the CDF discrepancy by its variance, making it more sensitive
//! than KS in the distribution tails — useful when a fault fattens latency
//! tails without moving the bulk. Offered as a fourth detector backend.

use crate::error::{check_no_nan, check_nonempty, Result};
use serde::{Deserialize, Serialize};

/// Result of a two-sample Anderson–Darling test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AndersonDarlingResult {
    /// The tie-adjusted A² statistic.
    pub statistic: f64,
    /// Permutation p-value (add-one smoothed).
    pub p_value: f64,
    /// Size of the first sample.
    pub n1: usize,
    /// Size of the second sample.
    pub n2: usize,
}

impl AndersonDarlingResult {
    /// True when the test rejects equality at level `alpha`.
    pub fn rejects_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// The tie-adjusted two-sample A² statistic (Scholz & Stephens eq. 7,
/// k = 2).
///
/// # Errors
///
/// Returns an error if either sample is empty or contains NaN.
pub fn anderson_darling_statistic(xs: &[f64], ys: &[f64]) -> Result<f64> {
    check_nonempty(xs)?;
    check_nonempty(ys)?;
    check_no_nan(xs)?;
    check_no_nan(ys)?;

    let n1 = xs.len();
    let n2 = ys.len();
    let n = n1 + n2;
    // Pooled sorted values with origin labels.
    let mut pooled: Vec<(f64, bool)> = xs
        .iter()
        .map(|&v| (v, true))
        .chain(ys.iter().map(|&v| (v, false)))
        .collect();
    pooled.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN after check"));

    // Distinct values z_j with multiplicities l_j and per-sample counts
    // f_ij (occurrences of z_j in sample i).
    let mut a2 = 0.0;
    let mut seen = 0usize; // observations strictly before the current group
    let mut m1 = 0.0f64; // sample-1 observations strictly before the group
    let mut idx = 0;
    while idx < n {
        let mut l = 0usize;
        let mut f1 = 0usize;
        let v = pooled[idx].0;
        while idx < n && pooled[idx].0 == v {
            l += 1;
            if pooled[idx].1 {
                f1 += 1;
            }
            idx += 1;
        }
        let lj = l as f64;
        let nn = n as f64;
        // Midrank quantities.
        let bj = seen as f64 + lj / 2.0;
        let maj_1 = m1 + f1 as f64 / 2.0; // M_aj for sample 1
        let maj_2 = (seen as f64 - m1) + (l - f1) as f64 / 2.0; // sample 2
        let denom = bj * (nn - bj) - nn * lj / 4.0;
        if denom > 0.0 {
            let t1 = (nn * maj_1 - n1 as f64 * bj).powi(2) / (n1 as f64 * denom);
            let t2 = (nn * maj_2 - n2 as f64 * bj).powi(2) / (n2 as f64 * denom);
            a2 += lj / nn * (t1 + t2);
        }
        seen += l;
        m1 += f1 as f64;
    }
    Ok((n as f64 - 1.0) / n as f64 * a2)
}

/// Two-sample Anderson–Darling test with a seeded permutation p-value.
///
/// # Errors
///
/// Returns an error if either sample is empty or contains NaN.
///
/// # Examples
///
/// ```
/// use icfl_stats::anderson_darling_test;
///
/// let a: Vec<f64> = (0..25).map(|i| i as f64).collect();
/// let b: Vec<f64> = (0..25).map(|i| i as f64 + 40.0).collect();
/// let r = anderson_darling_test(&a, &b, 200, 7)?;
/// assert!(r.rejects_at(0.05));
/// # Ok::<(), icfl_stats::StatsError>(())
/// ```
pub fn anderson_darling_test(
    xs: &[f64],
    ys: &[f64],
    iterations: u32,
    seed: u64,
) -> Result<AndersonDarlingResult> {
    let observed = anderson_darling_statistic(xs, ys)?;
    let mut pool: Vec<f64> = xs.iter().chain(ys.iter()).copied().collect();
    let n1 = xs.len();
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_f491_4f6c_dd1d)
    };
    let mut exceed = 0u32;
    for _ in 0..iterations {
        for i in (1..pool.len()).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            pool.swap(i, j);
        }
        if anderson_darling_statistic(&pool[..n1], &pool[n1..])? >= observed - 1e-12 {
            exceed += 1;
        }
    }
    Ok(AndersonDarlingResult {
        statistic: observed,
        p_value: (exceed as f64 + 1.0) / (iterations as f64 + 1.0),
        n1,
        n2: ys.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize, offset: f64) -> Vec<f64> {
        (0..n).map(|i| i as f64 / n as f64 + offset).collect()
    }

    #[test]
    fn statistic_small_for_identical_distributions() {
        let xs = ramp(30, 0.0);
        let a2 = anderson_darling_statistic(&xs, &xs).unwrap();
        // For interleaved identical samples A² sits near its null mean (1).
        assert!(a2 < 1.5, "a2={a2}");
    }

    #[test]
    fn statistic_large_for_disjoint_supports() {
        let xs = ramp(25, 0.0);
        let ys = ramp(25, 10.0);
        let a2 = anderson_darling_statistic(&xs, &ys).unwrap();
        assert!(a2 > 10.0, "a2={a2}");
    }

    #[test]
    fn statistic_is_symmetric() {
        let xs = ramp(20, 0.0);
        let ys = ramp(30, 0.25);
        let a = anderson_darling_statistic(&xs, &ys).unwrap();
        let b = anderson_darling_statistic(&ys, &xs).unwrap();
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn handles_ties_without_blowup() {
        let xs = vec![1.0, 1.0, 1.0, 2.0, 2.0];
        let ys = vec![1.0, 2.0, 2.0, 2.0, 2.0];
        let a2 = anderson_darling_statistic(&xs, &ys).unwrap();
        assert!(a2.is_finite());
        let same = vec![3.0; 10];
        let a2 = anderson_darling_statistic(&same, &same).unwrap();
        assert!(a2.is_finite());
    }

    #[test]
    fn permutation_p_detects_shift() {
        let xs = ramp(19, 0.0);
        let ys = ramp(19, 0.8);
        let r = anderson_darling_test(&xs, &ys, 300, 11).unwrap();
        assert!(r.p_value < 0.02, "p={}", r.p_value);
        assert!(r.rejects_at(0.05));
    }

    #[test]
    fn permutation_p_large_under_null() {
        let xs = ramp(19, 0.0);
        let r = anderson_darling_test(&xs, &xs, 300, 13).unwrap();
        assert!(r.p_value > 0.5, "p={}", r.p_value);
    }

    #[test]
    fn detects_pure_scale_change() {
        // Same mean, 3× the spread — a dispersion shift that mean-based
        // tests miss entirely and AD flags through both tails.
        let xs: Vec<f64> = (0..40).map(|i| i as f64 / 40.0).collect();
        let ys: Vec<f64> = xs.iter().map(|v| 0.5 + (v - 0.5) * 3.0).collect();
        let ad = anderson_darling_test(&xs, &ys, 300, 17).unwrap();
        assert!(ad.p_value < 0.05, "p={}", ad.p_value);
        // Welch on the same data sees nothing (means are equal).
        let w = crate::welch_t_test(&xs, &ys).unwrap();
        assert!(w.p_value > 0.5, "welch p={}", w.p_value);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(anderson_darling_statistic(&[], &[1.0]).is_err());
        assert!(anderson_darling_statistic(&[f64::NAN], &[1.0]).is_err());
    }
}
