//! Error type shared by all statistical routines.

use core::fmt;

/// Errors returned by statistical routines in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatsError {
    /// A sample was empty where at least one observation is required.
    EmptySample,
    /// A routine needed more observations than were supplied.
    InsufficientData {
        /// Minimum number of observations required.
        needed: usize,
        /// Number of observations supplied.
        got: usize,
    },
    /// A parameter was outside its valid domain (e.g. `alpha` not in (0,1)).
    InvalidParameter(&'static str),
    /// Input contained NaN, which has no place in an ordering-based test.
    NanInput,
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::EmptySample => write!(f, "sample is empty"),
            StatsError::InsufficientData { needed, got } => {
                write!(f, "needs at least {needed} observations, got {got}")
            }
            StatsError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            StatsError::NanInput => write!(f, "input contains NaN"),
        }
    }
}

impl std::error::Error for StatsError {}

/// Convenience alias for results in this crate.
pub type Result<T> = core::result::Result<T, StatsError>;

pub(crate) fn check_no_nan(xs: &[f64]) -> Result<()> {
    if xs.iter().any(|x| x.is_nan()) {
        Err(StatsError::NanInput)
    } else {
        Ok(())
    }
}

pub(crate) fn check_nonempty(xs: &[f64]) -> Result<()> {
    if xs.is_empty() {
        Err(StatsError::EmptySample)
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(StatsError::EmptySample.to_string(), "sample is empty");
        assert_eq!(
            StatsError::InsufficientData { needed: 3, got: 1 }.to_string(),
            "needs at least 3 observations, got 1"
        );
        assert!(StatsError::InvalidParameter("alpha")
            .to_string()
            .contains("alpha"));
        assert_eq!(StatsError::NanInput.to_string(), "input contains NaN");
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(StatsError::EmptySample);
        assert!(!e.to_string().is_empty());
    }
}
