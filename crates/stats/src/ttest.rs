//! Welch's unequal-variance t-test — a parametric mean-shift detector,
//! offered alongside KS and Mann–Whitney as a pluggable anomaly test.

use crate::error::{Result, StatsError};
use crate::special::student_t_cdf;
use crate::{mean, variance};
use serde::{Deserialize, Serialize};

/// Result of a Welch t-test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WelchResult {
    /// The t statistic.
    pub t: f64,
    /// Welch–Satterthwaite effective degrees of freedom.
    pub df: f64,
    /// Two-sided p-value.
    pub p_value: f64,
    /// Size of the first sample.
    pub n1: usize,
    /// Size of the second sample.
    pub n2: usize,
}

impl WelchResult {
    /// True when the test rejects at level `alpha`.
    pub fn rejects_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Two-sided Welch's t-test for a difference in means.
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] unless both samples have at
/// least two observations; NaN inputs also error.
///
/// # Examples
///
/// ```
/// use icfl_stats::welch_t_test;
///
/// let a = [5.0, 5.1, 4.9, 5.2, 4.8, 5.05];
/// let b = [7.0, 7.1, 6.9, 7.2, 6.8, 7.05];
/// assert!(welch_t_test(&a, &b)?.rejects_at(0.01));
/// # Ok::<(), icfl_stats::StatsError>(())
/// ```
pub fn welch_t_test(xs: &[f64], ys: &[f64]) -> Result<WelchResult> {
    if xs.len() < 2 || ys.len() < 2 {
        return Err(StatsError::InsufficientData {
            needed: 2,
            got: xs.len().min(ys.len()),
        });
    }
    let m1 = mean(xs)?;
    let m2 = mean(ys)?;
    let v1 = variance(xs)?;
    let v2 = variance(ys)?;
    let (n1, n2) = (xs.len() as f64, ys.len() as f64);
    let se2 = v1 / n1 + v2 / n2;
    if se2 <= 0.0 {
        // Both samples constant: distinct constants are an unambiguous
        // shift, equal constants are unambiguous equality.
        let p = if m1 == m2 { 1.0 } else { 0.0 };
        return Ok(WelchResult {
            t: if m1 == m2 { 0.0 } else { f64::INFINITY },
            df: n1 + n2 - 2.0,
            p_value: p,
            n1: xs.len(),
            n2: ys.len(),
        });
    }
    let t = (m1 - m2) / se2.sqrt();
    let df = se2 * se2 / ((v1 / n1) * (v1 / n1) / (n1 - 1.0) + (v2 / n2) * (v2 / n2) / (n2 - 1.0));
    let p = 2.0 * (1.0 - student_t_cdf(t.abs(), df));
    Ok(WelchResult {
        t,
        df,
        p_value: p.clamp(0.0, 1.0),
        n1: xs.len(),
        n2: ys.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_means_do_not_reject() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [1.1, 1.9, 3.1, 3.9, 5.0];
        let r = welch_t_test(&xs, &ys).unwrap();
        assert!(r.p_value > 0.5, "p={}", r.p_value);
    }

    #[test]
    fn scipy_reference_value() {
        // scipy.stats.ttest_ind([1,2,3,4], [5,6,7,8], equal_var=False)
        // → t = -4.3818, p ≈ 0.00466, df = 6
        let r = welch_t_test(&[1.0, 2.0, 3.0, 4.0], &[5.0, 6.0, 7.0, 8.0]).unwrap();
        assert!((r.t + 4.381_780).abs() < 1e-4, "t={}", r.t);
        assert!((r.df - 6.0).abs() < 1e-9, "df={}", r.df);
        assert!((r.p_value - 0.004_66).abs() < 1e-4, "p={}", r.p_value);
    }

    #[test]
    fn constant_samples() {
        let same = welch_t_test(&[3.0, 3.0, 3.0], &[3.0, 3.0]).unwrap();
        assert_eq!(same.p_value, 1.0);
        let diff = welch_t_test(&[3.0, 3.0, 3.0], &[4.0, 4.0]).unwrap();
        assert_eq!(diff.p_value, 0.0);
        assert!(diff.rejects_at(0.05));
    }

    #[test]
    fn insufficient_data_errors() {
        assert!(matches!(
            welch_t_test(&[1.0], &[1.0, 2.0]),
            Err(StatsError::InsufficientData { .. })
        ));
    }

    #[test]
    fn symmetry_in_sign_only() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 3.0, 4.0, 5.0];
        let r1 = welch_t_test(&a, &b).unwrap();
        let r2 = welch_t_test(&b, &a).unwrap();
        assert!((r1.t + r2.t).abs() < 1e-12);
        assert!((r1.p_value - r2.p_value).abs() < 1e-12);
    }
}
