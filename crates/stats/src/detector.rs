//! A pluggable two-sample distribution-shift detector.
//!
//! The paper uses the Kolmogorov–Smirnov test to decide `F̂ ≠ F̂₀`
//! (Algorithm 1 line 13, Algorithm 2 line 12). [`ShiftDetector`] abstracts
//! that decision so the pipeline can swap in Mann–Whitney or Welch tests for
//! ablations, and so the minimum-effect guard (DESIGN.md decision 4) is
//! applied uniformly.

use crate::{anderson_darling_test, ks_test, mann_whitney_u, welch_t_test, Result, StatsError};
use serde::{Deserialize, Serialize};

/// Which two-sample test backs the detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum TestKind {
    /// Two-sample Kolmogorov–Smirnov (the paper's choice).
    #[default]
    KolmogorovSmirnov,
    /// Mann–Whitney U rank test.
    MannWhitney,
    /// Welch's unequal-variance t-test.
    Welch,
    /// Two-sample Anderson–Darling with a seeded permutation p-value
    /// (199 permutations; deterministic) — more tail-sensitive than KS.
    AndersonDarling,
}

impl std::fmt::Display for TestKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestKind::KolmogorovSmirnov => write!(f, "ks"),
            TestKind::MannWhitney => write!(f, "mann-whitney"),
            TestKind::Welch => write!(f, "welch"),
            TestKind::AndersonDarling => write!(f, "anderson-darling"),
        }
    }
}

/// Outcome of one shift decision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShiftDecision {
    /// Whether the detector declares the distributions different.
    pub shifted: bool,
    /// The underlying p-value.
    pub p_value: f64,
    /// The underlying test statistic (D for KS, |z| for MWU, |t| for Welch).
    pub statistic: f64,
    /// Relative change in sample means, `|mean₁−mean₀| / max(|mean₀|, ε)`.
    pub relative_mean_change: f64,
}

/// A configured distribution-shift detector.
///
/// # Examples
///
/// ```
/// use icfl_stats::ShiftDetector;
///
/// let det = ShiftDetector::default(); // KS at α = 0.05
/// let baseline = vec![10.0, 11.0, 9.0, 10.5, 10.2, 9.8, 10.1, 10.3];
/// let faulty = vec![30.0, 31.0, 29.0, 30.5, 30.2, 29.8, 30.1, 30.3];
/// assert!(det.shifted(&baseline, &faulty)?.shifted);
/// assert!(!det.shifted(&baseline, &baseline)?.shifted);
/// # Ok::<(), icfl_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShiftDetector {
    /// Which test to run.
    pub kind: TestKind,
    /// Significance level for rejecting "same distribution".
    pub alpha: f64,
    /// Minimum relative mean change required to call a shift, guarding
    /// against statistically-significant-but-tiny effects on long windows.
    /// `0.0` disables the guard.
    pub min_relative_effect: f64,
}

impl Default for ShiftDetector {
    fn default() -> Self {
        ShiftDetector {
            kind: TestKind::KolmogorovSmirnov,
            alpha: 0.05,
            min_relative_effect: 0.0,
        }
    }
}

impl ShiftDetector {
    /// A KS detector at the given significance level.
    pub fn ks(alpha: f64) -> Self {
        ShiftDetector {
            kind: TestKind::KolmogorovSmirnov,
            alpha,
            ..Default::default()
        }
    }

    /// Sets the minimum-relative-effect guard, returning `self` for chaining.
    pub fn with_min_effect(mut self, min_relative_effect: f64) -> Self {
        self.min_relative_effect = min_relative_effect;
        self
    }

    /// Decides whether `sample` is distributed differently from `baseline`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying test's errors (empty samples, NaN,
    /// insufficient data) and rejects an invalid `alpha`.
    pub fn shifted(&self, baseline: &[f64], sample: &[f64]) -> Result<ShiftDecision> {
        if !(0.0 < self.alpha && self.alpha < 1.0) {
            return Err(StatsError::InvalidParameter("alpha must be in (0,1)"));
        }
        let (p, stat) = match self.kind {
            TestKind::KolmogorovSmirnov => {
                let r = ks_test(baseline, sample)?;
                (r.p_value, r.statistic)
            }
            TestKind::MannWhitney => {
                let r = mann_whitney_u(baseline, sample)?;
                (r.p_value, r.z.abs())
            }
            TestKind::Welch => {
                let r = welch_t_test(baseline, sample)?;
                (r.p_value, r.t.abs())
            }
            TestKind::AndersonDarling => {
                // Fixed permutation count/seed keeps the detector
                // deterministic and Copy.
                let r = anderson_darling_test(baseline, sample, 199, 0x5eed)?;
                (r.p_value, r.statistic)
            }
        };
        let m0 = baseline.iter().sum::<f64>() / baseline.len() as f64;
        let m1 = sample.iter().sum::<f64>() / sample.len() as f64;
        let rel = (m1 - m0).abs() / m0.abs().max(1e-9);
        let shifted = p < self.alpha && rel >= self.min_relative_effect;
        Ok(ShiftDecision {
            shifted,
            p_value: p,
            statistic: stat,
            relative_mean_change: rel,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Vec<f64> {
        (0..20).map(|i| 100.0 + (i % 7) as f64).collect()
    }

    #[test]
    fn default_is_ks_at_five_percent() {
        let d = ShiftDetector::default();
        assert_eq!(d.kind, TestKind::KolmogorovSmirnov);
        assert_eq!(d.alpha, 0.05);
    }

    #[test]
    fn all_kinds_detect_a_large_shift() {
        let b = base();
        let s: Vec<f64> = b.iter().map(|x| x + 50.0).collect();
        for kind in [
            TestKind::KolmogorovSmirnov,
            TestKind::MannWhitney,
            TestKind::Welch,
            TestKind::AndersonDarling,
        ] {
            let det = ShiftDetector {
                kind,
                alpha: 0.05,
                min_relative_effect: 0.0,
            };
            assert!(det.shifted(&b, &s).unwrap().shifted, "kind={kind}");
        }
    }

    #[test]
    fn no_kind_flags_identical_data() {
        let b = base();
        for kind in [
            TestKind::KolmogorovSmirnov,
            TestKind::MannWhitney,
            TestKind::Welch,
            TestKind::AndersonDarling,
        ] {
            let det = ShiftDetector {
                kind,
                alpha: 0.05,
                min_relative_effect: 0.0,
            };
            assert!(!det.shifted(&b, &b).unwrap().shifted, "kind={kind}");
        }
    }

    #[test]
    fn min_effect_guard_suppresses_tiny_shifts() {
        // A tightly concentrated baseline so a +1% mean change is
        // nonetheless a clean distributional shift (disjoint supports).
        let b: Vec<f64> = (0..20).map(|i| 100.0 + (i % 7) as f64 * 0.01).collect();
        let s: Vec<f64> = b.iter().map(|x| x + 1.0).collect();
        let loose = ShiftDetector::ks(0.05);
        let strict = ShiftDetector::ks(0.05).with_min_effect(0.05);
        let l = loose.shifted(&b, &s).unwrap();
        let st = strict.shifted(&b, &s).unwrap();
        assert!(l.shifted, "p={}", l.p_value);
        assert!(!st.shifted);
        assert!(st.relative_mean_change < 0.05);
    }

    #[test]
    fn invalid_alpha_rejected() {
        let det = ShiftDetector {
            alpha: 0.0,
            ..Default::default()
        };
        assert!(det.shifted(&base(), &base()).is_err());
        let det = ShiftDetector {
            alpha: 1.0,
            ..Default::default()
        };
        assert!(det.shifted(&base(), &base()).is_err());
    }

    #[test]
    fn display_names() {
        assert_eq!(TestKind::KolmogorovSmirnov.to_string(), "ks");
        assert_eq!(TestKind::MannWhitney.to_string(), "mann-whitney");
        assert_eq!(TestKind::Welch.to_string(), "welch");
        assert_eq!(TestKind::AndersonDarling.to_string(), "anderson-darling");
    }
}
