//! Descriptive statistics: moments, quantiles, five-number summaries, and
//! equal-frequency discretization (used by the RCD baseline's CI tests).

use crate::error::{check_no_nan, check_nonempty, Result, StatsError};
use serde::{Deserialize, Serialize};

/// Arithmetic mean.
///
/// # Errors
///
/// Returns [`StatsError::EmptySample`] for an empty slice and
/// [`StatsError::NanInput`] if any value is NaN.
pub fn mean(xs: &[f64]) -> Result<f64> {
    check_nonempty(xs)?;
    check_no_nan(xs)?;
    Ok(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Unbiased (n−1) sample variance.
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] for fewer than two observations.
pub fn variance(xs: &[f64]) -> Result<f64> {
    if xs.len() < 2 {
        return Err(StatsError::InsufficientData {
            needed: 2,
            got: xs.len(),
        });
    }
    check_no_nan(xs)?;
    let m = xs.iter().sum::<f64>() / xs.len() as f64;
    Ok(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64)
}

/// Sample standard deviation (square root of [`variance`]).
///
/// # Errors
///
/// Same as [`variance`].
pub fn std_dev(xs: &[f64]) -> Result<f64> {
    variance(xs).map(f64::sqrt)
}

/// Linear-interpolation quantile (type 7, the R/NumPy default).
///
/// `q` must be in `[0, 1]`.
///
/// # Errors
///
/// Returns [`StatsError::EmptySample`] on an empty slice,
/// [`StatsError::InvalidParameter`] when `q` is outside `[0, 1]`, and
/// [`StatsError::NanInput`] if any value is NaN.
pub fn quantile(xs: &[f64], q: f64) -> Result<f64> {
    check_nonempty(xs)?;
    check_no_nan(xs)?;
    if !(0.0..=1.0).contains(&q) {
        return Err(StatsError::InvalidParameter("quantile q must be in [0,1]"));
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after check"));
    Ok(quantile_sorted(&sorted, q))
}

/// [`quantile`] on data that is already sorted ascending (no checks).
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = q * (n as f64 - 1.0);
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    let frac = h - lo as f64;
    sorted[lo] + frac * (sorted[hi] - sorted[lo])
}

/// Five-number summary plus mean — the data behind a boxplot (paper Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FiveNumber {
    /// Smallest observation.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Largest observation.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Number of observations.
    pub n: usize,
}

impl FiveNumber {
    /// Computes the summary of a sample.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptySample`] on an empty slice and
    /// [`StatsError::NanInput`] if any value is NaN.
    pub fn of(xs: &[f64]) -> Result<FiveNumber> {
        check_nonempty(xs)?;
        check_no_nan(xs)?;
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after check"));
        Ok(FiveNumber {
            min: sorted[0],
            q1: quantile_sorted(&sorted, 0.25),
            median: quantile_sorted(&sorted, 0.5),
            q3: quantile_sorted(&sorted, 0.75),
            max: sorted[sorted.len() - 1],
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            n: sorted.len(),
        })
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Discretizes a continuous sample into `bins` roughly equal-frequency bins,
/// returning the bin index of each observation and the cut points used.
///
/// Used by CI tests over contingency tables (see `icfl-baselines::rcd`). Cut
/// points are interior quantiles; duplicate cut points (heavily tied data)
/// collapse, so fewer than `bins` distinct labels may be produced.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] if `bins < 2`, plus the usual
/// empty/NaN errors.
pub fn discretize_equal_frequency(xs: &[f64], bins: usize) -> Result<(Vec<usize>, Vec<f64>)> {
    if bins < 2 {
        return Err(StatsError::InvalidParameter("bins must be >= 2"));
    }
    check_nonempty(xs)?;
    check_no_nan(xs)?;
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after check"));
    let mut cuts = Vec::with_capacity(bins - 1);
    for k in 1..bins {
        let c = quantile_sorted(&sorted, k as f64 / bins as f64);
        if cuts.last().is_none_or(|&prev| c > prev) {
            cuts.push(c);
        }
    }
    let labels = xs
        .iter()
        .map(|&x| cuts.iter().take_while(|&&c| x > c).count())
        .collect();
    Ok((labels, cuts))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_basic() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs).unwrap(), 5.0);
        let v = variance(&xs).unwrap();
        assert!((v - 4.571_428_571).abs() < 1e-8, "v={v}");
        assert!((std_dev(&xs).unwrap() - v.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn mean_rejects_bad_input() {
        assert_eq!(mean(&[]), Err(StatsError::EmptySample));
        assert_eq!(mean(&[1.0, f64::NAN]), Err(StatsError::NanInput));
        assert!(matches!(
            variance(&[1.0]),
            Err(StatsError::InsufficientData { needed: 2, got: 1 })
        ));
    }

    #[test]
    fn quantile_matches_numpy_type7() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        // numpy.quantile([1,2,3,4], .25) = 1.75
        assert!((quantile(&xs, 0.25).unwrap() - 1.75).abs() < 1e-12);
        assert!((quantile(&xs, 0.5).unwrap() - 2.5).abs() < 1e-12);
        assert_eq!(quantile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&xs, 1.0).unwrap(), 4.0);
    }

    #[test]
    fn quantile_rejects_bad_q() {
        assert!(matches!(
            quantile(&[1.0], 1.5),
            Err(StatsError::InvalidParameter(_))
        ));
    }

    #[test]
    fn quantile_single_element() {
        assert_eq!(quantile(&[7.0], 0.9).unwrap(), 7.0);
    }

    #[test]
    fn five_number_summary() {
        let xs: Vec<f64> = (1..=9).map(|i| i as f64).collect();
        let s = FiveNumber::of(&xs).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 5.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.q1, 3.0);
        assert_eq!(s.q3, 7.0);
        assert_eq!(s.iqr(), 4.0);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.n, 9);
    }

    #[test]
    fn discretize_balances_bins() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let (labels, cuts) = discretize_equal_frequency(&xs, 4).unwrap();
        assert_eq!(cuts.len(), 3);
        let mut counts = [0usize; 4];
        for &l in &labels {
            counts[l] += 1;
        }
        for &c in &counts {
            assert!((20..=30).contains(&c), "counts={counts:?}");
        }
    }

    #[test]
    fn discretize_collapses_ties() {
        let xs = vec![5.0; 50];
        let (labels, cuts) = discretize_equal_frequency(&xs, 4).unwrap();
        assert!(cuts.len() <= 1);
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn discretize_rejects_one_bin() {
        assert!(matches!(
            discretize_equal_frequency(&[1.0, 2.0], 1),
            Err(StatsError::InvalidParameter(_))
        ));
    }
}
