//! Two-sample Kolmogorov–Smirnov test — the distribution-shift detector at
//! the heart of the paper's Algorithms 1 and 2 (`F̂_s ≠ F̂_0` decisions).
//!
//! The KS statistic `D = sup_x |F̂₁(x) − F̂₂(x)|` is computed exactly by a
//! merge-walk over the two sorted samples. The p-value uses the asymptotic
//! Kolmogorov distribution with the Stephens small-sample correction
//! (Numerical Recipes §14.3); an exact permutation p-value is available for
//! very small samples.

use crate::error::{check_no_nan, check_nonempty, Result};
use crate::special::kolmogorov_sf;
use serde::{Deserialize, Serialize};

/// Result of a two-sample KS test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KsResult {
    /// The KS statistic `D ∈ [0, 1]`.
    pub statistic: f64,
    /// Two-sided p-value for the hypothesis that both samples share a
    /// distribution.
    pub p_value: f64,
    /// Size of the first sample.
    pub n1: usize,
    /// Size of the second sample.
    pub n2: usize,
}

impl KsResult {
    /// True when the test rejects equality at significance level `alpha`.
    pub fn rejects_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Computes the exact two-sample KS statistic `D`.
///
/// # Errors
///
/// Returns an error if either sample is empty or contains NaN.
pub fn ks_statistic(xs: &[f64], ys: &[f64]) -> Result<f64> {
    check_nonempty(xs)?;
    check_nonempty(ys)?;
    check_no_nan(xs)?;
    check_no_nan(ys)?;
    let mut a = xs.to_vec();
    let mut b = ys.to_vec();
    a.sort_by(|p, q| p.partial_cmp(q).expect("no NaN after check"));
    b.sort_by(|p, q| p.partial_cmp(q).expect("no NaN after check"));

    let (n1, n2) = (a.len() as f64, b.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < a.len() && j < b.len() {
        let x = a[i].min(b[j]);
        // Advance past all observations equal to x in both samples so the
        // CDF comparison happens *between* distinct support points — this is
        // what makes the statistic exact in the presence of ties.
        while i < a.len() && a[i] <= x {
            i += 1;
        }
        while j < b.len() && b[j] <= x {
            j += 1;
        }
        let f1 = i as f64 / n1;
        let f2 = j as f64 / n2;
        d = d.max((f1 - f2).abs());
    }
    Ok(d)
}

/// Two-sample KS test with the asymptotic p-value.
///
/// # Errors
///
/// Returns an error if either sample is empty or contains NaN.
///
/// # Examples
///
/// ```
/// use icfl_stats::ks_test;
///
/// let baseline: Vec<f64> = (0..40).map(|i| (i % 10) as f64).collect();
/// let shifted: Vec<f64> = (0..40).map(|i| (i % 10) as f64 + 6.0).collect();
/// let r = ks_test(&baseline, &shifted)?;
/// assert!(r.rejects_at(0.05));
/// # Ok::<(), icfl_stats::StatsError>(())
/// ```
pub fn ks_test(xs: &[f64], ys: &[f64]) -> Result<KsResult> {
    let d = ks_statistic(xs, ys)?;
    let n1 = xs.len();
    let n2 = ys.len();
    let en = ((n1 * n2) as f64 / (n1 + n2) as f64).sqrt();
    // Stephens' correction improves accuracy for small samples.
    let lambda = (en + 0.12 + 0.11 / en) * d;
    Ok(KsResult {
        statistic: d,
        p_value: kolmogorov_sf(lambda),
        n1,
        n2,
    })
}

/// Exact-by-resampling p-value: permutes the pooled sample `iterations`
/// times with a private xorshift PRNG seeded by `seed` and counts how often
/// a permuted `D` meets or exceeds the observed one.
///
/// Use when both samples are small (≲ 20) and the asymptotic approximation
/// is too coarse.
///
/// # Errors
///
/// Returns an error if either sample is empty or contains NaN.
pub fn ks_permutation_test(xs: &[f64], ys: &[f64], iterations: u32, seed: u64) -> Result<KsResult> {
    let observed = ks_statistic(xs, ys)?;
    let mut pool: Vec<f64> = xs.iter().chain(ys.iter()).copied().collect();
    let n1 = xs.len();
    let mut state = seed | 1;
    let mut next = move || {
        // xorshift64*
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_f491_4f6c_dd1d)
    };
    let mut exceed = 0u32;
    for _ in 0..iterations {
        // Fisher–Yates with the private PRNG.
        for i in (1..pool.len()).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            pool.swap(i, j);
        }
        let d = ks_statistic(&pool[..n1], &pool[n1..])?;
        if d >= observed - 1e-12 {
            exceed += 1;
        }
    }
    Ok(KsResult {
        statistic: observed,
        // Add-one smoothing keeps the p-value strictly positive.
        p_value: (exceed as f64 + 1.0) / (iterations as f64 + 1.0),
        n1,
        n2: ys.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::StatsError;

    fn ramp(n: usize, offset: f64) -> Vec<f64> {
        (0..n).map(|i| i as f64 / n as f64 + offset).collect()
    }

    #[test]
    fn identical_samples_have_zero_statistic() {
        let xs = ramp(50, 0.0);
        let r = ks_test(&xs, &xs).unwrap();
        assert_eq!(r.statistic, 0.0);
        assert!((r.p_value - 1.0).abs() < 1e-12);
        assert!(!r.rejects_at(0.05));
    }

    #[test]
    fn disjoint_samples_have_statistic_one() {
        let xs = ramp(30, 0.0);
        let ys = ramp(30, 10.0);
        let r = ks_test(&xs, &ys).unwrap();
        assert_eq!(r.statistic, 1.0);
        assert!(r.p_value < 1e-6);
        assert!(r.rejects_at(0.01));
    }

    #[test]
    fn statistic_is_symmetric() {
        let xs = ramp(25, 0.0);
        let ys = ramp(40, 0.3);
        let d1 = ks_statistic(&xs, &ys).unwrap();
        let d2 = ks_statistic(&ys, &xs).unwrap();
        assert_eq!(d1, d2);
    }

    #[test]
    fn known_small_example() {
        // Hand-computable: xs={1,2,3}, ys={2,3,4}.
        // After x=1: F1=1/3, F2=0 → D=1/3. After 2: 2/3 vs 1/3 → 1/3.
        // After 3: 1 vs 2/3 → 1/3. After 4: 1 vs 1.
        let d = ks_statistic(&[1.0, 2.0, 3.0], &[2.0, 3.0, 4.0]).unwrap();
        assert!((d - 1.0 / 3.0).abs() < 1e-12, "d={d}");
    }

    #[test]
    fn ties_handled_exactly() {
        // All mass at the same point: identical distributions.
        let d = ks_statistic(&[5.0; 20], &[5.0; 15]).unwrap();
        assert_eq!(d, 0.0);
        // Half the mass shifted.
        let xs = [0.0, 0.0, 1.0, 1.0];
        let ys = [0.0, 1.0, 1.0, 1.0];
        let d = ks_statistic(&xs, &ys).unwrap();
        assert!((d - 0.25).abs() < 1e-12, "d={d}");
    }

    #[test]
    fn p_value_matches_scipy_reference() {
        // scipy.stats.ks_2samp(range(20), range(5, 25)) → D=0.25, p≈0.5345
        // (asymptotic mode). Our Stephens-corrected value should be close.
        let xs: Vec<f64> = (0..20).map(f64::from).collect();
        let ys: Vec<f64> = (5..25).map(f64::from).collect();
        let r = ks_test(&xs, &ys).unwrap();
        assert!((r.statistic - 0.25).abs() < 1e-12);
        assert!((r.p_value - 0.53).abs() < 0.08, "p={}", r.p_value);
    }

    #[test]
    fn rejects_location_shift_with_windowed_sample_sizes() {
        // The paper uses ~19 hopping windows per phase; make sure a clear
        // shift is detectable at that size.
        let xs: Vec<f64> = (0..19).map(|i| 50.0 + (i % 5) as f64).collect();
        let ys: Vec<f64> = (0..19).map(|i| 80.0 + (i % 5) as f64).collect();
        assert!(ks_test(&xs, &ys).unwrap().rejects_at(0.05));
    }

    #[test]
    fn null_calibration_rough() {
        // Under H0 the rejection rate at alpha=0.05 should be near 5%
        // (conservative is fine for windowed data).
        let mut state = 12345u64;
        let mut next_f = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 11) as f64 / (1u64 << 53) as f64
        };
        let trials = 400;
        let mut rejections = 0;
        for _ in 0..trials {
            let xs: Vec<f64> = (0..30).map(|_| next_f()).collect();
            let ys: Vec<f64> = (0..30).map(|_| next_f()).collect();
            if ks_test(&xs, &ys).unwrap().rejects_at(0.05) {
                rejections += 1;
            }
        }
        let rate = rejections as f64 / trials as f64;
        assert!(rate < 0.10, "null rejection rate too high: {rate}");
    }

    #[test]
    fn permutation_test_agrees_on_clear_shift() {
        let xs = ramp(12, 0.0);
        let ys = ramp(12, 5.0);
        let r = ks_permutation_test(&xs, &ys, 500, 7).unwrap();
        assert!(r.p_value < 0.02, "p={}", r.p_value);
    }

    #[test]
    fn permutation_test_null_is_large() {
        let xs = ramp(12, 0.0);
        let r = ks_permutation_test(&xs, &xs, 300, 11).unwrap();
        assert!(r.p_value > 0.9, "p={}", r.p_value);
    }

    #[test]
    fn rejects_empty_and_nan() {
        assert_eq!(ks_test(&[], &[1.0]), Err(StatsError::EmptySample));
        assert_eq!(ks_test(&[1.0], &[]), Err(StatsError::EmptySample));
        assert_eq!(ks_test(&[f64::NAN], &[1.0]), Err(StatsError::NanInput));
    }
}
