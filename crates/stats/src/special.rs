//! Special functions needed by the test statistics: log-gamma, regularized
//! incomplete gamma and beta functions, the error function, and the standard
//! normal CDF.
//!
//! All implementations are classical series/continued-fraction evaluations
//! (Lanczos approximation, Numerical-Recipes-style `gser`/`gcf`/`betacf`)
//! accurate to roughly 1e-10 over the ranges used by the tests in this crate.

/// Natural log of the gamma function, via the Lanczos approximation (g=7, n=9).
///
/// Accurate to ~1e-13 for `x > 0`.
///
/// # Panics
///
/// Panics if `x <= 0` (the reflection formula is not needed by this crate).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma domain: x > 0, got {x}");
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma function `P(a, x)`.
///
/// `P(a, x) = γ(a, x) / Γ(a)`; this is the CDF of a Gamma(a, 1) variable, and
/// `P(k/2, x/2)` is the chi-square CDF with `k` degrees of freedom.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_p domain: a > 0, x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_series(a, x)
    } else {
        1.0 - gamma_cf(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 - P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_q domain: a > 0, x >= 0");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_series(a, x)
    } else {
        gamma_cf(a, x)
    }
}

/// Series representation of P(a,x), converges fast for x < a+1.
fn gamma_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued-fraction representation of Q(a,x), converges fast for x >= a+1.
fn gamma_cf(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Regularized incomplete beta function `I_x(a, b)`.
///
/// This is the CDF of a Beta(a, b) variable; Student's t and F CDFs are
/// expressed through it.
///
/// # Panics
///
/// Panics if `a <= 0`, `b <= 0`, or `x` outside `[0, 1]`.
pub fn beta_inc(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "beta_inc domain: a, b > 0");
    assert!(
        (0.0..=1.0).contains(&x),
        "beta_inc domain: x in [0,1], got {x}"
    );
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * betacf(a, b, x) / a
    } else {
        1.0 - front * betacf(b, a, 1.0 - x) / b
    }
}

/// Lentz continued fraction for the incomplete beta function.
fn betacf(a: f64, b: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..500 {
        let m = m as f64;
        let m2 = 2.0 * m;
        // even step
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // odd step
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    h
}

/// The error function, evaluated through the incomplete gamma function
/// using the identity `erf(x) = P(1/2, x²)` for `x ≥ 0` (odd extension for
/// negative `x`). Accuracy ~1e-12.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let v = gamma_p(0.5, x * x);
    if x > 0.0 {
        v
    } else {
        -v
    }
}

/// CDF of the standard normal distribution.
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Two-sided p-value for a standard-normal statistic.
pub fn normal_two_sided_p(z: f64) -> f64 {
    2.0 * (1.0 - normal_cdf(z.abs()))
}

/// CDF of Student's t distribution with `df` degrees of freedom.
///
/// # Panics
///
/// Panics if `df <= 0`.
pub fn student_t_cdf(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "student_t_cdf domain: df > 0");
    let x = df / (df + t * t);
    let p = 0.5 * beta_inc(df / 2.0, 0.5, x);
    if t > 0.0 {
        1.0 - p
    } else {
        p
    }
}

/// CDF of the chi-square distribution with `df` degrees of freedom.
///
/// # Panics
///
/// Panics if `df <= 0` or `x < 0`.
pub fn chi_square_cdf(x: f64, df: f64) -> f64 {
    assert!(df > 0.0, "chi_square_cdf domain: df > 0");
    gamma_p(df / 2.0, x / 2.0)
}

/// Survival function (upper tail) of the chi-square distribution.
pub fn chi_square_sf(x: f64, df: f64) -> f64 {
    assert!(df > 0.0, "chi_square_sf domain: df > 0");
    gamma_q(df / 2.0, x / 2.0)
}

/// The Kolmogorov distribution's survival function
/// `Q_KS(λ) = 2 Σ_{j≥1} (−1)^{j−1} exp(−2 j² λ²)`.
///
/// Values are clamped to `[0, 1]`.
pub fn kolmogorov_sf(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    // For small λ the alternating series converges hopelessly slowly; use
    // the theta-function dual form (Numerical Recipes §14.3.3):
    //   P(λ) = (√(2π)/λ) Σ_{j≥1} exp(−(2j−1)²π²/(8λ²)),  Q = 1 − P.
    if lambda < 1.18 {
        let x = (-std::f64::consts::PI * std::f64::consts::PI / (8.0 * lambda * lambda)).exp();
        let cdf = ((2.0 * std::f64::consts::PI).sqrt() / lambda)
            * (x + x.powi(9) + x.powi(25) + x.powi(49));
        return (1.0 - cdf).clamp(0.0, 1.0);
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    let mut term_prev = f64::MAX;
    for j in 1..=100 {
        let j = j as f64;
        let term = (-2.0 * j * j * lambda * lambda).exp();
        sum += sign * term;
        if term < 1e-17 || term / term_prev.max(1e-300) > 1.0 {
            break;
        }
        term_prev = term;
        sign = -sign;
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn ln_gamma_integers() {
        // Γ(n) = (n-1)!
        let facts = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (n, &f) in facts.iter().enumerate() {
            assert!(close(ln_gamma(n as f64 + 1.0), f64::ln(f), 1e-10), "n={n}");
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(π)
        assert!(close(
            ln_gamma(0.5),
            (std::f64::consts::PI).sqrt().ln(),
            1e-12
        ));
    }

    #[test]
    #[should_panic(expected = "ln_gamma domain")]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }

    #[test]
    fn gamma_p_q_complementary() {
        for &(a, x) in &[(0.5, 0.3), (2.0, 1.0), (5.0, 9.0), (10.0, 3.0)] {
            assert!(close(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-12));
        }
    }

    #[test]
    fn gamma_p_exponential_special_case() {
        // P(1, x) = 1 - e^{-x}
        for &x in &[0.1, 1.0, 2.5, 7.0] {
            assert!(close(gamma_p(1.0, x), 1.0 - (-x).exp(), 1e-12));
        }
    }

    #[test]
    fn chi_square_reference_values() {
        // scipy.stats.chi2.cdf(3.84, 1) ≈ 0.9499565
        assert!(close(chi_square_cdf(3.84, 1.0), 0.9499565, 1e-5));
        // chi2.cdf(5.99, 2) ≈ 0.94995
        assert!(close(chi_square_cdf(5.99, 2.0), 0.949965, 1e-4));
        assert!(close(chi_square_sf(3.84, 1.0), 1.0 - 0.9499565, 1e-5));
    }

    #[test]
    fn beta_inc_symmetry_and_bounds() {
        assert_eq!(beta_inc(2.0, 3.0, 0.0), 0.0);
        assert_eq!(beta_inc(2.0, 3.0, 1.0), 1.0);
        for &(a, b, x) in &[(2.0, 3.0, 0.4), (0.5, 0.5, 0.2), (7.0, 2.0, 0.9)] {
            let lhs = beta_inc(a, b, x);
            let rhs = 1.0 - beta_inc(b, a, 1.0 - x);
            assert!(close(lhs, rhs, 1e-10), "a={a} b={b} x={x}");
        }
    }

    #[test]
    fn beta_inc_uniform_special_case() {
        // I_x(1,1) = x
        for &x in &[0.1, 0.5, 0.99] {
            assert!(close(beta_inc(1.0, 1.0, x), x, 1e-12));
        }
    }

    #[test]
    fn erf_reference_values() {
        assert!(close(erf(0.0), 0.0, 1e-15));
        assert!(close(erf(1.0), 0.842_700_792_949_715, 1e-9));
        assert!(close(erf(-1.0), -0.842_700_792_949_715, 1e-9));
        assert!(close(erf(2.0), 0.995_322_265_018_953, 1e-9));
    }

    #[test]
    fn normal_cdf_reference_values() {
        assert!(close(normal_cdf(0.0), 0.5, 1e-12));
        assert!(close(normal_cdf(1.959_963_985), 0.975, 1e-6));
        assert!(close(normal_cdf(-1.644_853_627), 0.05, 1e-6));
    }

    #[test]
    fn student_t_reference_values() {
        // t.cdf(2.0, 10) ≈ 0.963306
        assert!(close(student_t_cdf(2.0, 10.0), 0.963_306, 1e-5));
        assert!(close(student_t_cdf(0.0, 5.0), 0.5, 1e-12));
        assert!(close(student_t_cdf(-2.0, 10.0), 1.0 - 0.963_306, 1e-5));
    }

    #[test]
    fn kolmogorov_sf_reference_values() {
        // Known: Q(1.36) ≈ 0.049, the classic 5% critical value.
        let q = kolmogorov_sf(1.36);
        assert!(close(q, 0.049, 2e-3), "q={q}");
        assert_eq!(kolmogorov_sf(0.0), 1.0);
        assert!(kolmogorov_sf(3.0) < 1e-6);
        // Monotone decreasing.
        assert!(kolmogorov_sf(0.5) > kolmogorov_sf(1.0));
        assert!(kolmogorov_sf(1.0) > kolmogorov_sf(2.0));
    }

    #[test]
    fn normal_two_sided_p_symmetry() {
        assert!(close(normal_two_sided_p(1.96), 0.05, 1e-3));
        assert!(close(normal_two_sided_p(-1.96), 0.05, 1e-3));
        assert!(close(normal_two_sided_p(0.0), 1.0, 1e-12));
    }
}
