//! Bootstrap confidence intervals (percentile method).
//!
//! The paper reports point estimates of accuracy/informativeness over 8–11
//! fault cases; bootstrap CIs quantify how much those small-n numbers can
//! be trusted when comparing methods.

use crate::error::{check_no_nan, check_nonempty, Result, StatsError};

/// A two-sided confidence interval for a mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// Point estimate (the sample mean).
    pub mean: f64,
    /// Confidence level, e.g. 0.95.
    pub level: f64,
}

impl ConfidenceInterval {
    /// True when `value` lies inside the interval.
    pub fn contains(&self, value: f64) -> bool {
        (self.lo..=self.hi).contains(&value)
    }

    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

impl std::fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.3} [{:.3}, {:.3}] @{:.0}%",
            self.mean,
            self.lo,
            self.hi,
            self.level * 100.0
        )
    }
}

/// Percentile-bootstrap CI for the mean of `xs`.
///
/// `level` is the confidence level (e.g. `0.95`); resampling uses a private
/// xorshift PRNG seeded by `seed`, so results are deterministic.
///
/// # Errors
///
/// Empty/NaN input errors; [`StatsError::InvalidParameter`] if `level` is
/// outside `(0, 1)` or `iterations == 0`.
///
/// # Examples
///
/// ```
/// use icfl_stats::bootstrap_mean_ci;
///
/// let outcomes = [1.0, 1.0, 1.0, 0.0, 1.0, 1.0, 1.0, 0.0]; // 6/8 correct
/// let ci = bootstrap_mean_ci(&outcomes, 1_000, 0.95, 7)?;
/// assert!(ci.contains(0.75));
/// assert!(ci.lo >= 0.0 && ci.hi <= 1.0);
/// # Ok::<(), icfl_stats::StatsError>(())
/// ```
pub fn bootstrap_mean_ci(
    xs: &[f64],
    iterations: u32,
    level: f64,
    seed: u64,
) -> Result<ConfidenceInterval> {
    check_nonempty(xs)?;
    check_no_nan(xs)?;
    if !(0.0 < level && level < 1.0) {
        return Err(StatsError::InvalidParameter("level must be in (0,1)"));
    }
    if iterations == 0 {
        return Err(StatsError::InvalidParameter("iterations must be positive"));
    }
    let n = xs.len();
    let mean = xs.iter().sum::<f64>() / n as f64;
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_f491_4f6c_dd1d)
    };
    let mut means: Vec<f64> = (0..iterations)
        .map(|_| {
            let mut acc = 0.0;
            for _ in 0..n {
                acc += xs[(next() % n as u64) as usize];
            }
            acc / n as f64
        })
        .collect();
    means.sort_by(|a, b| a.partial_cmp(b).expect("finite means"));
    let alpha = 1.0 - level;
    let lo = crate::quantile_sorted(&means, alpha / 2.0);
    let hi = crate::quantile_sorted(&means, 1.0 - alpha / 2.0);
    Ok(ConfidenceInterval {
        lo,
        hi,
        mean,
        level,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ci_brackets_the_mean() {
        let xs: Vec<f64> = (0..50).map(|i| (i % 10) as f64).collect();
        let ci = bootstrap_mean_ci(&xs, 2_000, 0.95, 1).unwrap();
        assert!(ci.contains(ci.mean));
        assert!(ci.contains(4.5));
        assert!(ci.width() > 0.0);
    }

    #[test]
    fn constant_data_gives_degenerate_interval() {
        let xs = [3.0; 20];
        let ci = bootstrap_mean_ci(&xs, 500, 0.9, 2).unwrap();
        assert_eq!(ci.lo, 3.0);
        assert_eq!(ci.hi, 3.0);
        assert_eq!(ci.mean, 3.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let a = bootstrap_mean_ci(&xs, 1_000, 0.95, 42).unwrap();
        let b = bootstrap_mean_ci(&xs, 1_000, 0.95, 42).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn wider_level_gives_wider_interval() {
        let xs: Vec<f64> = (0..30).map(|i| ((i * 7) % 13) as f64).collect();
        let narrow = bootstrap_mean_ci(&xs, 2_000, 0.80, 5).unwrap();
        let wide = bootstrap_mean_ci(&xs, 2_000, 0.99, 5).unwrap();
        assert!(wide.width() >= narrow.width());
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(bootstrap_mean_ci(&[], 100, 0.95, 1).is_err());
        assert!(bootstrap_mean_ci(&[1.0], 0, 0.95, 1).is_err());
        assert!(bootstrap_mean_ci(&[1.0], 100, 1.0, 1).is_err());
        assert!(bootstrap_mean_ci(&[f64::NAN], 100, 0.5, 1).is_err());
    }

    #[test]
    fn display_is_informative() {
        let ci = bootstrap_mean_ci(&[0.0, 1.0, 1.0, 1.0], 500, 0.95, 9).unwrap();
        let s = ci.to_string();
        assert!(s.contains("95%"));
        assert!(s.contains('['));
    }
}
