//! G² (log-likelihood ratio) conditional-independence test on discrete data.
//!
//! This is the categorical CI test used by the RCD baseline's PC-style
//! search after metrics are discretized with
//! [`discretize_equal_frequency`](crate::discretize_equal_frequency).

use crate::error::{Result, StatsError};
use crate::special::chi_square_sf;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Result of a discrete conditional-independence test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GSquareResult {
    /// The G² statistic.
    pub g2: f64,
    /// Degrees of freedom (summed over strata).
    pub df: f64,
    /// Upper-tail p-value from the chi-square distribution.
    pub p_value: f64,
    /// Number of observations.
    pub n: usize,
}

impl GSquareResult {
    /// True when dependence is detected at level `alpha`.
    pub fn dependent_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// G² test of `X ⫫ Y | Z` on discrete (already-binned) data.
///
/// `x`, `y` are label sequences; `cond` is a (possibly empty) set of label
/// sequences defining the strata. With insufficient degrees of freedom
/// (e.g. a variable is constant within every stratum) the test returns
/// `p = 1`, the conservative "independent" answer — matching how PC-style
/// algorithms treat unpowered tests.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] on length mismatch and
/// [`StatsError::EmptySample`] on empty input.
pub fn g_square_test(x: &[usize], y: &[usize], cond: &[&[usize]]) -> Result<GSquareResult> {
    if x.is_empty() {
        return Err(StatsError::EmptySample);
    }
    let n = x.len();
    if y.len() != n || cond.iter().any(|c| c.len() != n) {
        return Err(StatsError::InvalidParameter(
            "columns must have equal length",
        ));
    }

    // Group observations by stratum key.
    let mut strata: HashMap<Vec<usize>, Vec<usize>> = HashMap::new();
    for idx in 0..n {
        let key: Vec<usize> = cond.iter().map(|c| c[idx]).collect();
        strata.entry(key).or_default().push(idx);
    }

    let mut g2 = 0.0;
    let mut df = 0.0;
    for rows in strata.values() {
        // Contingency table for this stratum.
        let mut x_levels: Vec<usize> = rows.iter().map(|&i| x[i]).collect();
        x_levels.sort_unstable();
        x_levels.dedup();
        let mut y_levels: Vec<usize> = rows.iter().map(|&i| y[i]).collect();
        y_levels.sort_unstable();
        y_levels.dedup();
        let (rx, ry) = (x_levels.len(), y_levels.len());
        if rx < 2 || ry < 2 {
            continue; // no information in this stratum
        }
        let xi = |v: usize| x_levels.binary_search(&v).expect("level exists");
        let yi = |v: usize| y_levels.binary_search(&v).expect("level exists");
        let mut table = vec![0.0f64; rx * ry];
        let mut row_tot = vec![0.0f64; rx];
        let mut col_tot = vec![0.0f64; ry];
        for &i in rows {
            let (a, b) = (xi(x[i]), yi(y[i]));
            table[a * ry + b] += 1.0;
            row_tot[a] += 1.0;
            col_tot[b] += 1.0;
        }
        let total = rows.len() as f64;
        for a in 0..rx {
            for b in 0..ry {
                let o = table[a * ry + b];
                if o > 0.0 {
                    let e = row_tot[a] * col_tot[b] / total;
                    g2 += 2.0 * o * (o / e).ln();
                }
            }
        }
        df += (rx - 1) as f64 * (ry - 1) as f64;
    }

    if df <= 0.0 {
        return Ok(GSquareResult {
            g2: 0.0,
            df: 0.0,
            p_value: 1.0,
            n,
        });
    }
    Ok(GSquareResult {
        g2: g2.max(0.0),
        df,
        p_value: chi_square_sf(g2.max(0.0), df),
        n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_dependent_binary_variables() {
        let x: Vec<usize> = (0..100).map(|i| i % 2).collect();
        let y = x.clone();
        let r = g_square_test(&x, &y, &[]).unwrap();
        assert!(r.dependent_at(0.001), "p={}", r.p_value);
        assert_eq!(r.df, 1.0);
    }

    #[test]
    fn independent_variables_not_rejected() {
        // x alternates with period 2, y with period 4 → balanced and
        // exactly independent in counts.
        let x: Vec<usize> = (0..400).map(|i| i % 2).collect();
        let y: Vec<usize> = (0..400).map(|i| (i / 2) % 2).collect();
        let r = g_square_test(&x, &y, &[]).unwrap();
        assert!(r.p_value > 0.9, "p={}", r.p_value);
        assert!(r.g2 < 1e-9);
    }

    #[test]
    fn conditioning_blocks_a_chain() {
        // z drives both x and y: x ⫫ y | z.
        let mut rows_x = Vec::new();
        let mut rows_y = Vec::new();
        let mut rows_z = Vec::new();
        let mut state = 9u64;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_f491_4f6c_dd1d)
        };
        for _ in 0..2_000 {
            let z = (next() % 2) as usize;
            // x and y each copy z with 90% probability, independently.
            let x = if next() % 10 < 9 { z } else { 1 - z };
            let y = if next() % 10 < 9 { z } else { 1 - z };
            rows_x.push(x);
            rows_y.push(y);
            rows_z.push(z);
        }
        let marginal = g_square_test(&rows_x, &rows_y, &[]).unwrap();
        assert!(marginal.dependent_at(0.01), "p={}", marginal.p_value);
        let conditional = g_square_test(&rows_x, &rows_y, &[&rows_z]).unwrap();
        assert!(!conditional.dependent_at(0.01), "p={}", conditional.p_value);
    }

    #[test]
    fn constant_variable_gives_p_one() {
        let x = vec![0usize; 50];
        let y: Vec<usize> = (0..50).map(|i| i % 2).collect();
        let r = g_square_test(&x, &y, &[]).unwrap();
        assert_eq!(r.p_value, 1.0);
        assert_eq!(r.df, 0.0);
    }

    #[test]
    fn mismatched_lengths_error() {
        assert!(g_square_test(&[0, 1], &[0], &[]).is_err());
        let z = vec![0usize; 3];
        assert!(g_square_test(&[0, 1], &[0, 1], &[&z]).is_err());
    }

    #[test]
    fn empty_input_errors() {
        assert!(matches!(
            g_square_test(&[], &[], &[]),
            Err(StatsError::EmptySample)
        ));
    }
}
