//! Correlation measures and the Fisher-z (partial-)correlation independence
//! test used by constraint-based causal discovery (the RCD baseline).

use crate::error::{check_no_nan, Result, StatsError};
use crate::special::normal_two_sided_p;
use serde::{Deserialize, Serialize};

/// Pearson product-moment correlation of two equal-length samples.
///
/// Returns `0.0` when either sample is constant (no linear association is
/// measurable).
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] on length mismatch,
/// [`StatsError::InsufficientData`] for fewer than two pairs, and
/// [`StatsError::NanInput`] on NaN.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Result<f64> {
    if xs.len() != ys.len() {
        return Err(StatsError::InvalidParameter(
            "samples must have equal length",
        ));
    }
    if xs.len() < 2 {
        return Err(StatsError::InsufficientData {
            needed: 2,
            got: xs.len(),
        });
    }
    check_no_nan(xs)?;
    check_no_nan(ys)?;
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return Ok(0.0);
    }
    Ok((sxy / (sxx.sqrt() * syy.sqrt())).clamp(-1.0, 1.0))
}

/// Spearman rank correlation (Pearson on mid-ranks).
///
/// # Errors
///
/// Same as [`pearson`].
pub fn spearman(xs: &[f64], ys: &[f64]) -> Result<f64> {
    if xs.len() != ys.len() {
        return Err(StatsError::InvalidParameter(
            "samples must have equal length",
        ));
    }
    check_no_nan(xs)?;
    check_no_nan(ys)?;
    pearson(&ranks_of(xs), &ranks_of(ys))
}

fn ranks_of(xs: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..xs.len()).collect();
    order.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("no NaN"));
    let mut ranks = vec![0.0; xs.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && xs[order[j + 1]] == xs[order[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Result of a (partial-)correlation independence test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorrIndepResult {
    /// Estimated (partial) correlation.
    pub r: f64,
    /// Two-sided p-value under Fisher's z transformation.
    pub p_value: f64,
    /// Effective sample size used.
    pub n: usize,
    /// Size of the conditioning set.
    pub cond_size: usize,
}

impl CorrIndepResult {
    /// True when dependence is detected at level `alpha`.
    pub fn dependent_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Gauss–Jordan inversion of a small dense matrix (row-major, `dim×dim`).
///
/// Returns `None` when the matrix is singular to working precision.
fn invert(mut m: Vec<f64>, dim: usize) -> Option<Vec<f64>> {
    let mut inv = vec![0.0; dim * dim];
    for i in 0..dim {
        inv[i * dim + i] = 1.0;
    }
    for col in 0..dim {
        // Partial pivoting.
        let mut pivot = col;
        for row in col + 1..dim {
            if m[row * dim + col].abs() > m[pivot * dim + col].abs() {
                pivot = row;
            }
        }
        if m[pivot * dim + col].abs() < 1e-12 {
            return None;
        }
        if pivot != col {
            for k in 0..dim {
                m.swap(col * dim + k, pivot * dim + k);
                inv.swap(col * dim + k, pivot * dim + k);
            }
        }
        let p = m[col * dim + col];
        for k in 0..dim {
            m[col * dim + k] /= p;
            inv[col * dim + k] /= p;
        }
        for row in 0..dim {
            if row == col {
                continue;
            }
            let f = m[row * dim + col];
            if f == 0.0 {
                continue;
            }
            for k in 0..dim {
                m[row * dim + k] -= f * m[col * dim + k];
                inv[row * dim + k] -= f * inv[col * dim + k];
            }
        }
    }
    Some(inv)
}

/// Fisher-z test of `X ⫫ Y | Z` on continuous data.
///
/// `columns[i]` and `columns[j]` are tested given the conditioning columns
/// `cond`. All columns must have equal length `n > |cond| + 3`.
///
/// The partial correlation is computed from the precision matrix of the
/// involved variables; a singular correlation matrix (perfectly collinear
/// conditioning set) is treated as maximal dependence removal, returning
/// `r = 0`, `p = 1` — the conservative "independent" answer.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] for bad indices or unequal
/// lengths, [`StatsError::InsufficientData`] when `n ≤ |cond| + 3`.
pub fn partial_correlation_test(
    columns: &[Vec<f64>],
    i: usize,
    j: usize,
    cond: &[usize],
) -> Result<CorrIndepResult> {
    if i >= columns.len() || j >= columns.len() || cond.iter().any(|&k| k >= columns.len()) {
        return Err(StatsError::InvalidParameter("variable index out of range"));
    }
    if i == j || cond.contains(&i) || cond.contains(&j) {
        return Err(StatsError::InvalidParameter(
            "test variables must be distinct from each other and the conditioning set",
        ));
    }
    let n = columns[i].len();
    if columns.iter().any(|c| c.len() != n) {
        return Err(StatsError::InvalidParameter(
            "columns must have equal length",
        ));
    }
    if n <= cond.len() + 3 {
        return Err(StatsError::InsufficientData {
            needed: cond.len() + 4,
            got: n,
        });
    }

    // Build the correlation matrix over [i, j, cond...].
    let vars: Vec<usize> = [i, j].iter().copied().chain(cond.iter().copied()).collect();
    let k = vars.len();
    let mut cm = vec![0.0; k * k];
    for a in 0..k {
        cm[a * k + a] = 1.0;
        for b in a + 1..k {
            let r = pearson(&columns[vars[a]], &columns[vars[b]])?;
            cm[a * k + b] = r;
            cm[b * k + a] = r;
        }
    }

    let r = if cond.is_empty() {
        cm[1]
    } else {
        match invert(cm, k) {
            Some(p) => {
                let denom = (p[0] * p[k + 1]).sqrt();
                if denom <= 0.0 {
                    0.0
                } else {
                    (-p[1] / denom).clamp(-1.0, 1.0)
                }
            }
            None => 0.0,
        }
    };

    // Fisher z.
    let r_c = r.clamp(-0.999_999, 0.999_999);
    let z = 0.5 * ((1.0 + r_c) / (1.0 - r_c)).ln();
    let stat = (n as f64 - cond.len() as f64 - 3.0).sqrt() * z.abs();
    Ok(CorrIndepResult {
        r,
        p_value: normal_two_sided_p(stat),
        n,
        cond_size: cond.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_line(n: usize, slope: f64, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 11) as f64 / (1u64 << 53) as f64
        };
        let xs: Vec<f64> = (0..n).map(|_| next()).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| slope * x + 0.1 * next()).collect();
        (xs, ys)
    }

    #[test]
    fn pearson_perfect_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert!((pearson(&xs, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).unwrap(), 0.0);
    }

    #[test]
    fn pearson_rejects_mismatched_lengths() {
        assert!(pearson(&[1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn spearman_monotone_nonlinear_is_one() {
        let xs: Vec<f64> = (1..20).map(f64::from).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x.exp()).collect();
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties() {
        let xs = [1.0, 2.0, 2.0, 3.0];
        let ys = [1.0, 2.0, 2.0, 3.0];
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn invert_identity() {
        let inv = invert(vec![1.0, 0.0, 0.0, 1.0], 2).unwrap();
        assert_eq!(inv, vec![1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn invert_known_2x2() {
        // [[2, 1], [1, 1]]^-1 = [[1, -1], [-1, 2]]
        let inv = invert(vec![2.0, 1.0, 1.0, 1.0], 2).unwrap();
        for (a, b) in inv.iter().zip([1.0, -1.0, -1.0, 2.0]) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn invert_singular_returns_none() {
        assert!(invert(vec![1.0, 2.0, 2.0, 4.0], 2).is_none());
    }

    #[test]
    fn marginal_dependence_detected() {
        let (xs, ys) = noisy_line(200, 1.0, 3);
        let r = partial_correlation_test(&[xs, ys], 0, 1, &[]).unwrap();
        assert!(r.dependent_at(0.01));
        assert!(r.r > 0.8);
    }

    #[test]
    fn independence_not_rejected() {
        let (xs, _) = noisy_line(200, 1.0, 5);
        let (zs, _) = noisy_line(200, 1.0, 99);
        let r = partial_correlation_test(&[xs, zs], 0, 1, &[]).unwrap();
        assert!(!r.dependent_at(0.01), "r={} p={}", r.r, r.p_value);
    }

    #[test]
    fn chain_is_blocked_by_conditioning() {
        // X → Z → Y: X ⫫ Y | Z should hold, X ⫫ Y should not.
        let mut state = 42u64 | 1;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let n = 400;
        let xs: Vec<f64> = (0..n).map(|_| next()).collect();
        let zs: Vec<f64> = xs.iter().map(|&x| x + 0.3 * next()).collect();
        let ys: Vec<f64> = zs.iter().map(|&z| z + 0.3 * next()).collect();
        let cols = vec![xs, ys, zs];
        let marginal = partial_correlation_test(&cols, 0, 1, &[]).unwrap();
        assert!(marginal.dependent_at(0.01));
        let conditioned = partial_correlation_test(&cols, 0, 1, &[2]).unwrap();
        assert!(
            !conditioned.dependent_at(0.01),
            "partial r={} p={}",
            conditioned.r,
            conditioned.p_value
        );
    }

    #[test]
    fn rejects_overlapping_variables() {
        let cols = vec![vec![1.0; 10], vec![2.0; 10]];
        assert!(partial_correlation_test(&cols, 0, 0, &[]).is_err());
        assert!(partial_correlation_test(&cols, 0, 1, &[1]).is_err());
    }

    #[test]
    fn needs_enough_samples() {
        let cols = vec![vec![1.0, 2.0, 3.0], vec![1.0, 2.0, 3.0]];
        assert!(matches!(
            partial_correlation_test(&cols, 0, 1, &[]),
            Err(StatsError::InsufficientData { .. })
        ));
    }
}
