//! Property-based tests for the statistical routines: invariances the KS
//! test must satisfy (distribution-freeness), rank-test identities, and
//! descriptive-statistics orderings.

use icfl_stats::{
    discretize_equal_frequency, g_square_test, ks_statistic, ks_test, mann_whitney_u, mean,
    pearson, quantile, special, variance, FiveNumber,
};
use proptest::prelude::*;

fn finite_vec(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e6f64..1e6, len)
}

proptest! {
    #[test]
    fn ks_statistic_bounded_and_symmetric(xs in finite_vec(1..60), ys in finite_vec(1..60)) {
        let d1 = ks_statistic(&xs, &ys).unwrap();
        let d2 = ks_statistic(&ys, &xs).unwrap();
        prop_assert!((0.0..=1.0).contains(&d1));
        prop_assert_eq!(d1, d2);
    }

    #[test]
    fn ks_statistic_zero_on_identical_samples(xs in finite_vec(1..60)) {
        prop_assert_eq!(ks_statistic(&xs, &xs).unwrap(), 0.0);
    }

    #[test]
    fn ks_is_invariant_to_monotone_affine_maps(
        xs in finite_vec(2..40),
        ys in finite_vec(2..40),
        scale in 0.001f64..1000.0,
        shift in -1e3f64..1e3,
    ) {
        let d = ks_statistic(&xs, &ys).unwrap();
        let fx: Vec<f64> = xs.iter().map(|v| v * scale + shift).collect();
        let fy: Vec<f64> = ys.iter().map(|v| v * scale + shift).collect();
        let d2 = ks_statistic(&fx, &fy).unwrap();
        prop_assert!((d - d2).abs() < 1e-9, "d={d} d2={d2}");
    }

    #[test]
    fn ks_p_value_in_unit_interval(xs in finite_vec(2..40), ys in finite_vec(2..40)) {
        let r = ks_test(&xs, &ys).unwrap();
        prop_assert!((0.0..=1.0).contains(&r.p_value));
    }

    #[test]
    fn ks_detects_disjoint_supports(xs in finite_vec(5..40)) {
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        // Shift by more than the full range so supports cannot overlap.
        let ys: Vec<f64> = xs.iter().map(|v| v + (max - min) + 1.0).collect();
        let d = ks_statistic(&xs, &ys).unwrap();
        prop_assert_eq!(d, 1.0);
    }

    #[test]
    fn mann_whitney_u_identity(xs in finite_vec(1..40), ys in finite_vec(1..40)) {
        let r12 = mann_whitney_u(&xs, &ys).unwrap();
        let r21 = mann_whitney_u(&ys, &xs).unwrap();
        let expect = (xs.len() * ys.len()) as f64;
        prop_assert!((r12.u + r21.u - expect).abs() < 1e-6);
        prop_assert!((0.0..=1.0).contains(&r12.p_value));
    }

    #[test]
    fn quantile_is_monotone_and_bounded(xs in finite_vec(1..50), q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let v_lo = quantile(&xs, lo).unwrap();
        let v_hi = quantile(&xs, hi).unwrap();
        prop_assert!(v_lo <= v_hi + 1e-12);
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v_lo >= min - 1e-12 && v_hi <= max + 1e-12);
    }

    #[test]
    fn five_number_is_ordered(xs in finite_vec(1..50)) {
        let s = FiveNumber::of(&xs).unwrap();
        prop_assert!(s.min <= s.q1 + 1e-12);
        prop_assert!(s.q1 <= s.median + 1e-12);
        prop_assert!(s.median <= s.q3 + 1e-12);
        prop_assert!(s.q3 <= s.max + 1e-12);
        prop_assert!(s.mean >= s.min - 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert_eq!(s.n, xs.len());
    }

    #[test]
    fn variance_nonnegative_and_shift_invariant(xs in finite_vec(2..50), shift in -1e3f64..1e3) {
        let v = variance(&xs).unwrap();
        prop_assert!(v >= 0.0);
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        let v2 = variance(&shifted).unwrap();
        // Relative tolerance: catastrophic cancellation is bounded for our
        // two-pass implementation.
        prop_assert!((v - v2).abs() <= 1e-6 * (1.0 + v.abs()), "v={v} v2={v2}");
    }

    #[test]
    fn mean_lies_within_range(xs in finite_vec(1..50)) {
        let m = mean(&xs).unwrap();
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= min - 1e-9 && m <= max + 1e-9);
    }

    #[test]
    fn pearson_bounded(xs in finite_vec(2..40), ys in finite_vec(2..40)) {
        let n = xs.len().min(ys.len());
        let r = pearson(&xs[..n], &ys[..n]).unwrap();
        prop_assert!((-1.0..=1.0).contains(&r));
    }

    #[test]
    fn pearson_self_correlation_is_one(xs in finite_vec(3..40)) {
        let distinct = xs.windows(2).any(|w| w[0] != w[1]);
        let r = pearson(&xs, &xs).unwrap();
        if distinct {
            prop_assert!((r - 1.0).abs() < 1e-9, "r={r}");
        } else {
            prop_assert_eq!(r, 0.0);
        }
    }

    #[test]
    fn discretize_labels_are_dense_and_monotone(
        xs in finite_vec(4..60),
        bins in 2usize..6,
    ) {
        let (labels, cuts) = discretize_equal_frequency(&xs, bins).unwrap();
        prop_assert_eq!(labels.len(), xs.len());
        prop_assert!(cuts.len() < bins);
        prop_assert!(labels.iter().all(|&l| l <= cuts.len()));
        // Monotone: a larger value never gets a smaller label.
        for i in 0..xs.len() {
            for j in 0..xs.len() {
                if xs[i] < xs[j] {
                    prop_assert!(labels[i] <= labels[j]);
                }
            }
        }
    }

    #[test]
    fn g_square_p_value_valid(
        x in proptest::collection::vec(0usize..3, 10..80),
        y in proptest::collection::vec(0usize..3, 10..80),
    ) {
        let n = x.len().min(y.len());
        let r = g_square_test(&x[..n], &y[..n], &[]).unwrap();
        prop_assert!((0.0..=1.0).contains(&r.p_value));
        prop_assert!(r.g2 >= 0.0);
        prop_assert!(r.df >= 0.0);
    }

    #[test]
    fn kolmogorov_sf_monotone(a in 0.01f64..3.0, b in 0.01f64..3.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(special::kolmogorov_sf(lo) >= special::kolmogorov_sf(hi) - 1e-12);
    }

    #[test]
    fn normal_cdf_monotone_and_bounded(a in -6.0f64..6.0, b in -6.0f64..6.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let (pl, ph) = (special::normal_cdf(lo), special::normal_cdf(hi));
        prop_assert!((0.0..=1.0).contains(&pl));
        prop_assert!(pl <= ph + 1e-12);
    }

    #[test]
    fn gamma_p_q_sum_to_one(a in 0.1f64..20.0, x in 0.0f64..40.0) {
        let s = special::gamma_p(a, x) + special::gamma_q(a, x);
        prop_assert!((s - 1.0).abs() < 1e-9, "s={s}");
    }
}
