//! Baseline \[23\] — Wang et al., *"Fault injection based interventional
//! causal learning for distributed applications"*, AAAI 2022.
//!
//! The cited method learns causal relations from fault injections like the
//! proposed approach, but with three design choices the DSN'24 paper
//! identifies as limiting:
//!
//! 1. it observes a **single metric** — the error-log rate (filtered to
//!    error severity);
//! 2. it assumes errors propagate only **backwards along the response
//!    path**, so omission faults (a silently starved downstream consumer)
//!    are invisible;
//! 3. it identifies causal edges via **linear correlation** of error rates.
//!
//! This implementation keeps all three choices: interventional fingerprints
//! over the `error_log` metric plus a Pearson-correlation-oriented
//! error-propagation graph. The graph is exposed for inspection; diagnosis
//! uses the fingerprints (interventions orient the edges, so fingerprint
//! matching and graph reachability coincide here).

use crate::FaultLocalizer;
use icfl_core::{CampaignRun, CausalModel, ProductionRun, Result};
use icfl_micro::ServiceId;
use icfl_stats::{pearson, ShiftDetector};
use icfl_telemetry::MetricCatalog;
use std::collections::BTreeSet;

/// The \[23\]-style error-log-only interventional localizer.
#[derive(Debug, Clone)]
pub struct ErrorLogLocalizer {
    model: CausalModel,
    /// `u → v` edges: error rates at `u` and `v` were linearly correlated
    /// across the training campaign (the \[23\] edge criterion).
    edges: Vec<(ServiceId, ServiceId)>,
}

impl ErrorLogLocalizer {
    /// Correlation threshold for declaring an error-propagation edge.
    /// Pooling across fault phases dilutes per-phase correlation (a clean
    /// A→B→C chain yields r = 0.5 between A's and B's pooled error rates),
    /// so a moderate threshold is used.
    pub const CORRELATION_THRESHOLD: f64 = 0.4;

    /// Trains on a completed campaign using only the error-log-rate metric.
    ///
    /// # Errors
    ///
    /// Propagates telemetry/statistics errors.
    pub fn train(campaign: &CampaignRun, detector: ShiftDetector) -> Result<ErrorLogLocalizer> {
        let catalog = MetricCatalog::error_log_only();
        let model = campaign.learn(&catalog, detector)?;

        // Correlation graph over pooled fault-phase error-rate series.
        let faults = campaign.fault_datasets(&catalog)?;
        let n = model.num_services();
        let mut pooled: Vec<Vec<f64>> = vec![Vec::new(); n];
        for (_, ds) in &faults {
            for (s, series) in pooled.iter_mut().enumerate() {
                series.extend_from_slice(ds.samples(0, ServiceId::from_index(s)));
            }
        }
        let mut edges = Vec::new();
        for u in 0..n {
            for v in 0..n {
                if u == v {
                    continue;
                }
                if pooled[u].len() >= 2 {
                    let r = pearson(&pooled[u], &pooled[v])?;
                    if r >= Self::CORRELATION_THRESHOLD {
                        edges.push((ServiceId::from_index(u), ServiceId::from_index(v)));
                    }
                }
            }
        }
        Ok(ErrorLogLocalizer { model, edges })
    }

    /// The learned error-propagation edges (both orientations of a
    /// correlated pair are present; interventions disambiguate them during
    /// fingerprint matching).
    pub fn edges(&self) -> &[(ServiceId, ServiceId)] {
        &self.edges
    }

    /// The underlying single-metric causal model.
    pub fn model(&self) -> &CausalModel {
        &self.model
    }
}

impl FaultLocalizer for ErrorLogLocalizer {
    fn name(&self) -> &'static str {
        "error-log-interventional [23]"
    }

    fn localize_run(&self, run: &ProductionRun) -> Result<BTreeSet<ServiceId>> {
        let ds = run.dataset(self.model.catalog())?;
        let loc = self.model.localize(&ds)?;
        Ok(loc.candidates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icfl_core::RunConfig;

    #[test]
    fn learns_backward_error_propagation_on_a_chain() {
        // pattern1: A→B→C. Fault on B or C produces error logs at the
        // *callers*, so fingerprints look backward along the response path.
        let app = icfl_apps::pattern1();
        let campaign = CampaignRun::execute(&app, &RunConfig::quick(11)).unwrap();
        let loc = ErrorLogLocalizer::train(&campaign, RunConfig::default_detector()).unwrap();
        let ids = campaign.targets();
        let (a, b, c) = (ids[0], ids[1], ids[2]);
        // C(B) over error logs = {A, B}: A logs, C silent.
        let set_b = loc.model().causal_set(0, b).unwrap();
        assert!(set_b.contains(&a));
        assert!(!set_b.contains(&c));
        // C(C) = {B, C}: B logs the failed call.
        let set_c = loc.model().causal_set(0, c).unwrap();
        assert!(set_c.contains(&b));
        assert!(!set_c.contains(&a) || set_c.contains(&a)); // A may log via propagation
    }

    #[test]
    fn correlated_error_rates_produce_edges() {
        let app = icfl_apps::pattern1();
        let campaign = CampaignRun::execute(&app, &RunConfig::quick(13)).unwrap();
        let loc = ErrorLogLocalizer::train(&campaign, RunConfig::default_detector()).unwrap();
        // A and B both log errors when C is down → their error rates
        // correlate somewhere in the pooled series.
        assert!(
            !loc.edges().is_empty(),
            "expected at least one correlation edge"
        );
    }

    #[test]
    fn blind_to_omission_faults() {
        // pattern2: fault on H starves G without a single error log at G.
        let app = icfl_apps::pattern2();
        let campaign = CampaignRun::execute(&app, &RunConfig::quick(17)).unwrap();
        let loc = ErrorLogLocalizer::train(&campaign, RunConfig::default_detector()).unwrap();
        let ids = campaign.targets(); // H, D, G
        let g = ids[2];
        // The error-log causal set of a fault on G contains nothing but G:
        // nobody calls G synchronously from the user path, and the daemon
        // logs errors at F only. G's own starvation is invisible.
        let set_g = loc.model().causal_set(0, g).unwrap();
        assert!(
            set_g.len() <= 2,
            "error logs should carry little signal: {set_g:?}"
        );
    }
}
