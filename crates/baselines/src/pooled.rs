//! The single-causal-world baseline — the Ψ-FCI-style assumption the paper
//! argues against in §III-A/§VI-B.
//!
//! Algorithms like Ψ-FCI \[40\] assume one causal graph governs all
//! observations. Projected onto the causal-set formulation, that means
//! collapsing the per-metric worlds into one: `C(s) = ∪_M C(s, M)` and
//! `A = ∪_M A(M)`. This throws away exactly the metric-specific structure
//! the paper shows is necessary — e.g. `C(B, msg) = {B, A, E}` vs
//! `C(B, cpu) = {B, C, E}` on CausalBench collapse into an
//! indistinguishable blob once unioned.

use crate::FaultLocalizer;
use icfl_core::{CampaignRun, CausalModel, ProductionRun, Result};
use icfl_micro::ServiceId;
use icfl_stats::ShiftDetector;
use icfl_telemetry::MetricCatalog;
use std::collections::BTreeSet;

/// The pooled (single-causal-world) localizer.
#[derive(Debug, Clone)]
pub struct PooledGraphLocalizer {
    model: CausalModel,
    /// `pooled[i] = (target, ∪_M C(target, M))`.
    pooled: Vec<(ServiceId, BTreeSet<ServiceId>)>,
}

impl PooledGraphLocalizer {
    /// Trains by learning the per-metric model and collapsing it.
    ///
    /// # Errors
    ///
    /// Propagates telemetry/statistics errors.
    pub fn train(
        campaign: &CampaignRun,
        catalog: &MetricCatalog,
        detector: ShiftDetector,
    ) -> Result<PooledGraphLocalizer> {
        let model = campaign.learn(catalog, detector)?;
        let mut pooled: Vec<(ServiceId, BTreeSet<ServiceId>)> = model
            .targets()
            .into_iter()
            .map(|t| (t, BTreeSet::new()))
            .collect();
        for (_, target, set) in model.iter_sets() {
            let entry = pooled
                .iter_mut()
                .find(|(t, _)| *t == target)
                .expect("target listed");
            entry.1.extend(set.iter().copied());
        }
        Ok(PooledGraphLocalizer { model, pooled })
    }

    /// The collapsed causal world `C(s) = ∪_M C(s, M)`.
    pub fn pooled_set(&self, target: ServiceId) -> Option<&BTreeSet<ServiceId>> {
        self.pooled
            .iter()
            .find(|(t, _)| *t == target)
            .map(|(_, c)| c)
    }
}

impl FaultLocalizer for PooledGraphLocalizer {
    fn name(&self) -> &'static str {
        "pooled-single-world (Ψ-FCI-style)"
    }

    fn localize_run(&self, run: &ProductionRun) -> Result<BTreeSet<ServiceId>> {
        let ds = run.dataset(self.model.catalog())?;
        // A = ∪_M A(M), computed with the model's detector.
        let detector = self.model.detector();
        let n = self.model.num_services();
        let mut anomalies: BTreeSet<ServiceId> = BTreeSet::new();
        for m in 0..self.model.catalog().len() {
            for s in 0..n {
                let svc = ServiceId::from_index(s);
                if detector
                    .shifted(self.model.baseline().samples(m, svc), ds.samples(m, svc))?
                    .shifted
                {
                    anomalies.insert(svc);
                }
            }
        }
        if anomalies.is_empty() {
            return Ok(BTreeSet::new());
        }
        // One vote in one world: argmax |A ∩ C(s)| (smallest-set ties).
        let mut best = 0usize;
        let mut best_size = usize::MAX;
        let mut winners = BTreeSet::new();
        for (target, c) in &self.pooled {
            let inter = anomalies.intersection(c).count();
            if inter > best || (inter == best && inter > 0 && c.len() < best_size) {
                best = inter;
                best_size = c.len();
                winners.clear();
                winners.insert(*target);
            } else if inter == best && inter > 0 && c.len() == best_size {
                winners.insert(*target);
            }
        }
        Ok(winners)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icfl_core::RunConfig;

    #[test]
    fn pooled_sets_union_the_metric_worlds() {
        let app = icfl_apps::causalbench();
        let campaign = CampaignRun::execute(&app, &RunConfig::quick(21)).unwrap();
        let pooled = PooledGraphLocalizer::train(
            &campaign,
            &MetricCatalog::derived_all(),
            RunConfig::default_detector(),
        )
        .unwrap();
        let b = campaign.targets()[1];
        let pooled_b = pooled.pooled_set(b).unwrap();
        let model = pooled.model.clone();
        // The union must be a superset of every metric-specific world.
        for m in 0..model.catalog().len() {
            let per_metric = model.causal_set(m, b).unwrap();
            assert!(per_metric.is_subset(pooled_b), "metric {m} not ⊆ pooled");
        }
        // And the §VI-B worlds really are different, so the union is
        // strictly larger than at least one of them.
        let msg = model.causal_set(0, b).unwrap();
        let cpu = model.causal_set(1, b).unwrap();
        assert_ne!(msg, cpu, "metric worlds should differ for B");
        assert!(pooled_b.len() > msg.len().min(cpu.len()));
    }
}
