//! Baseline \[24\] — Ikram et al., *"Root cause analysis of failures in
//! microservices through causal discovery"*, NeurIPS 2022 (RCD).
//!
//! RCD is *observational at failure time*: it needs no fault-injection
//! training, only a normal-operation dataset and the failing dataset. It
//! augments the variables (one per service × metric) with a binary **F-node**
//! (0 = normal window, 1 = failure window) and searches for the F-node's
//! causal neighborhood with a **hierarchical, localized PC** procedure:
//! variables are partitioned into chunks, a low-order conditional-
//! independence pass (G² on discretized data) eliminates variables that are
//! independent of F or separated from it by another variable in the chunk,
//! and the survivors are re-chunked until the candidate set stabilizes.
//! Services owning the most F-dependent surviving variables are reported as
//! root causes.
//!
//! The paper's critique (§VII) — that such single-world causal discovery
//! struggles when different metrics live in different causal worlds and
//! when load confounds everything — is visible in this implementation's
//! scores on the shared benchmark.

use crate::FaultLocalizer;
use icfl_core::{CampaignRun, ProductionRun, Result};
use icfl_micro::ServiceId;
use icfl_stats::{discretize_equal_frequency, g_square_test};
use icfl_telemetry::{Dataset, MetricCatalog};
use std::collections::BTreeSet;

/// Tuning knobs of the RCD search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RcdConfig {
    /// Equal-frequency bins per variable (RCD uses coarse discretization).
    pub bins: usize,
    /// Significance level of the G² CI tests.
    pub alpha: f64,
    /// Chunk size of the hierarchical (localized) search.
    pub gamma: usize,
}

impl Default for RcdConfig {
    fn default() -> Self {
        RcdConfig {
            bins: 3,
            alpha: 0.05,
            gamma: 8,
        }
    }
}

/// The RCD localizer.
#[derive(Debug, Clone)]
pub struct RcdLocalizer {
    catalog: MetricCatalog,
    baseline: Dataset,
    config: RcdConfig,
}

/// A variable surviving the PC search, with its marginal dependence on F.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Survivor {
    var: usize,
    p_value: f64,
}

impl RcdLocalizer {
    /// Creates a localizer from a normal-operation dataset.
    ///
    /// # Panics
    ///
    /// Panics if the baseline's metric count disagrees with the catalog.
    pub fn new(baseline: Dataset, catalog: MetricCatalog, config: RcdConfig) -> RcdLocalizer {
        assert_eq!(
            baseline.num_metrics(),
            catalog.len(),
            "baseline shape must match catalog"
        );
        RcdLocalizer {
            catalog,
            baseline,
            config,
        }
    }

    /// Convenience constructor taking only the baseline phase of a training
    /// campaign — RCD uses no interventional data.
    ///
    /// # Errors
    ///
    /// Propagates telemetry errors.
    pub fn from_campaign(
        campaign: &CampaignRun,
        catalog: &MetricCatalog,
        config: RcdConfig,
    ) -> Result<RcdLocalizer> {
        let baseline = campaign.baseline(catalog)?;
        Ok(RcdLocalizer::new(baseline, catalog.clone(), config))
    }

    fn num_vars(&self) -> usize {
        self.baseline.num_services() * self.catalog.len()
    }

    fn var_service(&self, var: usize) -> ServiceId {
        ServiceId::from_index(var / self.catalog.len())
    }

    /// Builds the discretized observation matrix: one label vector per
    /// variable over baseline windows followed by production windows, plus
    /// the F-node labels.
    fn discretized(&self, production: &Dataset) -> Result<(Vec<Vec<usize>>, Vec<usize>)> {
        let metrics = self.catalog.len();
        let mut vars = Vec::with_capacity(self.num_vars());
        for var in 0..self.num_vars() {
            let (s, m) = (var / metrics, var % metrics);
            let svc = ServiceId::from_index(s);
            let mut xs: Vec<f64> = self.baseline.samples(m, svc).to_vec();
            xs.extend_from_slice(production.samples(m, svc));
            let (labels, _) = discretize_equal_frequency(&xs, self.config.bins)?;
            vars.push(labels);
        }
        let b = self.baseline.num_windows();
        let p = production.num_windows();
        let f: Vec<usize> = std::iter::repeat_n(0, b)
            .chain(std::iter::repeat_n(1, p))
            .collect();
        Ok((vars, f))
    }

    /// One localized PC pass over a chunk: order-0 dependence on F, then
    /// order-1 separation attempts within the chunk's survivors.
    fn chunk_pass(
        &self,
        chunk: &[usize],
        vars: &[Vec<usize>],
        f: &[usize],
    ) -> Result<Vec<Survivor>> {
        let alpha = self.config.alpha;
        // Order 0.
        let mut survivors: Vec<Survivor> = Vec::new();
        for &v in chunk {
            let r = g_square_test(&vars[v], f, &[])?;
            if r.dependent_at(alpha) {
                survivors.push(Survivor {
                    var: v,
                    p_value: r.p_value,
                });
            }
        }
        // Order 1: drop v if some other survivor u d-separates it from F.
        // An unpowered conditional test (df = 0 — e.g. conditioning on a
        // deterministic copy of the failure indicator leaves every stratum
        // constant) carries no evidence of separation, so it must not
        // remove an edge; only a *powered* independence verdict does.
        let mut kept = Vec::with_capacity(survivors.len());
        'outer: for &sv in &survivors {
            for &su in &survivors {
                if su.var == sv.var {
                    continue;
                }
                let cond = [vars[su.var].as_slice()];
                let r = g_square_test(&vars[sv.var], f, &cond)?;
                if r.df > 0.0 && !r.dependent_at(alpha) {
                    continue 'outer; // separated: not adjacent to F
                }
            }
            kept.push(sv);
        }
        Ok(kept)
    }

    /// The full hierarchical search; returns surviving variables.
    fn search(&self, production: &Dataset) -> Result<Vec<Survivor>> {
        let (vars, f) = self.discretized(production)?;
        let mut candidates: Vec<usize> = (0..self.num_vars()).collect();
        loop {
            let mut next: Vec<Survivor> = Vec::new();
            for chunk in candidates.chunks(self.config.gamma.max(2)) {
                next.extend(self.chunk_pass(chunk, &vars, &f)?);
            }
            let next_vars: Vec<usize> = next.iter().map(|s| s.var).collect();
            let stabilized =
                next_vars.len() == candidates.len() || next_vars.len() <= self.config.gamma;
            if stabilized {
                // Final global pass over what remains.
                return self.chunk_pass(&next_vars, &vars, &f);
            }
            candidates = next_vars;
        }
    }
}

impl FaultLocalizer for RcdLocalizer {
    fn name(&self) -> &'static str {
        "RCD causal discovery [24]"
    }

    fn localize_run(&self, run: &ProductionRun) -> Result<BTreeSet<ServiceId>> {
        let ds = run.dataset(&self.catalog)?;
        let survivors = self.search(&ds)?;
        if survivors.is_empty() {
            return Ok(BTreeSet::new());
        }
        // Rank services by their strongest surviving variable.
        let n = self.baseline.num_services();
        let mut best_p = vec![f64::INFINITY; n];
        for s in &survivors {
            let svc = self.var_service(s.var).index();
            if s.p_value < best_p[svc] {
                best_p[svc] = s.p_value;
            }
        }
        let min_p = best_p.iter().copied().fold(f64::INFINITY, f64::min);
        Ok(best_p
            .iter()
            .enumerate()
            .filter(|(_, &p)| p <= min_p + 1e-12)
            .map(|(i, _)| ServiceId::from_index(i))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icfl_core::{EvalSuite, RunConfig};

    fn steady(level: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| level + (i % 5) as f64 * 0.02 * level.max(1.0))
            .collect()
    }

    #[test]
    fn f_dependent_variable_survives_the_search() {
        // 2 services × 1 metric; service 1 shifts hard under failure.
        let catalog = MetricCatalog::raw_cpu();
        let baseline = Dataset::new(
            vec!["cpu".into()],
            vec![vec![steady(1.0, 24), steady(2.0, 24)]],
        );
        let rcd = RcdLocalizer::new(baseline, catalog, RcdConfig::default());
        let prod = Dataset::new(
            vec!["cpu".into()],
            vec![vec![steady(1.0, 24), steady(20.0, 24)]],
        );
        let survivors = rcd.search(&prod).unwrap();
        assert!(!survivors.is_empty());
        assert!(survivors
            .iter()
            .all(|s| rcd.var_service(s.var).index() == 1));
    }

    #[test]
    fn no_failure_signal_yields_no_survivors() {
        let catalog = MetricCatalog::raw_cpu();
        let baseline = Dataset::new(
            vec!["cpu".into()],
            vec![vec![steady(1.0, 24), steady(2.0, 24)]],
        );
        let rcd = RcdLocalizer::new(baseline.clone(), catalog, RcdConfig::default());
        let survivors = rcd.search(&baseline).unwrap();
        assert!(
            survivors.is_empty(),
            "identical data should carry no F signal: {survivors:?}"
        );
    }

    #[test]
    fn end_to_end_on_pattern1_finds_plausible_causes() {
        let app = icfl_apps::pattern1();
        let cfg = RunConfig::quick(23);
        let campaign = icfl_core::CampaignRun::execute(&app, &cfg).unwrap();
        let rcd =
            RcdLocalizer::from_campaign(&campaign, &MetricCatalog::raw_all(), RcdConfig::default())
                .unwrap();
        let suite = EvalSuite::execute(&app, campaign.targets(), &RunConfig::quick(29)).unwrap();
        let summary = crate::evaluate_localizer(&rcd, &suite).unwrap();
        // RCD without interventional structure gets *something* right on a
        // trivial chain but is not expected to be perfect.
        assert!(summary.accuracy > 0.0, "{summary}");
    }
}
