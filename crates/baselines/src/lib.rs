//! # icfl-baselines — the comparison methods of the DSN'24 paper
//!
//! Hand-rolled implementations of the techniques the paper measures itself
//! against:
//!
//! * [`ErrorLogLocalizer`] — reference \[23\] (Wang et al., AAAI'22):
//!   interventional causal learning restricted to the **error-log rate**
//!   metric, with a correlation-oriented error-propagation graph. Its
//!   single-metric design is exactly what Table II's "msg rate" columns
//!   isolate;
//! * [`RcdLocalizer`] — reference \[24\] (Ikram et al., NeurIPS'22): RCD,
//!   observational **causal discovery at failure time** via a hierarchical
//!   PC search around an F-node over discretized metrics;
//! * [`PooledGraphLocalizer`] — the Ψ-FCI-style single-causal-world
//!   assumption (§VI-B): all metrics are collapsed into one set of causal
//!   relations, demonstrating the identifiability loss the paper warns
//!   about;
//! * [`AnomalyRanker`] — a purely observational strawman that implicates
//!   the most-shifted service, without any causal structure.
//!
//! All implement [`FaultLocalizer`] and can be scored with
//! [`evaluate_localizer`] on the same [`EvalSuite`] as the proposed method.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error_log;
mod observational;
mod pooled;
mod rcd;

pub use error_log::ErrorLogLocalizer;
pub use observational::AnomalyRanker;
pub use pooled::PooledGraphLocalizer;
pub use rcd::{RcdConfig, RcdLocalizer};

use icfl_core::{CaseResult, EvalSuite, EvalSummary, Result};
use icfl_micro::ServiceId;
use std::collections::BTreeSet;

/// A fault-localization method comparable on the shared evaluation suite.
pub trait FaultLocalizer {
    /// Short method name for report tables.
    fn name(&self) -> &'static str;

    /// Produces the candidate root-cause set for one production run.
    ///
    /// # Errors
    ///
    /// Propagates telemetry/statistics errors from the underlying method.
    fn localize_run(&self, run: &icfl_core::ProductionRun) -> Result<BTreeSet<ServiceId>>;
}

/// Scores a localizer on every case of an evaluation suite.
///
/// # Errors
///
/// Propagates the first failing case's error.
pub fn evaluate_localizer(
    localizer: &dyn FaultLocalizer,
    suite: &EvalSuite,
) -> Result<EvalSummary> {
    let mut cases = Vec::with_capacity(suite.runs.len());
    for run in &suite.runs {
        let candidates = localizer.localize_run(run)?;
        cases.push(CaseResult::from_candidates(
            run.injected,
            candidates,
            suite.num_services(),
        ));
    }
    Ok(EvalSummary::aggregate(cases))
}

#[cfg(test)]
mod tests {
    use super::*;
    use icfl_core::{CampaignRun, RunConfig};

    /// The proposed method and the [23]-style baseline run on the same tiny
    /// app; the proposed method should never lose.
    #[test]
    fn proposed_method_dominates_on_pattern2() {
        let app = icfl_apps::pattern2();
        let cfg = RunConfig::quick(5);
        let campaign = CampaignRun::execute(&app, &cfg).unwrap();
        let model = campaign
            .learn(
                &icfl_telemetry::MetricCatalog::derived_all(),
                RunConfig::default_detector(),
            )
            .unwrap();
        let suite = EvalSuite::execute(&app, campaign.targets(), &RunConfig::quick(55)).unwrap();
        let ours = suite.evaluate(&model).unwrap();

        let error_log = ErrorLogLocalizer::train(&campaign, RunConfig::default_detector()).unwrap();
        let el = evaluate_localizer(&error_log, &suite).unwrap();

        // pattern2's faults on D/H are omission faults: invisible to error
        // logs at the starved service G, so [23] must do worse than the
        // multi-metric method on informativeness or accuracy.
        assert!(ours.accuracy >= el.accuracy, "ours={ours} el={el}");
        assert!(
            ours.accuracy > 0.9,
            "multi-metric method should solve pattern2: {ours}"
        );
    }
}
