//! A purely observational anomaly ranker — no causal structure at all.
//!
//! Implicates the service whose metrics shifted the most (maximum KS
//! statistic across the catalog) relative to the baseline. Serves as the
//! floor every causal method should beat: it conflates symptom magnitude
//! with cause, so a fault whose *victims* scream louder than the culprit is
//! mislocalized.

use crate::FaultLocalizer;
use icfl_core::{ProductionRun, Result};
use icfl_micro::ServiceId;
use icfl_stats::ks_statistic;
use icfl_telemetry::{Dataset, MetricCatalog};
use std::collections::BTreeSet;

/// The observational max-shift ranker.
#[derive(Debug, Clone)]
pub struct AnomalyRanker {
    catalog: MetricCatalog,
    baseline: Dataset,
}

impl AnomalyRanker {
    /// Creates a ranker from a no-fault baseline dataset.
    ///
    /// # Panics
    ///
    /// Panics if `baseline`'s metric count disagrees with `catalog`.
    pub fn new(catalog: MetricCatalog, baseline: Dataset) -> AnomalyRanker {
        assert_eq!(
            baseline.num_metrics(),
            catalog.len(),
            "baseline shape must match catalog"
        );
        AnomalyRanker { catalog, baseline }
    }

    /// The anomaly score of each service on a production dataset:
    /// max over metrics of the KS statistic against the baseline.
    ///
    /// # Errors
    ///
    /// Propagates statistics errors.
    pub fn scores(&self, production: &Dataset) -> Result<Vec<f64>> {
        let n = self.baseline.num_services();
        let mut scores = vec![0.0; n];
        for m in 0..self.catalog.len() {
            for (s, score) in scores.iter_mut().enumerate() {
                let svc = ServiceId::from_index(s);
                let d = ks_statistic(self.baseline.samples(m, svc), production.samples(m, svc))?;
                if d > *score {
                    *score = d;
                }
            }
        }
        Ok(scores)
    }
}

impl FaultLocalizer for AnomalyRanker {
    fn name(&self) -> &'static str {
        "observational max-shift"
    }

    fn localize_run(&self, run: &ProductionRun) -> Result<BTreeSet<ServiceId>> {
        let ds = run.dataset(&self.catalog)?;
        let scores = self.scores(&ds)?;
        let max = scores.iter().copied().fold(0.0f64, f64::max);
        if max <= 0.0 {
            return Ok(BTreeSet::new());
        }
        Ok(scores
            .iter()
            .enumerate()
            .filter(|(_, &v)| (v - max).abs() < 1e-12)
            .map(|(i, _)| ServiceId::from_index(i))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn steady(level: f64) -> Vec<f64> {
        (0..19)
            .map(|i| level + (i % 5) as f64 * 0.01 * level.max(1.0))
            .collect()
    }

    #[test]
    fn scores_rank_the_shifted_service_highest() {
        let catalog = MetricCatalog::raw_cpu();
        let baseline = Dataset::new(
            vec!["cpu".into()],
            vec![vec![steady(1.0), steady(2.0), steady(3.0)]],
        );
        let ranker = AnomalyRanker::new(catalog, baseline);
        let prod = Dataset::new(
            vec!["cpu".into()],
            vec![vec![steady(1.0), steady(9.0), steady(3.05)]],
        );
        let scores = ranker.scores(&prod).unwrap();
        assert!(scores[1] > scores[0]);
        assert!(scores[1] > scores[2]);
    }

    #[test]
    #[should_panic(expected = "shape must match")]
    fn shape_mismatch_panics() {
        let baseline = Dataset::new(
            vec!["a".into(), "b".into()],
            vec![vec![steady(1.0)], vec![steady(1.0)]],
        );
        AnomalyRanker::new(MetricCatalog::raw_cpu(), baseline);
    }
}
