//! Baseline-comparison bench: regenerates the method comparison on
//! CausalBench (quick mode), then benchmarks each method's per-diagnosis
//! latency — the cost an operator pays at incident time.

use criterion::{criterion_group, criterion_main, Criterion};
use icfl_baselines::{
    AnomalyRanker, ErrorLogLocalizer, FaultLocalizer, PooledGraphLocalizer, RcdConfig, RcdLocalizer,
};
use icfl_bench::causalbench_fixture;
use icfl_core::RunConfig;
use icfl_telemetry::MetricCatalog;
use std::hint::black_box;

fn bench_baselines(c: &mut Criterion) {
    // The full comparison table is expensive; the `baselines` experiment
    // binary regenerates it. Here we print a single-app summary and then
    // time the diagnosis paths.
    let (campaign, run) = causalbench_fixture(44);
    let detector = RunConfig::default_detector();

    let proposed = campaign
        .learn(&MetricCatalog::derived_all(), detector)
        .expect("model");
    let error_log = ErrorLogLocalizer::train(&campaign, detector).expect("train [23]");
    let rcd =
        RcdLocalizer::from_campaign(&campaign, &MetricCatalog::raw_all(), RcdConfig::default())
            .expect("train rcd");
    let pooled = PooledGraphLocalizer::train(&campaign, &MetricCatalog::derived_all(), detector)
        .expect("train pooled");
    let ranker = AnomalyRanker::new(
        MetricCatalog::derived_all(),
        campaign
            .baseline(&MetricCatalog::derived_all())
            .expect("baseline"),
    );

    println!("\n=== per-method diagnosis of one CausalBench fault (target: B) ===");
    let ds = run.dataset(proposed.catalog()).expect("dataset");
    let ours = proposed.localize(&ds).expect("localize");
    println!("proposed candidates: {:?}", ours.candidates);
    for method in [&error_log as &dyn FaultLocalizer, &rcd, &pooled, &ranker] {
        let cands = method.localize_run(&run).expect("localize");
        println!("{}: {:?}", method.name(), cands);
    }

    c.bench_function("diagnose/proposed", |b| {
        b.iter(|| proposed.localize(black_box(&ds)).expect("localize"))
    });
    c.bench_function("diagnose/error_log_23", |b| {
        b.iter(|| error_log.localize_run(black_box(&run)).expect("localize"))
    });
    c.bench_function("diagnose/rcd_24", |b| {
        b.iter(|| rcd.localize_run(black_box(&run)).expect("localize"))
    });
    c.bench_function("diagnose/pooled", |b| {
        b.iter(|| pooled.localize_run(black_box(&run)).expect("localize"))
    });
    c.bench_function("diagnose/observational", |b| {
        b.iter(|| ranker.localize_run(black_box(&run)).expect("localize"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_baselines
}
criterion_main!(benches);
