//! Table I bench: regenerates the table (quick mode), then benchmarks the
//! Algorithm-1 learning and Algorithm-2 localization kernels on
//! CausalBench-sized data.

use criterion::{criterion_group, criterion_main, Criterion};
use icfl_bench::causalbench_fixture;
use icfl_core::RunConfig;
use icfl_experiments::{table1, Mode};
use icfl_telemetry::MetricCatalog;
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    println!("\n=== Table I (quick regeneration) ===");
    let t = table1(Mode::Quick, 42).expect("table1");
    println!("{}", t.render());

    let (campaign, run) = causalbench_fixture(42);
    let catalog = MetricCatalog::derived_all();
    let detector = RunConfig::default_detector();
    let baseline = campaign.baseline(&catalog).expect("baseline");
    let faults = campaign.fault_datasets(&catalog).expect("fault datasets");
    let model = campaign.learn(&catalog, detector).expect("model");
    let production = run.dataset(&catalog).expect("production dataset");

    c.bench_function("algorithm1_learn/causalbench", |b| {
        b.iter(|| {
            icfl_core::CausalModel::learn(
                black_box(&catalog),
                detector,
                black_box(&baseline),
                black_box(&faults),
            )
            .expect("learn")
        })
    });
    c.bench_function("algorithm2_localize/causalbench", |b| {
        b.iter(|| model.localize(black_box(&production)).expect("localize"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_table1
}
criterion_main!(benches);
