//! Fig. 2 bench: regenerates the load-confounder boxplots (quick mode) —
//! including the open-loop ablation of DESIGN.md decision 5 — then
//! benchmarks the simulation itself (events/second of the confounder
//! topology under closed-loop load).

use criterion::{criterion_group, criterion_main, Criterion};
use icfl_experiments::{fig2, fig4, Mode};
use icfl_scenario::Scenario;
use icfl_sim::SimTime;
use std::hint::black_box;

fn bench_fig2(c: &mut Criterion) {
    println!("\n=== Fig. 2 (quick regeneration; open-loop rows are the ablation) ===");
    let f = fig2(Mode::Quick, 42).expect("fig2");
    println!("{}", f.render());
    println!("\n=== Fig. 4 (topology + flow validation) ===");
    println!("{}", fig4(42).expect("fig4").render());

    c.bench_function("simulate/fig2_topology_60s_closed_loop", |b| {
        b.iter(|| {
            let app = icfl_apps::fig2_topology();
            let mut scenario = Scenario::builder(&app, 9).build().expect("assemble");
            scenario.run_until(SimTime::from_secs(60));
            black_box(scenario.sim.events_executed())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig2
}
criterion_main!(benches);
