//! Campaign-executor throughput: raw scheduler event rate (events/sec) and
//! end-to-end intervention-campaign rate (runs/sec).
//!
//! `scheduler_events` exercises the event loop alone — periodic re-arming,
//! one-shot scheduling and cancellation — so regressions in the scheduler
//! hot path show up without cluster noise. `campaign_runs` executes the
//! full parallel campaign (baseline + one fault run per target) on the
//! three-service pattern-1 app in quick mode. The `fleet_*` benchmarks
//! scale both axes to fleet-size topologies: `fleet_sim_events/N` drives
//! a loaded N-service mesh simulation, and `fleet_campaign/N` runs a
//! stride-sampled (6-target) quick campaign at 100/300/1000 services.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use icfl_apps::App;
use icfl_core::{CampaignRun, RunConfig};
use icfl_loadgen::{start_load, LoadConfig};
use icfl_micro::Cluster;
use icfl_sim::{Sim, SimDuration, SimTime};
use std::hint::black_box;

const HORIZON: SimTime = SimTime::from_secs(300);

/// Arms a mixed scheduler workload: 64 periodic tickers at co-prime-ish
/// periods plus a self-rescheduling one-shot chain that cancels a decoy
/// event per link.
fn arm(sim: &mut Sim<u64>) {
    for i in 0..64u64 {
        sim.schedule_periodic(
            SimTime::ZERO + SimDuration::from_millis(i + 1),
            SimDuration::from_millis(40 + (i * 7) % 60),
            |_, n: &mut u64| *n += 1,
        );
    }
    fn chain(sim: &mut Sim<u64>, state: &mut u64) {
        *state += 1;
        let decoy = sim.schedule_after(SimDuration::from_secs(3600), |_, _: &mut u64| {});
        sim.cancel(decoy);
        sim.schedule_after(SimDuration::from_millis(5), chain);
    }
    sim.schedule_after(SimDuration::from_millis(1), chain);
}

fn run_workload() -> u64 {
    let mut sim: Sim<u64> = Sim::new(1);
    let mut ticks = 0u64;
    arm(&mut sim);
    sim.run_until(HORIZON, &mut ticks);
    sim.events_executed()
}

fn bench_campaign_throughput(c: &mut Criterion) {
    let events = run_workload();
    println!("scheduler workload executes {events} events");

    let mut group = c.benchmark_group("campaign_throughput");
    group.throughput(Throughput::Elements(events));
    group.bench_function("scheduler_events", |b| b.iter(|| black_box(run_workload())));

    let app = icfl_apps::pattern1();
    let cfg = RunConfig::quick(5);
    let runs = app.fault_targets.len() as u64 + 1;
    group.throughput(Throughput::Elements(runs));
    group.bench_function("campaign_runs", |b| {
        b.iter(|| black_box(CampaignRun::execute(&app, &cfg).expect("campaign")))
    });
    group.finish();
}

/// One loaded 20-simulated-second run of a fleet mesh, returning events
/// executed (the throughput denominator).
fn run_fleet_sim(app: &App, seed: u64) -> u64 {
    let (mut cluster, _) = app.build(seed).expect("build");
    let mut sim = Sim::with_capacity(seed, cluster.pending_events_hint());
    Cluster::start(&mut sim, &mut cluster);
    start_load(
        &mut sim,
        &mut cluster,
        &LoadConfig::closed_loop(app.flows.clone()),
    )
    .expect("load");
    sim.run_until(SimTime::from_secs(20), &mut cluster);
    sim.events_executed()
}

fn fleet_mesh(services: usize) -> App {
    // 5 layers; width = services / 5 (100 -> 5x20, 300 -> 5x60, 1000 -> 5x200).
    icfl_apps::layered_mesh_app(5, services / 5, 2)
}

fn bench_fleet_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_throughput");
    for services in [100usize, 300, 1000] {
        let app = fleet_mesh(services);
        let events = run_fleet_sim(&app, 1);
        group.throughput(Throughput::Elements(events));
        group.bench_function(format!("fleet_sim_events/{services}"), |b| {
            b.iter(|| black_box(run_fleet_sim(&app, 1)))
        });
    }
    for services in [100usize, 300, 1000] {
        let app = fleet_mesh(services);
        let cfg = RunConfig::quick(5).with_max_targets(6);
        group.throughput(Throughput::Elements(7)); // baseline + 6 sampled targets
        group.bench_function(format!("fleet_campaign/{services}"), |b| {
            b.iter(|| black_box(CampaignRun::execute(&app, &cfg).expect("campaign")))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_campaign_throughput, bench_fleet_throughput
}
criterion_main!(benches);
