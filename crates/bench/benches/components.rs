//! Component microbenchmarks: the statistical and simulation kernels
//! everything else is built on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use icfl_sim::{Rng, Sim, SimDuration, SimTime};
use icfl_stats::{g_square_test, ks_test, mann_whitney_u, partial_correlation_test};
use std::hint::black_box;

fn samples(n: usize, seed: u64, offset: f64) -> Vec<f64> {
    let mut rng = Rng::seeded(seed);
    (0..n).map(|_| rng.standard_normal() + offset).collect()
}

fn bench_stats(c: &mut Criterion) {
    let mut group = c.benchmark_group("ks_test");
    for n in [19usize, 100, 1_000, 10_000] {
        let xs = samples(n, 1, 0.0);
        let ys = samples(n, 2, 0.3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| ks_test(black_box(&xs), black_box(&ys)).expect("ks"))
        });
    }
    group.finish();

    let xs = samples(1_000, 3, 0.0);
    let ys = samples(1_000, 4, 0.1);
    c.bench_function("mann_whitney_u/1000", |b| {
        b.iter(|| mann_whitney_u(black_box(&xs), black_box(&ys)).expect("mwu"))
    });

    // G² conditional-independence test on binary data.
    let mut rng = Rng::seeded(5);
    let z: Vec<usize> = (0..2_000).map(|_| (rng.next_u64() % 2) as usize).collect();
    let x: Vec<usize> = z
        .iter()
        .map(|&v| if rng.chance(0.9) { v } else { 1 - v })
        .collect();
    let y: Vec<usize> = z
        .iter()
        .map(|&v| if rng.chance(0.9) { v } else { 1 - v })
        .collect();
    c.bench_function("g_square/2000x_cond1", |b| {
        b.iter(|| g_square_test(black_box(&x), black_box(&y), &[&z]).expect("g2"))
    });

    // Fisher-z partial correlation with a 2-variable conditioning set.
    let cols: Vec<Vec<f64>> = (0..5).map(|i| samples(500, 10 + i, 0.0)).collect();
    c.bench_function("partial_correlation/500x_cond2", |b| {
        b.iter(|| partial_correlation_test(black_box(&cols), 0, 1, &[2, 3]).expect("pcorr"))
    });
}

fn bench_sim(c: &mut Criterion) {
    c.bench_function("scheduler/100k_events", |b| {
        b.iter(|| {
            let mut sim: Sim<u64> = Sim::new(1);
            let mut count = 0u64;
            fn tick(sim: &mut Sim<u64>, w: &mut u64) {
                *w += 1;
                if *w < 100_000 {
                    sim.schedule_after(SimDuration::from_micros(10), tick);
                }
            }
            sim.schedule_at(SimTime::ZERO, tick);
            sim.run_to_completion(200_000, &mut count);
            black_box(count)
        })
    });

    c.bench_function("rng/1m_draws", |b| {
        b.iter(|| {
            let mut rng = Rng::seeded(7);
            let mut acc = 0u64;
            for _ in 0..1_000_000 {
                acc ^= rng.next_u64();
            }
            black_box(acc)
        })
    });

    c.bench_function("simulate/causalbench_60s", |b| {
        b.iter(|| {
            let app = icfl_apps::causalbench();
            let (mut cluster, _) = app.build(11).expect("build");
            let mut sim = Sim::new(11);
            icfl_micro::Cluster::start(&mut sim, &mut cluster);
            icfl_loadgen::start_load(
                &mut sim,
                &mut cluster,
                &icfl_loadgen::LoadConfig::closed_loop(app.flows.clone()),
            )
            .expect("load");
            sim.run_until(SimTime::from_secs(60), &mut cluster);
            black_box(sim.events_executed())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_stats, bench_sim
}
criterion_main!(benches);
