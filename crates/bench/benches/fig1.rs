//! Fig. 1 bench: regenerates the metric-dependent causal worlds (quick
//! mode), then benchmarks causal-set learning on the two patterns.

use criterion::{criterion_group, criterion_main, Criterion};
use icfl_core::{CampaignRun, RunConfig};
use icfl_experiments::{fig1, Mode};
use icfl_telemetry::{MetricCatalog, MetricSpec, RawMetric};
use std::hint::black_box;

fn bench_fig1(c: &mut Criterion) {
    println!("\n=== Fig. 1 / §VI-B (quick regeneration) ===");
    let f = fig1(Mode::Quick, 42).expect("fig1");
    println!("{}", f.render());

    let catalog = MetricCatalog::new(
        "fig1",
        vec![
            MetricSpec::Raw(RawMetric::MsgCount),
            MetricSpec::Raw(RawMetric::RequestsReceived),
        ],
    );
    let detector = RunConfig::default_detector();
    for (name, app) in [
        ("pattern1", icfl_apps::pattern1()),
        ("pattern2", icfl_apps::pattern2()),
    ] {
        let campaign = CampaignRun::execute(&app, &RunConfig::quick(7)).expect("campaign");
        let baseline = campaign.baseline(&catalog).expect("baseline");
        let faults = campaign.fault_datasets(&catalog).expect("faults");
        c.bench_function(&format!("causal_sets/{name}"), |b| {
            b.iter(|| {
                icfl_core::CausalModel::learn(
                    black_box(&catalog),
                    detector,
                    black_box(&baseline),
                    black_box(&faults),
                )
                .expect("learn")
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fig1
}
criterion_main!(benches);
