//! Steady-state streaming-ingester throughput: finalized hopping windows
//! per second of wall-clock while CausalBench serves continuous closed-loop
//! load at 1× and 4×. The measured body is the whole live pipeline — the
//! simulated cluster, the load generator, the per-second counter scrapes,
//! and the incremental window finalization into the ring.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use icfl_online::{IngestConfig, IngesterTap};
use icfl_scenario::Scenario;
use icfl_sim::SimTime;
use icfl_telemetry::{MetricCatalog, WindowConfig};
use std::hint::black_box;

const STREAM_SECS: u64 = 300;

/// Streams `STREAM_SECS` of simulated CausalBench traffic through the
/// ingester at the given load scale, returning windows finalized.
fn stream(replicas: usize) -> u64 {
    let app = icfl_apps::causalbench();
    let tap = IngesterTap::new(
        &MetricCatalog::derived_all(),
        IngestConfig::new(WindowConfig::from_secs(10, 5), 16, SimTime::ZERO),
    );
    let (mut scenario, ingester) = Scenario::builder(&app, 17)
        .replicas(replicas)
        .build_with(tap)
        .expect("assemble");
    let ingester = ingester.expect("attach before start");
    scenario.run_until(SimTime::from_secs(STREAM_SECS));
    ingester.windows_emitted()
}

fn bench_online_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("online_ingest");
    for replicas in [1usize, 4] {
        let windows = stream(replicas);
        group.throughput(Throughput::Elements(windows));
        group.bench_function(format!("windows_{replicas}x"), |b| {
            b.iter(|| black_box(stream(replicas)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_online_ingest
}
criterion_main!(benches);
