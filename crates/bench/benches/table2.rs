//! Table II bench: regenerates the raw-vs-derived metric-catalog table
//! (quick mode), then benchmarks model learning per catalog — the ablation
//! axis of DESIGN.md decision 1 (derived metrics deconfound load).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use icfl_bench::causalbench_fixture;
use icfl_core::RunConfig;
use icfl_experiments::{table2, Mode};
use icfl_telemetry::MetricCatalog;
use std::hint::black_box;

fn bench_table2(c: &mut Criterion) {
    println!("\n=== Table II (quick regeneration) ===");
    let t = table2(Mode::Quick, 42).expect("table2");
    println!("{}", t.render());

    let (campaign, run) = causalbench_fixture(43);
    let detector = RunConfig::default_detector();
    let mut group = c.benchmark_group("learn_per_catalog");
    for catalog in MetricCatalog::table2_catalogs() {
        let baseline = campaign.baseline(&catalog).expect("baseline");
        let faults = campaign.fault_datasets(&catalog).expect("faults");
        group.bench_with_input(
            BenchmarkId::from_parameter(catalog.name()),
            &catalog,
            |b, cat| {
                b.iter(|| {
                    icfl_core::CausalModel::learn(
                        black_box(cat),
                        detector,
                        black_box(&baseline),
                        black_box(&faults),
                    )
                    .expect("learn")
                })
            },
        );
    }
    group.finish();

    // Localization cost also scales with catalog size.
    let mut group = c.benchmark_group("localize_per_catalog");
    for catalog in [MetricCatalog::raw_msg_rate(), MetricCatalog::derived_all()] {
        let model = campaign.learn(&catalog, detector).expect("model");
        let production = run.dataset(&catalog).expect("production");
        group.bench_with_input(
            BenchmarkId::from_parameter(catalog.name()),
            &model,
            |b, m| b.iter(|| m.localize(black_box(&production)).expect("localize")),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_table2
}
criterion_main!(benches);
