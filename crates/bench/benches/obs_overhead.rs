//! Overhead of the `icfl-obs` instrumentation hot paths. These run on
//! every windowing/ingest/executor operation, so they must stay cheap
//! enough to leave on unconditionally (a mutex-guarded map update or a
//! `Vec` push).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_journal(c: &mut Criterion) {
    let reg = icfl_obs::MetricsRegistry::new();
    c.bench_function("obs/counter_add", |b| {
        b.iter(|| reg.counter_add(black_box("icfl_bench_total"), &[("app", "bench")], 1))
    });
    c.bench_function("obs/gauge_max", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v += 1;
            reg.gauge_max(black_box("icfl_bench_peak"), &[], v)
        })
    });
    for n in [0usize, 100, 10_000] {
        for _ in 0..n {
            reg.counter_add("icfl_bench_fill_total", &[("i", &n.to_string())], 1);
        }
    }
    c.bench_function("obs/snapshot_to_prometheus", |b| {
        b.iter(|| black_box(reg.snapshot().to_prometheus()))
    });
}

fn bench_profiler(c: &mut Criterion) {
    c.bench_function("obs/span_open_drop", |b| {
        b.iter(|| drop(icfl_obs::span(black_box("bench-span"))))
    });
    c.bench_function("obs/stat_add", |b| {
        b.iter(|| icfl_obs::stat_add(black_box("bench.stat"), Duration::from_micros(3)))
    });
    icfl_obs::reset();
    for i in 0..10_000u64 {
        let mut s = icfl_obs::span("bench-fill");
        s.arg("i", i);
    }
    let obs = icfl_obs::global();
    c.bench_function("obs/trace_events_10k", |b| {
        b.iter(|| black_box(obs.profiler.trace_events().len()))
    });
    c.bench_function("obs/aggregate_10k", |b| {
        b.iter(|| black_box(obs.profiler.aggregate().len()))
    });
    icfl_obs::reset();
}

criterion_group!(benches, bench_journal, bench_profiler);
criterion_main!(benches);
