//! # icfl-bench — Criterion benches for the ICFL reproduction
//!
//! Each bench target regenerates one of the paper's tables/figures in quick
//! mode (printed before the timed section) and then benchmarks the
//! computational kernels behind it. See `DESIGN.md` for the experiment
//! index and `crates/experiments` for the full-fidelity (`--paper`) runs.

#![forbid(unsafe_code)]

use icfl_core::{CampaignRun, ProductionRun, RunConfig};

/// Executes a quick CausalBench campaign + one production case, shared by
/// several benches so the expensive simulation happens once per process.
pub fn causalbench_fixture(seed: u64) -> (CampaignRun, ProductionRun) {
    let app = icfl_apps::causalbench();
    let cfg = RunConfig::quick(seed);
    let campaign = CampaignRun::execute(&app, &cfg).expect("campaign");
    let target = campaign.targets()[1];
    let run = ProductionRun::execute(&app, target, &RunConfig::quick(seed ^ 0xabcd))
        .expect("production run");
    (campaign, run)
}
