//! Runs every experiment in sequence (the full reproduction).
use icfl_experiments::{
    comparison, fig1, fig2, fig4, maybe_write_profile, report_timing, run_timed, table1, table2,
    CliOptions,
};

fn main() {
    let opts = CliOptions::from_env();
    icfl_obs::info!(
        "running ALL experiments in {} mode (seed {})...",
        opts.mode,
        opts.seed
    );
    let timed = run_timed(|| {
        println!(
            "=== Table I ===\n{}",
            table1(opts.mode, opts.seed).expect("table1").render()
        );
        println!(
            "=== Table II ===\n{}",
            table2(opts.mode, opts.seed).expect("table2").render()
        );
        println!(
            "=== Fig. 1 / §VI-B ===\n{}",
            fig1(opts.mode, opts.seed).expect("fig1").render()
        );
        println!(
            "=== Fig. 2 ===\n{}",
            fig2(opts.mode, opts.seed).expect("fig2").render()
        );
        println!(
            "=== Fig. 4 ===\n{}",
            fig4(opts.seed).expect("fig4").render()
        );
        println!(
            "=== Baselines ===\n{}",
            comparison(opts.mode, opts.seed)
                .expect("baselines")
                .render()
        );
    });
    maybe_write_profile(&opts, "all");
    report_timing("all", &opts, timed.wall);
}
