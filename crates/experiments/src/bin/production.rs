//! Drives the production platform: streaming ingest, incident detection,
//! and live localization over long multi-incident online sessions.
//!
//! Beyond the standard flags, `--ad` switches live detection from KS to
//! Anderson–Darling.
use icfl_experiments::{
    maybe_write_profile, production, report_timing, run_timed, CliOptions, ProductionOptions,
};

fn main() {
    let mut anderson_darling = false;
    let args: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| {
            if a == "--ad" {
                anderson_darling = true;
                false
            } else {
                true
            }
        })
        .collect();
    let opts = match CliOptions::parse(args) {
        Ok(o) => {
            if o.threads > 0 {
                std::env::set_var("ICFL_THREADS", o.threads.to_string());
            }
            if let Some(level) = o.log {
                icfl_obs::logger::set_level(level);
            }
            o
        }
        Err(msg) => {
            eprintln!("{msg} (production also accepts --ad for Anderson-Darling detection)");
            std::process::exit(2);
        }
    };
    let mut popts = ProductionOptions::new(opts.mode, opts.seed);
    popts.threads = opts.threads;
    popts.anderson_darling = anderson_darling;

    icfl_obs::info!(
        "running production sessions in {} mode (seed {}, {} detection)...",
        opts.mode,
        opts.seed,
        if anderson_darling {
            "anderson-darling"
        } else {
            "ks"
        }
    );
    let timed = run_timed(|| production(&popts));
    let report = match timed.result {
        Ok(report) => report,
        Err(e) => {
            icfl_obs::error!("production experiment failed: {e}");
            std::process::exit(1);
        }
    };
    println!("Production platform — online detection and localization");
    println!(
        "({} incidents injected across {} apps; models served from {})\n",
        report.total_episodes(),
        report.apps.len(),
        popts.registry_root.display()
    );
    println!("{}", report.render());
    if opts.json {
        match serde_json::to_string_pretty(&report) {
            Ok(json) => println!("{json}"),
            Err(e) => {
                icfl_obs::error!("failed to serialize the production report: {e}");
                std::process::exit(1);
            }
        }
    }
    maybe_write_profile(&opts, "production");
    report_timing("production", &opts, timed.wall);
}
