//! Chaos campaign against the durable ingest server: an uninterrupted
//! reference run, then the same campaign through a seeded chaos proxy
//! with scheduled mid-flight server kills, scored for byte-equal
//! `/incidents`, zero silent drops, and bounded wall-clock inflation.
//!
//! Tiers: the default campaign (two kills), and `--smoke` (one kill —
//! the CI `chaos-smoke` gate). `--kills N` overrides the schedule.

use icfl_experiments::{
    chaosbench, maybe_write_profile, record_metric_row, report_timing, run_timed,
    ChaosbenchOptions, CliOptions,
};
use std::path::PathBuf;

fn main() {
    // Local flags are stripped before the shared option parser (which
    // rejects unknown arguments).
    let mut smoke = false;
    let mut kills: Option<usize> = None;
    let mut take_kills = false;
    let rest: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| {
            if take_kills {
                kills = a.parse().ok();
                take_kills = false;
                return false;
            }
            match a.as_str() {
                "--smoke" => {
                    smoke = true;
                    false
                }
                "--kills" => {
                    take_kills = true;
                    false
                }
                _ => true,
            }
        })
        .collect();
    if take_kills {
        eprintln!("--kills needs a count");
        std::process::exit(2);
    }
    let opts = match CliOptions::parse(rest) {
        Ok(o) => {
            if o.threads > 0 {
                std::env::set_var("ICFL_THREADS", o.threads.to_string());
            }
            if let Some(level) = o.log {
                icfl_obs::logger::set_level(level);
            }
            o
        }
        Err(msg) => {
            eprintln!("{msg} [--smoke] [--kills N]");
            std::process::exit(2);
        }
    };
    let mut copts = if smoke {
        ChaosbenchOptions::smoke(opts.seed)
    } else {
        ChaosbenchOptions::new(opts.mode, opts.seed)
    };
    if let Some(k) = kills {
        copts.kills = k.max(1);
    }
    let tier_name = if smoke {
        "chaosbench-smoke"
    } else {
        "chaosbench"
    };

    icfl_obs::info!(
        "running {tier_name} in {} mode (seed {}, {} scheduled kills)...",
        copts.mode,
        copts.seed,
        copts.kills
    );
    let timed = run_timed(|| chaosbench(&copts));
    let report = match timed.result {
        Ok(report) => report,
        Err(e) => {
            icfl_obs::error!("chaosbench failed: {e}");
            std::process::exit(1);
        }
    };

    println!("Chaos recovery campaign (seeded proxy faults + scheduled server kills)\n");
    println!("{}", report.render());
    if opts.json {
        match serde_json::to_string_pretty(&report) {
            Ok(json) => println!("{json}"),
            Err(e) => {
                icfl_obs::error!("failed to serialize the chaosbench report: {e}");
                std::process::exit(1);
            }
        }
    }

    // Persist the markdown report (full campaign only — the smoke tier
    // must not overwrite it with a single-kill run) and the metric rows.
    let results_dir = std::env::var_os("ICFL_RESULTS_DIR")
        .map_or_else(|| PathBuf::from("results"), PathBuf::from);
    if !smoke {
        let md = results_dir.join("chaos_recovery.md");
        match std::fs::create_dir_all(&results_dir)
            .and_then(|()| std::fs::write(&md, report.to_markdown(opts.mode, opts.seed)))
        {
            Ok(()) => icfl_obs::info!("wrote {}", md.display()),
            Err(e) => {
                icfl_obs::error!("cannot write {}: {e}", md.display());
                std::process::exit(1);
            }
        }
    }
    for (value, phase) in [
        (report.inflation(), "send_inflation"),
        (report.detect_p99_ms, "detect_p99_ms"),
        (report.restarts as f64, "server_restarts"),
    ] {
        if let Err(e) = record_metric_row(tier_name, &opts, value, phase) {
            icfl_obs::warn!("could not persist {phase}: {e}");
        }
    }
    maybe_write_profile(&opts, tier_name);
    report_timing(tier_name, &opts, timed.wall);
}
