//! Regenerates Table I of the paper.
use icfl_experiments::{maybe_write_profile, report_timing, run_timed, table1, CliOptions};

fn main() {
    let opts = CliOptions::from_env();
    icfl_obs::info!(
        "running Table I in {} mode (seed {})...",
        opts.mode,
        opts.seed
    );
    let timed = run_timed(|| table1(opts.mode, opts.seed).expect("table1 experiment failed"));
    println!("Table I — fault localization accuracy and informativeness");
    println!("(train @1x, derived metrics; paper columns shown for reference)\n");
    println!("{}", timed.result.render());
    if opts.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&timed.result).expect("serialize")
        );
    }
    maybe_write_profile(&opts, "table1");
    report_timing("table1", &opts, timed.wall);
}
