//! Scalability sweep over synthetic topologies.
use icfl_experiments::{scalability, CliOptions};

fn main() {
    let opts = CliOptions::from_env();
    eprintln!("running scalability sweep in {} mode (seed {})...", opts.mode, opts.seed);
    let result = scalability(opts.mode, opts.seed).expect("scalability experiment failed");
    println!("Scalability of Algorithms 1-2 with topology size (derived metrics, 1x load)\n");
    println!("{}", result.render());
    if opts.json {
        println!("{}", serde_json::to_string_pretty(&result).expect("serialize"));
    }
}
