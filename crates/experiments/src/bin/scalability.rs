//! Scalability sweep over synthetic topologies.
use icfl_experiments::{maybe_write_profile, report_timing, run_timed, scalability, CliOptions};

fn main() {
    let opts = CliOptions::from_env();
    icfl_obs::info!(
        "running scalability sweep in {} mode (seed {})...",
        opts.mode,
        opts.seed
    );
    let timed =
        run_timed(|| scalability(opts.mode, opts.seed).expect("scalability experiment failed"));
    println!("Scalability of Algorithms 1-2 with topology size (derived metrics, 1x load)\n");
    println!("{}", timed.result.render());
    if opts.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&timed.result).expect("serialize")
        );
    }
    maybe_write_profile(&opts, "scalability");
    report_timing("scalability", &opts, timed.wall);
}
