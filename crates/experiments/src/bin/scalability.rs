//! Scalability sweep over synthetic topologies.
//!
//! Tiers: the default sweep (up to 64 services), `--fleet` (100–1000
//! services with stride-sampled campaign targets), and `--fleet-smoke`
//! (one 100-service mesh — the CI gate).
use icfl_experiments::{
    maybe_write_profile, report_timing, run_timed, scalability, scalability_fleet,
    scalability_fleet_smoke, CliOptions,
};

#[derive(PartialEq)]
enum Tier {
    Base,
    Fleet,
    FleetSmoke,
}

fn main() {
    // Tier flags are local to this binary; strip them before the shared
    // option parser (which rejects unknown arguments).
    let mut tier = Tier::Base;
    let rest: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| match a.as_str() {
            "--fleet" => {
                tier = Tier::Fleet;
                false
            }
            "--fleet-smoke" => {
                tier = Tier::FleetSmoke;
                false
            }
            _ => true,
        })
        .collect();
    let opts = match CliOptions::parse(rest) {
        Ok(o) => {
            if o.threads > 0 {
                std::env::set_var("ICFL_THREADS", o.threads.to_string());
            }
            if let Some(level) = o.log {
                icfl_obs::logger::set_level(level);
            }
            o
        }
        Err(msg) => {
            eprintln!("{msg} [--fleet|--fleet-smoke]");
            std::process::exit(2);
        }
    };
    let (tier_name, header) = match tier {
        Tier::Base => ("scalability", "topology size"),
        Tier::Fleet => ("scalability-fleet", "fleet size (100-1000 services)"),
        Tier::FleetSmoke => ("scalability-fleet-smoke", "fleet smoke (100 services)"),
    };
    icfl_obs::info!(
        "running {} sweep in {} mode (seed {})...",
        tier_name,
        opts.mode,
        opts.seed
    );
    let timed = run_timed(|| {
        match tier {
            Tier::Base => scalability(opts.mode, opts.seed),
            Tier::Fleet => scalability_fleet(opts.mode, opts.seed),
            Tier::FleetSmoke => scalability_fleet_smoke(opts.seed),
        }
        .expect("scalability experiment failed")
    });
    println!("Scalability of Algorithms 1-2 with {header} (derived metrics, 1x load)\n");
    println!("{}", timed.result.render());
    if opts.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&timed.result).expect("serialize")
        );
    }
    maybe_write_profile(&opts, tier_name);
    report_timing(tier_name, &opts, timed.wall);
}
