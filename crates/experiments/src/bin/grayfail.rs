//! Instance-granularity localization: gray replica failures and
//! overload-triggered cascades under bursty open-loop traffic.
//!
//! Tiers: the default sweep (gray at two fan-outs + cascade) and
//! `--smoke` (one gray + one cascade scenario — the CI gate).
use icfl_experiments::{
    grayfail, grayfail_smoke, maybe_write_profile, record_metric_row, report_timing, run_timed,
    CliOptions,
};

fn main() {
    // The tier flag is local to this binary; strip it before the shared
    // option parser (which rejects unknown arguments).
    let mut smoke = false;
    let rest: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| {
            if a == "--smoke" {
                smoke = true;
                false
            } else {
                true
            }
        })
        .collect();
    let opts = match CliOptions::parse(rest) {
        Ok(o) => {
            if o.threads > 0 {
                std::env::set_var("ICFL_THREADS", o.threads.to_string());
            }
            if let Some(level) = o.log {
                icfl_obs::logger::set_level(level);
            }
            o
        }
        Err(msg) => {
            eprintln!("{msg} [--smoke]");
            std::process::exit(2);
        }
    };
    let tier_name = if smoke { "gray-smoke" } else { "grayfail" };
    icfl_obs::info!(
        "running {} in {} mode (seed {})...",
        tier_name,
        opts.mode,
        opts.seed
    );
    let timed = run_timed(|| {
        if smoke {
            grayfail_smoke(opts.seed)
        } else {
            grayfail(opts.mode, opts.seed)
        }
        .expect("grayfail experiment failed")
    });
    println!("Instance-granularity localization: gray replicas and overload cascades\n");
    println!("{}", timed.result.render());
    if opts.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&timed.result).expect("serialize")
        );
    }
    // Accuracy rows ride along in timings.csv next to the wall-clock rows:
    // the gray scenarios' instance top-1 and the cascade scenarios' top-1.
    for row in &timed.result.rows {
        let phase = if row.scenario.starts_with("cascade") {
            "cascade_top1"
        } else {
            "gray_instance_acc"
        };
        if let Err(e) = record_metric_row(tier_name, &opts, row.instance_top1, phase) {
            icfl_obs::warn!("{tier_name}: could not persist {phase}: {e}");
        }
    }
    maybe_write_profile(&opts, tier_name);
    report_timing(tier_name, &opts, timed.wall);
}
