//! Signature-confusability analysis validated against the 4x evaluation.
use icfl_experiments::{confusability, maybe_write_profile, CliOptions};

fn main() {
    let opts = CliOptions::from_env();
    icfl_obs::info!(
        "running confusability analysis in {} mode (seed {})...",
        opts.mode,
        opts.seed
    );
    let result = confusability(opts.mode, opts.seed).expect("confusability experiment failed");
    println!("Causal-signature confusability (top pairs per app)\n");
    println!("{}", result.render());
    if opts.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&result).expect("serialize")
        );
    }
    maybe_write_profile(&opts, "confusability");
}
