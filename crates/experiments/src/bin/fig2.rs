//! Regenerates Fig. 2 (load as an intervention-dependent confounder).
use icfl_experiments::{fig2, maybe_write_profile, CliOptions};

fn main() {
    let opts = CliOptions::from_env();
    icfl_obs::info!(
        "running Fig. 2 in {} mode (seed {})...",
        opts.mode,
        opts.seed
    );
    let result = fig2(opts.mode, opts.seed).expect("fig2 experiment failed");
    println!("Fig. 2 — request-rate boxplots under faults (external load fixed)\n");
    println!("{}", result.render());
    if opts.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&result).expect("serialize")
        );
    }
    maybe_write_profile(&opts, "fig2");
}
