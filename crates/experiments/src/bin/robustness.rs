//! Sweeps degraded-telemetry conditions (scrape drops, jitter,
//! duplicates, counter resets) over online sessions and records the
//! detection/localization decay curve, plus a fault-free gaps-only arm
//! that must produce zero false alarms.

use icfl_experiments::{report_timing, robustness, run_timed, CliOptions, RobustnessOptions};
use std::path::PathBuf;

fn main() {
    let opts = CliOptions::from_env();
    let mut ropts = RobustnessOptions::new(opts.mode, opts.seed);
    ropts.threads = opts.threads;

    eprintln!(
        "running robustness grid in {} mode (seed {})...",
        opts.mode, opts.seed
    );
    let timed = run_timed(|| robustness(&ropts));
    let report = match timed.result {
        Ok(report) => report,
        Err(e) => {
            eprintln!("robustness experiment failed: {e}");
            std::process::exit(1);
        }
    };

    println!("Robustness under degraded telemetry");
    println!(
        "(drop rates {:?}, reset prob {} per scrape)\n",
        icfl_experiments::DROP_RATES,
        icfl_experiments::RESET_PROB
    );
    println!("{}", report.render());
    if opts.json {
        match serde_json::to_string_pretty(&report) {
            Ok(json) => println!("{json}"),
            Err(e) => {
                eprintln!("failed to serialize the robustness report: {e}");
                std::process::exit(1);
            }
        }
    }

    let results_dir = std::env::var_os("ICFL_RESULTS_DIR")
        .map_or_else(|| PathBuf::from("results"), PathBuf::from);
    if let Err(e) = std::fs::create_dir_all(&results_dir) {
        eprintln!("cannot create {}: {e}", results_dir.display());
        std::process::exit(1);
    }
    let txt = results_dir.join(format!("robustness_{}.txt", opts.mode));
    let csv = results_dir.join(format!("robustness_{}.csv", opts.mode));
    if let Err(e) = std::fs::write(&txt, report.render()) {
        eprintln!("cannot write {}: {e}", txt.display());
        std::process::exit(1);
    }
    if let Err(e) = std::fs::write(&csv, report.to_csv()) {
        eprintln!("cannot write {}: {e}", csv.display());
        std::process::exit(1);
    }
    eprintln!("wrote {} and {}", txt.display(), csv.display());
    report_timing("robustness", &opts, timed.wall);

    // The headline robustness claim is enforced, not just recorded:
    // telemetry gaps alone must never read as an incident.
    if report.gaps_only_false_alarms() > 0 {
        eprintln!(
            "FAIL: gaps-only arm raised {} false alarm(s) — missing telemetry was treated as anomalous",
            report.gaps_only_false_alarms()
        );
        std::process::exit(1);
    }
}
