//! Sweeps degraded-telemetry conditions (scrape drops, jitter,
//! duplicates, counter resets) over online sessions and records the
//! detection/localization decay curve, plus a fault-free gaps-only arm
//! that must produce zero false alarms.

use icfl_experiments::{
    maybe_write_profile, report_timing, robustness, run_timed, CliOptions, RobustnessOptions,
};
use std::path::PathBuf;

fn main() {
    let opts = CliOptions::from_env();
    let mut ropts = RobustnessOptions::new(opts.mode, opts.seed);
    ropts.threads = opts.threads;

    icfl_obs::info!(
        "running robustness grid in {} mode (seed {})...",
        opts.mode,
        opts.seed
    );
    let timed = run_timed(|| robustness(&ropts));
    let report = match timed.result {
        Ok(report) => report,
        Err(e) => {
            icfl_obs::error!("robustness experiment failed: {e}");
            std::process::exit(1);
        }
    };

    println!("Robustness under degraded telemetry");
    println!(
        "(drop rates {:?}, reset prob {} per scrape)\n",
        icfl_experiments::DROP_RATES,
        icfl_experiments::RESET_PROB
    );
    println!("{}", report.render());
    if opts.json {
        match serde_json::to_string_pretty(&report) {
            Ok(json) => println!("{json}"),
            Err(e) => {
                icfl_obs::error!("failed to serialize the robustness report: {e}");
                std::process::exit(1);
            }
        }
    }

    let results_dir = std::env::var_os("ICFL_RESULTS_DIR")
        .map_or_else(|| PathBuf::from("results"), PathBuf::from);
    if let Err(e) = std::fs::create_dir_all(&results_dir) {
        icfl_obs::error!("cannot create {}: {e}", results_dir.display());
        std::process::exit(1);
    }
    let txt = results_dir.join(format!("robustness_{}.txt", opts.mode));
    let csv = results_dir.join(format!("robustness_{}.csv", opts.mode));
    if let Err(e) = std::fs::write(&txt, report.render()) {
        icfl_obs::error!("cannot write {}: {e}", txt.display());
        std::process::exit(1);
    }
    if let Err(e) = std::fs::write(&csv, report.to_csv()) {
        icfl_obs::error!("cannot write {}: {e}", csv.display());
        std::process::exit(1);
    }
    icfl_obs::info!("wrote {} and {}", txt.display(), csv.display());
    maybe_write_profile(&opts, "robustness");
    report_timing("robustness", &opts, timed.wall);

    // The headline robustness claim is enforced, not just recorded:
    // telemetry gaps alone must never read as an incident.
    if report.gaps_only_false_alarms() > 0 {
        icfl_obs::error!(
            "FAIL: gaps-only arm raised {} false alarm(s) — missing telemetry was treated as anomalous",
            report.gaps_only_false_alarms()
        );
        std::process::exit(1);
    }
}
