//! Regenerates Fig. 1 (+ the §VI-B causal-world example).
use icfl_experiments::{fig1, maybe_write_profile, CliOptions};

fn main() {
    let opts = CliOptions::from_env();
    icfl_obs::info!(
        "running Fig. 1 in {} mode (seed {})...",
        opts.mode,
        opts.seed
    );
    let result = fig1(opts.mode, opts.seed).expect("fig1 experiment failed");
    println!("Fig. 1 — causal relations depend on the observed metric\n");
    println!("{}", result.render());
    if opts.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&result).expect("serialize")
        );
    }
    maybe_write_profile(&opts, "fig1");
}
