//! Regenerates Table II of the paper.
use icfl_experiments::{maybe_write_profile, report_timing, run_timed, table2, CliOptions};

fn main() {
    let opts = CliOptions::from_env();
    icfl_obs::info!(
        "running Table II in {} mode (seed {})...",
        opts.mode,
        opts.seed
    );
    let timed = run_timed(|| table2(opts.mode, opts.seed).expect("table2 experiment failed"));
    println!("Table II — informativeness by metric catalog");
    println!("(train @1x, test @4x; raw vs derived x msg/cpu/all)\n");
    println!("{}", timed.result.render());
    if opts.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&timed.result).expect("serialize")
        );
    }
    maybe_write_profile(&opts, "table2");
    report_timing("table2", &opts, timed.wall);
}
