//! Regenerates Table II of the paper.
use icfl_experiments::{table2, CliOptions};

fn main() {
    let opts = CliOptions::from_env();
    eprintln!("running Table II in {} mode (seed {})...", opts.mode, opts.seed);
    let result = table2(opts.mode, opts.seed).expect("table2 experiment failed");
    println!("Table II — informativeness by metric catalog");
    println!("(train @1x, test @4x; raw vs derived x msg/cpu/all)\n");
    println!("{}", result.render());
    if opts.json {
        println!("{}", serde_json::to_string_pretty(&result).expect("serialize"));
    }
}
