//! Profiles the pipeline end to end: the Table II offline workload
//! (campaign → windowing → learn → localize) plus the streaming
//! production platform (online sessions), then renders the per-phase
//! breakdown and the full `icfl-obs` artifact set (Chrome trace,
//! Prometheus-style journal snapshot, run manifests).
//!
//! Artifacts land in `--profile DIR` when given, else in the results
//! directory (`ICFL_RESULTS_DIR` or `results/`), with the mode as the
//! stem: `profile_quick.txt`, `quick_trace.json`, `quick_metrics.prom`, …
use icfl_experiments::{
    production, profile_report, render_profile_text, report_timing, run_timed, table2,
    write_profile_artifacts, CliOptions, ProductionOptions,
};

fn main() {
    let opts = CliOptions::from_env();
    icfl_obs::info!(
        "profiling the pipeline in {} mode (seed {})...",
        opts.mode,
        opts.seed
    );
    let registry =
        std::env::temp_dir().join(format!("icfl-profile-registry-{}", std::process::id()));
    let timed = run_timed(|| {
        table2(opts.mode, opts.seed).expect("offline workload failed");
        let prod = ProductionOptions::new(opts.mode, opts.seed).with_registry_root(&registry);
        production(&prod).expect("online workload failed");
    });
    std::fs::remove_dir_all(&registry).ok();

    let report = profile_report();
    println!("Pipeline profile — offline campaign + online sessions\n");
    println!("{}", render_profile_text(&report));
    if opts.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("serialize")
        );
    }

    let dir = opts.profile.clone().unwrap_or_else(|| {
        std::env::var_os("ICFL_RESULTS_DIR").map_or_else(
            || std::path::PathBuf::from("results"),
            std::path::PathBuf::from,
        )
    });
    match write_profile_artifacts(&dir, &opts.mode.to_string()) {
        Ok(paths) => {
            for p in paths {
                icfl_obs::info!("profile: wrote {}", p.display());
            }
        }
        Err(e) => icfl_obs::error!("profile: could not write artifacts: {e}"),
    }
    report_timing("profile", &opts, timed.wall);
}
