//! The forensics gate binary: every confirmed incident must carry a
//! complete, byte-deterministic evidence chain.
//!
//! Trains quick models, runs scheduled-outage sessions through the
//! forensic session API, and fails (exit 1) if any chain is missing,
//! schema-invalid, mis-accounted (contribution deltas vs Algorithm-2
//! scores), or not byte-identical across worker-thread counts and a
//! feed replay with a mid-stream checkpoint/restore.
//!
//! Tiers: the default full run, and `--smoke` (pattern1 only — the CI
//! gate).

use icfl_experiments::{
    forensics, maybe_write_profile, record_metric_row, report_timing, run_timed, CliOptions,
    ForensicsOptions,
};

fn main() {
    // Local flags are stripped before the shared option parser (which
    // rejects unknown arguments).
    let mut smoke = false;
    let rest: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| {
            if a == "--smoke" {
                smoke = true;
                false
            } else {
                true
            }
        })
        .collect();
    let opts = match CliOptions::parse(rest) {
        Ok(o) => {
            if o.threads > 0 {
                std::env::set_var("ICFL_THREADS", o.threads.to_string());
            }
            if let Some(level) = o.log {
                icfl_obs::logger::set_level(level);
            }
            o
        }
        Err(msg) => {
            eprintln!("{msg} [--smoke]");
            std::process::exit(2);
        }
    };
    let fopts = if smoke {
        ForensicsOptions::smoke(opts.seed)
    } else {
        ForensicsOptions::new(opts.mode, opts.seed)
    };
    let tier_name = if smoke {
        "forensics-smoke"
    } else {
        "forensics"
    };

    icfl_obs::info!(
        "running {tier_name} gate in {} mode (seed {})...",
        fopts.mode,
        fopts.seed
    );
    let timed = run_timed(|| forensics(&fopts));
    let report = match timed.result {
        Ok(report) => report,
        Err(e) => {
            icfl_obs::error!("forensics gate failed: {e}");
            std::process::exit(1);
        }
    };

    println!("Evidence-chain forensics gate (thread + replay byte-determinism)\n");
    println!("{}", report.render());
    if opts.json {
        match serde_json::to_string_pretty(&report) {
            Ok(json) => println!("{json}"),
            Err(e) => {
                icfl_obs::error!("failed to serialize the forensics report: {e}");
                std::process::exit(1);
            }
        }
    }

    for row in &report.rows {
        for (value, phase) in [
            (row.chains as f64, format!("chains@{}", row.app)),
            (
                row.breakdowns_checked as f64,
                format!("breakdowns@{}", row.app),
            ),
        ] {
            if let Err(e) = record_metric_row(tier_name, &opts, value, &phase) {
                icfl_obs::warn!("could not persist {phase}: {e}");
            }
        }
    }
    maybe_write_profile(&opts, tier_name);
    report_timing(tier_name, &opts, timed.wall);
}
