//! Ablation sweep over the reproduction's design choices.
use icfl_experiments::{ablations, maybe_write_profile, CliOptions};

fn main() {
    let opts = CliOptions::from_env();
    icfl_obs::info!(
        "running ablations in {} mode (seed {})...",
        opts.mode,
        opts.seed
    );
    let result = ablations(opts.mode, opts.seed).expect("ablations experiment failed");
    println!("Ablations on CausalBench (train @1x, service-unavailable campaign)\n");
    println!("{}", result.render());
    if opts.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&result).expect("serialize")
        );
    }
    maybe_write_profile(&opts, "ablations");
}
