//! Regenerates Fig. 4 (CausalBench topology) with runtime flow validation.
use icfl_experiments::{fig4, maybe_write_profile, CliOptions};

fn main() {
    let opts = CliOptions::from_env();
    icfl_obs::info!("running Fig. 4 (seed {})...", opts.seed);
    let result = fig4(opts.seed).expect("fig4 experiment failed");
    println!("{}", result.render());
    if opts.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&result).expect("serialize")
        );
    }
    maybe_write_profile(&opts, "fig4");
}
