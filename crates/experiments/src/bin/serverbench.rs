//! Sweeps the networked ingest server (loopback) at 1×/4×/16× tenant
//! concurrency: trains fig2 + causalbench models into the registry,
//! records their scheduled-outage traces, replays them through the
//! load-generator core, and records throughput and detection-latency
//! rows next to the wall-clock timings.
//!
//! Tiers: the default full sweep, and `--smoke` (the 1× point — the CI
//! gate). `--emit-trace DIR` additionally saves the recorded traces as
//! JSONL for the two-terminal quick-start.

use icfl_experiments::{
    maybe_write_profile, record_metric_row, report_timing, run_timed, serverbench, CliOptions,
    ServerbenchOptions,
};
use std::path::PathBuf;

fn main() {
    // Local flags are stripped before the shared option parser (which
    // rejects unknown arguments).
    let mut smoke = false;
    let mut emit_trace: Option<PathBuf> = None;
    let mut take_dir = false;
    let rest: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| {
            if take_dir {
                emit_trace = Some(PathBuf::from(a));
                take_dir = false;
                return false;
            }
            match a.as_str() {
                "--smoke" => {
                    smoke = true;
                    false
                }
                "--emit-trace" => {
                    take_dir = true;
                    false
                }
                _ => true,
            }
        })
        .collect();
    if take_dir {
        eprintln!("--emit-trace needs a directory");
        std::process::exit(2);
    }
    let opts = match CliOptions::parse(rest) {
        Ok(o) => {
            if o.threads > 0 {
                std::env::set_var("ICFL_THREADS", o.threads.to_string());
            }
            if let Some(level) = o.log {
                icfl_obs::logger::set_level(level);
            }
            o
        }
        Err(msg) => {
            eprintln!("{msg} [--smoke] [--emit-trace DIR]");
            std::process::exit(2);
        }
    };
    let mut sopts = if smoke {
        ServerbenchOptions::smoke(opts.seed)
    } else {
        ServerbenchOptions::new(opts.mode, opts.seed)
    };
    sopts.emit_trace = emit_trace;
    let tier_name = if smoke {
        "serverbench-smoke"
    } else {
        "serverbench"
    };

    icfl_obs::info!(
        "running {tier_name} sweep in {} mode (seed {}, scales {:?})...",
        sopts.mode,
        sopts.seed,
        sopts.scales
    );
    let timed = run_timed(|| serverbench(&sopts));
    let report = match timed.result {
        Ok(report) => report,
        Err(e) => {
            icfl_obs::error!("serverbench failed: {e}");
            std::process::exit(1);
        }
    };

    println!(
        "Ingest server under load (loopback, bulk batches, {STREAMS}x streams per scale)\n",
        STREAMS = icfl_experiments::STREAMS_PER_SCALE
    );
    println!("{}", report.render());
    if opts.json {
        match serde_json::to_string_pretty(&report) {
            Ok(json) => println!("{json}"),
            Err(e) => {
                icfl_obs::error!("failed to serialize the serverbench report: {e}");
                std::process::exit(1);
            }
        }
    }

    // Persist the markdown report (full sweep only — the smoke tier must
    // not overwrite it with a single point) and the derived metric rows.
    let results_dir = std::env::var_os("ICFL_RESULTS_DIR")
        .map_or_else(|| PathBuf::from("results"), PathBuf::from);
    if !smoke {
        let md = results_dir.join("server_load.md");
        match std::fs::create_dir_all(&results_dir)
            .and_then(|()| std::fs::write(&md, report.to_markdown(opts.mode, opts.seed)))
        {
            Ok(()) => icfl_obs::info!("wrote {}", md.display()),
            Err(e) => {
                icfl_obs::error!("cannot write {}: {e}", md.display());
                std::process::exit(1);
            }
        }
    }
    for row in &report.rows {
        for (value, phase) in [
            (
                row.scrapes_per_sec,
                format!("scrapes_per_sec@{}x", row.scale),
            ),
            (row.detect_p99_ms, format!("detect_p99_ms@{}x", row.scale)),
        ] {
            if let Err(e) = record_metric_row(tier_name, &opts, value, &phase) {
                icfl_obs::warn!("could not persist {phase}: {e}");
            }
        }
    }
    maybe_write_profile(&opts, tier_name);
    report_timing(tier_name, &opts, timed.wall);
}
