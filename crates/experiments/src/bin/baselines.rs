//! Baseline comparison: the proposed method vs \[23\], \[24\], pooled, observational.
use icfl_experiments::{comparison, maybe_write_profile, report_timing, run_timed, CliOptions};

fn main() {
    let opts = CliOptions::from_env();
    icfl_obs::info!(
        "running baseline comparison in {} mode (seed {})...",
        opts.mode,
        opts.seed
    );
    let timed =
        run_timed(|| comparison(opts.mode, opts.seed).expect("comparison experiment failed"));
    println!("Baseline comparison — accuracy and informativeness\n");
    println!("{}", timed.result.render());
    if opts.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&timed.result).expect("serialize")
        );
    }
    maybe_write_profile(&opts, "baselines");
    report_timing("baselines", &opts, timed.wall);
}
