//! Baseline comparison: the proposed method vs \[23\], \[24\], pooled, observational.
use icfl_experiments::{comparison, CliOptions};

fn main() {
    let opts = CliOptions::from_env();
    eprintln!("running baseline comparison in {} mode (seed {})...", opts.mode, opts.seed);
    let result = comparison(opts.mode, opts.seed).expect("comparison experiment failed");
    println!("Baseline comparison — accuracy and informativeness\n");
    println!("{}", result.render());
    if opts.json {
        println!("{}", serde_json::to_string_pretty(&result).expect("serialize"));
    }
}
