//! Baseline comparison: the proposed method vs \[23\], \[24\], pooled, observational.
use icfl_experiments::{comparison, report_timing, run_timed, CliOptions};

fn main() {
    let opts = CliOptions::from_env();
    eprintln!(
        "running baseline comparison in {} mode (seed {})...",
        opts.mode, opts.seed
    );
    let timed =
        run_timed(|| comparison(opts.mode, opts.seed).expect("comparison experiment failed"));
    println!("Baseline comparison — accuracy and informativeness\n");
    println!("{}", timed.result.render());
    if opts.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&timed.result).expect("serialize")
        );
    }
    report_timing("baselines", &opts, timed.wall);
}
