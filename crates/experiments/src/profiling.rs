//! Profiling artifact rendering: per-phase breakdowns, Chrome traces, and
//! journal snapshots for any experiment run.
//!
//! Every experiment binary accepts `--profile <dir>` and, after its
//! workload, dumps the global `icfl-obs` collector here:
//!
//! | Artifact | Contents |
//! |---|---|
//! | `profile_<stem>.txt` | per-phase wall-clock table + latency accumulators |
//! | `profile_<stem>.json` | the same breakdown, machine-readable |
//! | `<stem>_trace.json` | Chrome-trace/Perfetto timeline of every span |
//! | `<stem>_metrics.prom` | deterministic journal, Prometheus exposition |
//! | `<stem>_metrics.jsonl` | deterministic journal, one JSON sample per line |
//! | `<stem>_manifests.jsonl` | run manifests recorded by the scenario builder |
//!
//! The `.prom`/`.jsonl`/manifest files are deterministic (byte-identical
//! across worker-thread counts); the `.txt`/`.json`/trace files measure
//! the host machine and are diagnostics only.

use crate::mode::CliOptions;
use crate::render::TextTable;
use icfl_obs::{PhaseAggregate, StatSummary, TraceEvent};
use serde::Serialize;
use std::path::{Path, PathBuf};

/// Machine-readable form of the per-phase profile
/// (`profile_<stem>.json`).
#[derive(Debug, Clone, Serialize)]
pub struct ProfileReport {
    /// Per-name span/stat rows, sorted by descending total time.
    pub phases: Vec<PhaseAggregate>,
    /// High-frequency latency accumulators by name.
    pub stats: Vec<StatRow>,
}

/// One named latency accumulator in a [`ProfileReport`].
#[derive(Debug, Clone, Serialize)]
pub struct StatRow {
    /// Accumulator name (e.g. `online.scrape`).
    pub name: String,
    /// Count/total/max of the recorded samples.
    pub summary: StatSummary,
}

/// Builds the profile report from the global collector's current state.
pub fn profile_report() -> ProfileReport {
    let obs = icfl_obs::global();
    ProfileReport {
        phases: obs.profiler.aggregate(),
        stats: obs
            .profiler
            .stats()
            .into_iter()
            .map(|(name, summary)| StatRow { name, summary })
            .collect(),
    }
}

/// Renders the per-phase breakdown as an aligned text table.
pub fn render_profile_text(report: &ProfileReport) -> String {
    let mut t = TextTable::new(vec!["Phase", "Calls", "Total (s)", "Max (s)"]);
    for row in &report.phases {
        t.row(vec![
            row.name.clone(),
            row.calls.to_string(),
            format!("{:.3}", row.total_secs),
            format!("{:.3}", row.max_secs),
        ]);
    }
    let mut out = String::from("Per-phase wall-clock profile\n\n");
    out.push_str(&t.render());
    if !report.stats.is_empty() {
        let mut s = TextTable::new(vec!["Accumulator", "Samples", "Total (ms)", "Max (ms)"]);
        for row in &report.stats {
            s.row(vec![
                row.name.clone(),
                row.summary.count.to_string(),
                format!("{:.3}", row.summary.total_us as f64 / 1e3),
                format!("{:.3}", row.summary.max_us as f64 / 1e3),
            ]);
        }
        out.push_str("\nLatency accumulators\n\n");
        out.push_str(&s.render());
    }
    out
}

/// Writes the full artifact set (see the module table) for the global
/// collector's current state into `dir`, returning the paths written.
///
/// # Errors
///
/// Propagates filesystem and serialization errors.
pub fn write_profile_artifacts(dir: &Path, stem: &str) -> std::io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let obs = icfl_obs::global();
    let report = profile_report();
    let json = serde_json::to_string_pretty(&report)
        .map_err(|e| std::io::Error::other(format!("profile report serialization: {e}")))?;
    let trace = icfl_obs::trace::chrome_trace_json(&obs.profiler.trace_events());
    let snap = obs.metrics.snapshot();
    let manifests = icfl_obs::manifest::manifests_jsonl(&obs.manifests());
    let files = [
        (format!("profile_{stem}.txt"), render_profile_text(&report)),
        (format!("profile_{stem}.json"), json),
        (format!("{stem}_trace.json"), trace),
        (format!("{stem}_metrics.prom"), snap.to_prometheus()),
        (format!("{stem}_metrics.jsonl"), snap.to_jsonl()),
        (format!("{stem}_manifests.jsonl"), manifests),
    ];
    let mut written = Vec::with_capacity(files.len());
    for (name, body) in files {
        let path = dir.join(name);
        std::fs::write(&path, body)?;
        written.push(path);
    }
    Ok(written)
}

/// Honors a binary's `--profile <dir>` flag: writes the artifact set when
/// the flag was given, logging the paths (or a warning on failure —
/// profiling never fails the experiment).
pub fn maybe_write_profile(opts: &CliOptions, stem: &str) {
    let Some(dir) = &opts.profile else {
        return;
    };
    match write_profile_artifacts(dir, stem) {
        Ok(paths) => {
            for p in paths {
                icfl_obs::info!("{stem}: profile artifact {}", p.display());
            }
        }
        Err(e) => icfl_obs::warn!("{stem}: could not write profile artifacts: {e}"),
    }
}

/// Converts `icfl-micro` request spans to Chrome-trace events on the
/// *simulated* clock (`ts` is simulation microseconds).
///
/// Each request gets its own thread lane (`tid` = request id) inside the
/// service's process lane (`pid` = service index + 1), so concurrent
/// requests occupying one service never partially overlap in a lane and
/// the export always passes
/// [`validate_chrome_trace`](icfl_obs::trace::validate_chrome_trace).
/// `service_names` maps service index → display name; missing entries
/// fall back to `svc<index>`.
pub fn micro_spans_to_trace(
    spans: &[icfl_micro::Span],
    service_names: &[String],
) -> Vec<TraceEvent> {
    spans
        .iter()
        .map(|s| {
            let idx = s.service.index();
            let name = service_names
                .get(idx)
                .cloned()
                .unwrap_or_else(|| format!("svc{idx}"));
            let mut args = vec![
                ("request".to_owned(), s.request.raw().to_string()),
                ("service".to_owned(), name.clone()),
                ("status".to_owned(), format!("{:?}", s.status)),
            ];
            if let Some(parent) = s.parent {
                args.push(("parent".to_owned(), parent.raw().to_string()));
            }
            TraceEvent {
                name,
                cat: "request".to_owned(),
                ph: "X".to_owned(),
                ts: s.start.as_nanos() / 1_000,
                dur: s.duration().as_nanos().max(1_000) / 1_000,
                pid: idx as u64 + 1,
                tid: s.request.raw(),
                args,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use icfl_micro::{RequestId, ServiceId, Span, Status};
    use icfl_sim::SimTime;

    fn span(req: u64, svc: usize, start_us: u64, end_us: u64) -> Span {
        Span {
            request: RequestId::from_raw(req),
            parent: (req > 1).then(|| RequestId::from_raw(req - 1)),
            service: ServiceId::from_index(svc),
            start: SimTime::from_nanos(start_us * 1_000),
            end: SimTime::from_nanos(end_us * 1_000),
            status: Status::Ok,
        }
    }

    #[test]
    fn micro_spans_map_to_simulated_timeline() {
        let names = vec!["front".to_owned()];
        let events = micro_spans_to_trace(&[span(1, 0, 100, 400), span(2, 1, 150, 300)], &names);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "front");
        assert_eq!(events[0].ts, 100);
        assert_eq!(events[0].dur, 300);
        assert_eq!(events[0].tid, 1);
        assert_eq!(events[1].name, "svc1");
        assert!(events[1]
            .args
            .iter()
            .any(|(k, v)| k == "parent" && v == "1"));
        let json = icfl_obs::trace::chrome_trace_json(&events);
        assert_eq!(icfl_obs::trace::validate_chrome_trace(&json), Ok(2));
    }

    #[test]
    fn zero_length_spans_get_a_visible_duration() {
        let events = micro_spans_to_trace(&[span(1, 0, 100, 100)], &[]);
        assert_eq!(events[0].dur, 1);
    }

    #[test]
    fn artifacts_cover_the_full_set() {
        let dir = std::env::temp_dir().join(format!("icfl-profile-{}", std::process::id()));
        icfl_obs::reset();
        icfl_obs::counter_add("icfl_unit_total", &[], 7);
        drop(icfl_obs::span("windowing"));
        let paths = write_profile_artifacts(&dir, "unit").unwrap();
        icfl_obs::reset();
        assert_eq!(paths.len(), 6);
        for p in &paths {
            assert!(p.exists(), "missing {}", p.display());
        }
        let txt = std::fs::read_to_string(dir.join("profile_unit.txt")).unwrap();
        assert!(txt.contains("windowing"));
        let prom = std::fs::read_to_string(dir.join("unit_metrics.prom")).unwrap();
        assert!(prom.contains("icfl_unit_total 7"));
        let trace = std::fs::read_to_string(dir.join("unit_trace.json")).unwrap();
        assert!(icfl_obs::trace::validate_chrome_trace(&trace).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }
}
