//! Regeneration of the paper's Fig. 1, Fig. 2 and Fig. 4.

use crate::mode::Mode;
use crate::render::TextTable;
use icfl_core::{CampaignRun, Result, RunConfig};
use icfl_loadgen::ArrivalModel;
use icfl_micro::FaultKind;
use icfl_scenario::{RecorderTap, Scenario};
use icfl_stats::FiveNumber;
use icfl_telemetry::{MetricCatalog, MetricSpec, RawMetric};
use serde::{Deserialize, Serialize};

/// One learned causal set, with names resolved for reporting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CausalSetReport {
    /// The application/pattern the set was learned on.
    pub pattern: String,
    /// Metric name.
    pub metric: String,
    /// The intervened service.
    pub target: String,
    /// The learned causal set `C(target, metric)`.
    pub set: Vec<String>,
}

/// The Fig. 1 (+ §VI-B) result: causal relations depend on the metric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig1 {
    /// Per-metric causal sets on pattern 1 (stateless chain).
    pub pattern1: Vec<CausalSetReport>,
    /// Per-metric causal sets on pattern 2 (stateful decoupling).
    pub pattern2: Vec<CausalSetReport>,
    /// The §VI-B example: `C(B, msg rate)` vs `C(B, cpu)` on CausalBench.
    pub causalbench_worlds: Vec<CausalSetReport>,
}

impl Fig1 {
    /// Renders the causal-set tables.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (title, rows) in [
            ("Fig. 1 pattern 1 (A→B→C, stateless)", &self.pattern1),
            ("Fig. 1 pattern 2 (H→D⇐F→G, stateful)", &self.pattern2),
            (
                "§VI-B causal worlds on CausalBench",
                &self.causalbench_worlds,
            ),
        ] {
            out.push_str(title);
            out.push('\n');
            let mut t = TextTable::new(vec!["Metric", "Intervened", "Causal set"]);
            for r in rows {
                t.row(vec![r.metric.clone(), r.target.clone(), r.set.join(", ")]);
            }
            out.push_str(&t.render());
            out.push('\n');
        }
        out
    }
}

fn report_sets(
    campaign: &CampaignRun,
    catalog: &MetricCatalog,
    pattern: &str,
    only_target: Option<&str>,
) -> Result<Vec<CausalSetReport>> {
    let model = campaign.learn(catalog, RunConfig::default_detector())?;
    let names = campaign.service_names();
    let mut out = Vec::new();
    for (m, target, set) in model.iter_sets() {
        let target_name = names[target.index()].clone();
        if let Some(only) = only_target {
            if target_name != only {
                continue;
            }
        }
        out.push(CausalSetReport {
            pattern: pattern.to_owned(),
            metric: model.catalog().metric_names()[m].clone(),
            target: target_name,
            set: set.iter().map(|s| names[s.index()].clone()).collect(),
        });
    }
    Ok(out)
}

/// Runs the Fig. 1 experiment: learn single-metric causal sets on both
/// communication patterns (error-path vs omission-path worlds) and extract
/// the §VI-B msg-vs-cpu worlds on CausalBench.
///
/// # Errors
///
/// Propagates pipeline errors.
pub fn fig1(mode: Mode, seed: u64) -> Result<Fig1> {
    // #logs vs #requests — the two metrics Fig. 1 contrasts.
    let fig1_catalog = MetricCatalog::new(
        "fig1",
        vec![
            MetricSpec::Raw(RawMetric::MsgCount),
            MetricSpec::Raw(RawMetric::RequestsReceived),
        ],
    );
    let p1 = CampaignRun::execute(&icfl_apps::pattern1(), &mode.train_cfg(seed))?;
    let p2 = CampaignRun::execute(&icfl_apps::pattern2(), &mode.train_cfg(seed))?;
    let pattern1 = report_sets(&p1, &fig1_catalog, "pattern1", None)?;
    let pattern2 = report_sets(&p2, &fig1_catalog, "pattern2", None)?;

    // §VI-B: msg rate vs CPU on CausalBench, intervening on B.
    let worlds_catalog = MetricCatalog::new(
        "vi-b",
        vec![
            MetricSpec::Raw(RawMetric::MsgCount),
            MetricSpec::Raw(RawMetric::CpuSeconds),
        ],
    );
    let cb = CampaignRun::execute(&icfl_apps::causalbench(), &mode.train_cfg(seed))?;
    let causalbench_worlds = report_sets(&cb, &worlds_catalog, "causalbench", Some("B"))?;
    Ok(Fig1 {
        pattern1,
        pattern2,
        causalbench_worlds,
    })
}

/// One boxplot of Fig. 2: request-rate distribution at a service under a
/// scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig2Row {
    /// `"closed-loop"` or `"open-loop"`.
    pub arrival: String,
    /// `"no-fault"`, `"fault-on-C"` or `"fault-on-I"`.
    pub scenario: String,
    /// The service whose request rate is summarized.
    pub observed_at: String,
    /// Five-number summary of the per-window request rate (req/s).
    pub summary: FiveNumber,
}

/// The Fig. 2 result: the load confounder, present under closed-loop load
/// and absent under open-loop load.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig2 {
    /// All boxplot rows.
    pub rows: Vec<Fig2Row>,
}

impl Fig2 {
    /// Renders the boxplot table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "Arrival", "Scenario", "At", "Min", "Q1", "Median", "Q3", "Max", "Mean",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.arrival.clone(),
                r.scenario.clone(),
                r.observed_at.clone(),
                format!("{:.2}", r.summary.min),
                format!("{:.2}", r.summary.q1),
                format!("{:.2}", r.summary.median),
                format!("{:.2}", r.summary.q3),
                format!("{:.2}", r.summary.max),
                format!("{:.2}", r.summary.mean),
            ]);
        }
        t.render()
    }

    /// Median request rate for a given row, if present.
    pub fn median(&self, arrival: &str, scenario: &str, at: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.arrival == arrival && r.scenario == scenario && r.observed_at == at)
            .map(|r| r.summary.median)
    }
}

/// Runs the Fig. 2 experiment on the confounder topology.
///
/// # Errors
///
/// Propagates pipeline errors.
pub fn fig2(mode: Mode, seed: u64) -> Result<Fig2> {
    let app = icfl_apps::fig2_topology();
    let cfg = mode.train_cfg(seed);
    let catalog = MetricCatalog::new("fig2", vec![MetricSpec::Raw(RawMetric::RequestsReceived)]);
    let mut rows = Vec::new();
    for (arrival_name, model) in [
        (
            "closed-loop",
            ArrivalModel::ClosedLoop {
                users_per_replica: 10,
                think_time: icfl_sim::DurationDist::exponential(
                    icfl_sim::SimDuration::from_millis(100),
                ),
            },
        ),
        (
            "open-loop",
            ArrivalModel::Open {
                rps_per_replica: 60.0,
            },
        ),
    ] {
        for (scenario, fault_on) in [
            ("no-fault", None),
            ("fault-on-C", Some("C")),
            ("fault-on-I", Some("I")),
        ] {
            let from = icfl_sim::SimTime::ZERO + cfg.campaign.warmup;
            let to = from + cfg.campaign.fault_duration;
            let mut builder = Scenario::builder(&app, cfg.seed).arrival(model);
            if let Some(name) = fault_on {
                builder = builder.preset_fault(name, FaultKind::ServiceUnavailable);
            }
            let (mut run, recorder) =
                builder.build_with(RecorderTap::new((from, to), cfg.windows))?;
            run.run_until(to);
            let ds = recorder.dataset(&catalog)?;
            for at in ["I", "C"] {
                let id = run.cluster.service_id(at).expect("fig2 service");
                let samples = ds.samples(0, id);
                rows.push(Fig2Row {
                    arrival: arrival_name.to_owned(),
                    scenario: scenario.to_owned(),
                    observed_at: at.to_owned(),
                    summary: FiveNumber::of(samples)?,
                });
            }
        }
    }
    Ok(Fig2 { rows })
}

/// A userflow's runtime footprint: the services it exercises.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowTrace {
    /// Flow name.
    pub flow: String,
    /// Services observed handling traffic when only this flow runs.
    pub visited: Vec<String>,
}

/// The Fig. 4 result: CausalBench's topology and validated request flows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4 {
    /// Static caller→callee edges.
    pub edges: Vec<(String, String)>,
    /// Runtime flow traces.
    pub flows: Vec<FlowTrace>,
}

impl Fig4 {
    /// Renders the topology and traces.
    pub fn render(&self) -> String {
        let mut out = String::from("CausalBench topology (Fig. 4):\n");
        for (a, b) in &self.edges {
            out.push_str(&format!("  {a} -> {b}\n"));
        }
        out.push_str("\nRequest flows (validated at runtime):\n");
        for f in &self.flows {
            out.push_str(&format!("  {}: {}\n", f.flow, f.visited.join(" -> ")));
        }
        out
    }
}

/// Runs the Fig. 4 validation: prints CausalBench's edges and, for each
/// userflow, simulates only that flow and records which services handled
/// traffic.
///
/// # Errors
///
/// Propagates pipeline errors.
pub fn fig4(seed: u64) -> Result<Fig4> {
    let app = icfl_apps::causalbench();
    let edges = app.call_edges();
    let mut flows = Vec::new();
    for flow in &app.flows {
        let mut scenario = Scenario::builder(&app, seed)
            .flows(vec![flow.clone()])
            .build()?;
        scenario.run_until(icfl_sim::SimTime::from_secs(60));
        let cluster = &scenario.cluster;
        let mut visited: Vec<String> = Vec::new();
        for id in cluster.service_ids() {
            let c = cluster.counters(id);
            let is_daemon_host = (0..cluster.num_daemons())
                .any(|_| cluster.service_name(id) == "F" && cluster.daemon_items_processed(0) > 0);
            if c.requests_received > 0 || is_daemon_host {
                visited.push(cluster.service_name(id).to_owned());
            }
        }
        flows.push(FlowTrace {
            flow: flow.name.clone(),
            visited,
        });
    }
    Ok(Fig4 { edges, flows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_flows_visit_expected_services() {
        let f = fig4(3).unwrap();
        assert_eq!(f.flows.len(), 4);
        let find = |name: &str| {
            f.flows
                .iter()
                .find(|t| t.flow == name)
                .unwrap_or_else(|| panic!("missing flow {name}"))
        };
        let bce = find("path_bce");
        for s in ["A", "B", "C", "E"] {
            assert!(bce.visited.iter().any(|v| v == s), "path_bce misses {s}");
        }
        assert!(!bce.visited.iter().any(|v| v == "H"));
        let hd = find("path_hd");
        for s in ["A", "H", "D", "F", "G"] {
            assert!(hd.visited.iter().any(|v| v == s), "path_hd misses {s}");
        }
        assert!(!hd.visited.iter().any(|v| v == "B"));
        let id = find("path_id");
        for s in ["A", "I", "D"] {
            assert!(id.visited.iter().any(|v| v == s), "path_id misses {s}");
        }
        assert!(!id.visited.iter().any(|v| v == "G"));
        assert!(f.render().contains("path_bce"));
    }

    #[test]
    fn serde_roundtrips() {
        let row = Fig2Row {
            arrival: "closed-loop".into(),
            scenario: "no-fault".into(),
            observed_at: "I".into(),
            summary: FiveNumber::of(&[1.0, 2.0, 3.0]).unwrap(),
        };
        let json = serde_json::to_string(&row).unwrap();
        let back: Fig2Row = serde_json::from_str(&json).unwrap();
        assert_eq!(row, back);
    }
}
