//! Wall-clock measurement and persistence for the experiment binaries.
//!
//! Every binary times its expensive phase with [`run_timed`] and appends
//! one `phase = total` CSV row to `results/timings.csv` via
//! [`record_timing`], so the speedup of the parallel executor is captured
//! next to the scientific outputs it produced. Binaries that run with the
//! `icfl-obs` span instrumentation also append one row per pipeline phase
//! (`scenario-build`, `sim-run`, `windowing`, `learn`, `localize`) via
//! [`record_phase_timings`], sourced from the global profiler's span
//! aggregate.

use crate::mode::CliOptions;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// A result annotated with how long it took to produce.
#[derive(Debug)]
pub struct Timed<T> {
    /// The experiment's output.
    pub result: T,
    /// Wall-clock time of the experiment body.
    pub wall: Duration,
}

/// Runs `f`, measuring its wall-clock time.
pub fn run_timed<T>(f: impl FnOnce() -> T) -> Timed<T> {
    let start = Instant::now();
    let result = f();
    Timed {
        result,
        wall: start.elapsed(),
    }
}

/// Where timing rows are appended: `$ICFL_RESULTS_DIR/timings.csv`, or
/// `results/timings.csv` under the current directory.
pub fn timings_path() -> PathBuf {
    let dir = std::env::var_os("ICFL_RESULTS_DIR")
        .map_or_else(|| PathBuf::from("results"), PathBuf::from);
    dir.join("timings.csv")
}

/// The CSV header written before the `phase` column existed.
const TIMINGS_HEADER_V1: &str = "experiment,mode,seed,threads,wall_secs";

/// The CSV header of [`timings_path`].
const TIMINGS_HEADER: &str = "experiment,mode,seed,threads,wall_secs,phase";

/// The pipeline phases [`record_phase_timings`] reports, in pipeline
/// order. Each is instrumented at exactly one non-nesting point, so the
/// flat per-name totals are a disjoint breakdown of the run.
pub const PIPELINE_PHASES: [&str; 5] = [
    "scenario-build",
    "sim-run",
    "windowing",
    "learn",
    "localize",
];

/// Rewrites `path` to the current header if it is headerless (written by
/// versions predating any header) or carries the pre-`phase` header; old
/// rows are padded with `,total`, which is exactly what those versions
/// were measuring.
fn upgrade_schema(path: &std::path::Path) -> std::io::Result<()> {
    let body = std::fs::read_to_string(path)?;
    let first = body.lines().next();
    if first == Some(TIMINGS_HEADER) {
        return Ok(());
    }
    let mut out = String::with_capacity(body.len() + 64);
    out.push_str(TIMINGS_HEADER);
    out.push('\n');
    for line in body.lines() {
        if line == TIMINGS_HEADER_V1 || line.is_empty() {
            continue;
        }
        out.push_str(line);
        if line.matches(',').count() == 4 {
            out.push_str(",total");
        }
        out.push('\n');
    }
    std::fs::write(path, out)
}

/// Appends one row (`experiment,mode,seed,threads,wall_secs,phase`) to
/// [`timings_path`], creating the file (with a header) and its directory
/// on first use, and upgrading older schemas in place (see
/// [`upgrade_schema`]'s rules) first.
fn append_row(
    experiment: &str,
    opts: &CliOptions,
    wall: Duration,
    phase: &str,
) -> std::io::Result<PathBuf> {
    use std::io::Write;
    let path = timings_path();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let fresh = !path.exists();
    if !fresh {
        upgrade_schema(&path)?;
    }
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)?;
    if fresh {
        writeln!(file, "{TIMINGS_HEADER}")?;
    }
    writeln!(
        file,
        "{experiment},{},{},{},{:.3},{phase}",
        opts.mode,
        opts.seed,
        opts.resolved_threads(),
        wall.as_secs_f64()
    )?;
    Ok(path)
}

/// Appends the whole-run timing row (`phase = total`) to
/// [`timings_path`].
///
/// # Errors
///
/// Propagates filesystem errors (callers usually just warn: timings are
/// diagnostics, not results).
pub fn record_timing(
    experiment: &str,
    opts: &CliOptions,
    wall: Duration,
) -> std::io::Result<PathBuf> {
    append_row(experiment, opts, wall, "total")
}

/// Appends a named metric row to [`timings_path`]: the `wall_secs`
/// column carries `value` and `phase` names the metric (e.g.
/// `scrapes_per_sec@4x`). Lets sweeps persist derived numbers next to
/// their wall-clock rows in the one append-only CSV the perf checks
/// read.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn record_metric_row(
    experiment: &str,
    opts: &CliOptions,
    value: f64,
    phase: &str,
) -> std::io::Result<PathBuf> {
    append_row(experiment, opts, Duration::from_secs_f64(value), phase)
}

/// Appends one row per [`PIPELINE_PHASES`] entry the global `icfl-obs`
/// profiler has spans for, reporting each phase's summed wall-clock time.
/// Returns the phases written. Binaries call this right after their timed
/// body, so the rows describe the same run as the `total` row.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn record_phase_timings(
    experiment: &str,
    opts: &CliOptions,
) -> std::io::Result<Vec<&'static str>> {
    let aggregate = icfl_obs::global().profiler.aggregate();
    let mut written = Vec::new();
    for phase in PIPELINE_PHASES {
        if let Some(row) = aggregate.iter().find(|r| r.name == phase) {
            append_row(
                experiment,
                opts,
                Duration::from_secs_f64(row.total_secs),
                phase,
            )?;
            written.push(phase);
        }
    }
    Ok(written)
}

/// Logs the standard timing trailer and appends the `total` row plus the
/// per-phase breakdown to the timings file, warning (not failing) if the
/// file is unwritable.
pub fn report_timing(experiment: &str, opts: &CliOptions, wall: Duration) {
    icfl_obs::info!(
        "{experiment}: wall-clock {:.2}s with {} worker thread(s)",
        wall.as_secs_f64(),
        opts.resolved_threads()
    );
    match record_timing(experiment, opts, wall) {
        Ok(path) => icfl_obs::info!("{experiment}: timing appended to {}", path.display()),
        Err(e) => icfl_obs::warn!("{experiment}: could not persist timing: {e}"),
    }
    match record_phase_timings(experiment, opts) {
        Ok(phases) if !phases.is_empty() => {
            icfl_obs::debug!("{experiment}: phase rows appended: {}", phases.join(", "));
        }
        Ok(_) => {}
        Err(e) => icfl_obs::warn!("{experiment}: could not persist phase timings: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mode::Mode;

    /// Serializes tests that repoint `ICFL_RESULTS_DIR` (process-global).
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn opts(seed: u64, threads: usize) -> CliOptions {
        CliOptions {
            mode: Mode::Quick,
            seed,
            threads,
            ..CliOptions::defaults()
        }
    }

    #[test]
    fn run_timed_returns_result_and_nonzero_duration() {
        let t = run_timed(|| (0..1000).sum::<u64>());
        assert_eq!(t.result, 499_500);
        assert!(t.wall.as_nanos() > 0);
    }

    #[test]
    fn record_timing_appends_csv_rows() {
        let _guard = ENV_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join(format!("icfl-timings-{}", std::process::id()));
        std::env::set_var("ICFL_RESULTS_DIR", &dir);
        let opts = opts(9, 2);
        let p1 = record_timing("unit-test", &opts, Duration::from_millis(1500)).unwrap();
        let p2 = record_timing("unit-test", &opts, Duration::from_millis(250)).unwrap();
        std::env::remove_var("ICFL_RESULTS_DIR");
        assert_eq!(p1, p2);
        let body = std::fs::read_to_string(&p1).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines[0], "experiment,mode,seed,threads,wall_secs,phase");
        assert_eq!(lines[1], "unit-test,quick,9,2,1.500,total");
        assert_eq!(lines[2], "unit-test,quick,9,2,0.250,total");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn headerless_file_is_upgraded_in_place() {
        let _guard = ENV_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join(format!("icfl-timings-hdr-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("timings.csv"), "old-run,quick,1,1,9.000\n").unwrap();
        std::env::set_var("ICFL_RESULTS_DIR", &dir);
        let p = record_timing("unit-test", &opts(3, 1), Duration::from_millis(500)).unwrap();
        std::env::remove_var("ICFL_RESULTS_DIR");
        let body = std::fs::read_to_string(&p).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines[0], "experiment,mode,seed,threads,wall_secs,phase");
        assert_eq!(lines[1], "old-run,quick,1,1,9.000,total");
        assert_eq!(lines[2], "unit-test,quick,3,1,0.500,total");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pre_phase_header_is_upgraded_in_place() {
        let _guard = ENV_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join(format!("icfl-timings-v1-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("timings.csv"),
            "experiment,mode,seed,threads,wall_secs\ntable2,quick,42,8,1.925\n",
        )
        .unwrap();
        std::env::set_var("ICFL_RESULTS_DIR", &dir);
        let p = record_timing("unit-test", &opts(5, 4), Duration::from_millis(750)).unwrap();
        std::env::remove_var("ICFL_RESULTS_DIR");
        let body = std::fs::read_to_string(&p).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines[0], "experiment,mode,seed,threads,wall_secs,phase");
        assert_eq!(lines[1], "table2,quick,42,8,1.925,total");
        assert_eq!(lines[2], "unit-test,quick,5,4,0.750,total");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn phase_rows_come_from_the_global_profiler() {
        let _guard = ENV_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join(format!("icfl-timings-ph-{}", std::process::id()));
        std::env::set_var("ICFL_RESULTS_DIR", &dir);
        icfl_obs::reset();
        drop(icfl_obs::span("learn"));
        drop(icfl_obs::span("localize"));
        drop(icfl_obs::span("not-a-pipeline-phase"));
        let written = record_phase_timings("unit-test", &opts(1, 1)).unwrap();
        icfl_obs::reset();
        std::env::remove_var("ICFL_RESULTS_DIR");
        assert_eq!(written, vec!["learn", "localize"]);
        let body = std::fs::read_to_string(dir.join("timings.csv")).unwrap();
        // Pipeline order, one row each, after the header.
        let phases: Vec<&str> = body
            .lines()
            .skip(1)
            .map(|l| l.rsplit(',').next().unwrap())
            .collect();
        assert_eq!(phases, vec!["learn", "localize"]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
