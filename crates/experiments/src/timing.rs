//! Wall-clock measurement and persistence for the experiment binaries.
//!
//! Every binary times its expensive phase with [`run_timed`] and appends
//! one CSV row to `results/timings.csv` via [`record_timing`], so the
//! speedup of the parallel executor is captured next to the scientific
//! outputs it produced.

use crate::mode::CliOptions;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// A result annotated with how long it took to produce.
#[derive(Debug)]
pub struct Timed<T> {
    /// The experiment's output.
    pub result: T,
    /// Wall-clock time of the experiment body.
    pub wall: Duration,
}

/// Runs `f`, measuring its wall-clock time.
pub fn run_timed<T>(f: impl FnOnce() -> T) -> Timed<T> {
    let start = Instant::now();
    let result = f();
    Timed {
        result,
        wall: start.elapsed(),
    }
}

/// Where timing rows are appended: `$ICFL_RESULTS_DIR/timings.csv`, or
/// `results/timings.csv` under the current directory.
pub fn timings_path() -> PathBuf {
    let dir = std::env::var_os("ICFL_RESULTS_DIR")
        .map_or_else(|| PathBuf::from("results"), PathBuf::from);
    dir.join("timings.csv")
}

/// The CSV header of [`timings_path`].
const TIMINGS_HEADER: &str = "experiment,mode,seed,threads,wall_secs";

/// Appends one timing row (`experiment,mode,seed,threads,wall_secs`) to
/// [`timings_path`], creating the file (with a header) and its directory
/// on first use. A pre-existing headerless file (written by versions that
/// predate the header) is upgraded in place: the header is prepended and
/// the old rows are kept.
///
/// # Errors
///
/// Propagates filesystem errors (callers usually just warn: timings are
/// diagnostics, not results).
pub fn record_timing(
    experiment: &str,
    opts: &CliOptions,
    wall: Duration,
) -> std::io::Result<PathBuf> {
    use std::io::Write;
    let path = timings_path();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let fresh = !path.exists();
    if !fresh {
        let body = std::fs::read_to_string(&path)?;
        let headerless = body
            .lines()
            .next()
            .is_some_and(|first| first != TIMINGS_HEADER);
        if headerless {
            std::fs::write(&path, format!("{TIMINGS_HEADER}\n{body}"))?;
        }
    }
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)?;
    if fresh {
        writeln!(file, "{TIMINGS_HEADER}")?;
    }
    writeln!(
        file,
        "{experiment},{},{},{},{:.3}",
        opts.mode,
        opts.seed,
        opts.resolved_threads(),
        wall.as_secs_f64()
    )?;
    Ok(path)
}

/// Prints the standard timing trailer to stderr and appends the row to
/// the timings file, warning (not failing) if the file is unwritable.
pub fn report_timing(experiment: &str, opts: &CliOptions, wall: Duration) {
    eprintln!(
        "{experiment}: wall-clock {:.2}s with {} worker thread(s)",
        wall.as_secs_f64(),
        opts.resolved_threads()
    );
    match record_timing(experiment, opts, wall) {
        Ok(path) => eprintln!("{experiment}: timing appended to {}", path.display()),
        Err(e) => eprintln!("{experiment}: could not persist timing: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mode::Mode;

    /// Serializes tests that repoint `ICFL_RESULTS_DIR` (process-global).
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn run_timed_returns_result_and_nonzero_duration() {
        let t = run_timed(|| (0..1000).sum::<u64>());
        assert_eq!(t.result, 499_500);
        assert!(t.wall.as_nanos() > 0);
    }

    #[test]
    fn record_timing_appends_csv_rows() {
        let _guard = ENV_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join(format!("icfl-timings-{}", std::process::id()));
        std::env::set_var("ICFL_RESULTS_DIR", &dir);
        let opts = CliOptions {
            mode: Mode::Quick,
            seed: 9,
            json: false,
            threads: 2,
        };
        let p1 = record_timing("unit-test", &opts, Duration::from_millis(1500)).unwrap();
        let p2 = record_timing("unit-test", &opts, Duration::from_millis(250)).unwrap();
        std::env::remove_var("ICFL_RESULTS_DIR");
        assert_eq!(p1, p2);
        let body = std::fs::read_to_string(&p1).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines[0], "experiment,mode,seed,threads,wall_secs");
        assert_eq!(lines[1], "unit-test,quick,9,2,1.500");
        assert_eq!(lines[2], "unit-test,quick,9,2,0.250");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn headerless_file_is_upgraded_in_place() {
        let _guard = ENV_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join(format!("icfl-timings-hdr-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("timings.csv"), "old-run,quick,1,1,9.000\n").unwrap();
        std::env::set_var("ICFL_RESULTS_DIR", &dir);
        let opts = CliOptions {
            mode: Mode::Quick,
            seed: 3,
            json: false,
            threads: 1,
        };
        let p = record_timing("unit-test", &opts, Duration::from_millis(500)).unwrap();
        std::env::remove_var("ICFL_RESULTS_DIR");
        let body = std::fs::read_to_string(&p).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines[0], "experiment,mode,seed,threads,wall_secs");
        assert_eq!(lines[1], "old-run,quick,1,1,9.000");
        assert_eq!(lines[2], "unit-test,quick,3,1,0.500");
        std::fs::remove_dir_all(&dir).ok();
    }
}
