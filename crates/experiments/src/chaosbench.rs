//! Chaos campaign against the durable ingest server: kill the server at
//! scheduled points mid-campaign — behind a deterministic chaos proxy
//! that delays, corrupts, and severs frames — restart it from its
//! `--state-dir`, and score recovery against an uninterrupted reference
//! run.
//!
//! The campaign asserts the three recovery guarantees the resilience
//! layer makes:
//!
//! 1. **Byte-equal incidents** — after every kill/restart cycle, each
//!    tenant's `/incidents` body is byte-identical to the reference
//!    run's (checkpoint + WAL replay reconstruct the exact session).
//! 2. **Zero silent drops** — every scrape the generator sent was
//!    acknowledged by the server (`scrapes accepted == scrapes sent`);
//!    lost acks are survived by idempotent re-sends, not re-counted.
//! 3. **Bounded inflation** — chaos slows the campaign down (reconnects,
//!    recovery pauses, retry backoff) but detection output is unchanged;
//!    the wall-clock inflation factor is reported, not hidden.
//!
//! `--smoke` (one kill, quick mode) is the CI `chaos-smoke` gate.

use crate::mode::Mode;
use crate::render::TextTable;
use crate::serverbench::STREAMS_PER_SCALE;
use crate::serverbench::{online_cfg, prepare_app, Result, ServerbenchError, ServerbenchOptions};
use icfl_online::{FeedConfig, ModelRegistry};
use icfl_scenario::ScrapeTrace;
use icfl_server::loadgen::{run as run_loadgen, LoadMode, LoadgenConfig, LoadgenSummary};
use icfl_server::{ChaosConfig, ChaosProxy, HttpClient, IcflServer, ServerConfig, ServerHandle};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// How long the killer waits for the campaign to reach a kill point
/// before declaring the run wedged.
const KILL_POINT_TIMEOUT: Duration = Duration::from_secs(300);

/// Options for the chaos campaign.
#[derive(Debug, Clone)]
pub struct ChaosbenchOptions {
    /// Timing mode (training protocol + window geometry).
    pub mode: Mode,
    /// Root seed for training, traces, chaos faults, and retry jitter.
    pub seed: u64,
    /// Scheduled server kills (kill `k` of `K` fires once the fleet's
    /// accepted-scrape count crosses `total · k / (K+1)`).
    pub kills: usize,
    /// Where trained models are persisted and served from.
    pub registry_root: PathBuf,
    /// Durable per-tenant state root for the chaos server (wiped at the
    /// start of the campaign).
    pub state_dir: PathBuf,
    /// Per-tenant queue bound, in batches.
    pub queue_cap: usize,
    /// Scrapes per ingest batch.
    pub bulk_size: usize,
}

impl ChaosbenchOptions {
    /// Defaults: two kills, models under `results/models` and state under
    /// `results/chaosbench-state` (honoring `ICFL_RESULTS_DIR`).
    pub fn new(mode: Mode, seed: u64) -> Self {
        let results = std::env::var_os("ICFL_RESULTS_DIR")
            .map_or_else(|| PathBuf::from("results"), PathBuf::from);
        ChaosbenchOptions {
            mode,
            seed,
            kills: 2,
            registry_root: results.join("models"),
            state_dir: results.join("chaosbench-state"),
            queue_cap: 64,
            bulk_size: 64,
        }
    }

    /// The CI `chaos-smoke` gate: one kill, quick mode.
    pub fn smoke(seed: u64) -> Self {
        let mut opts = Self::new(Mode::Quick, seed);
        opts.kills = 1;
        opts
    }
}

/// One tenant's recovery outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosTenantRow {
    /// Tenant name.
    pub tenant: String,
    /// Scrapes the (restarted) server acknowledged for this tenant.
    pub scrapes_accepted: u64,
    /// Incidents confirmed by the recovered session.
    pub incidents: u64,
    /// Whether `/incidents` is byte-identical to the reference run's.
    pub byte_equal: bool,
}

/// The chaos campaign's full result. Only returned when every recovery
/// guarantee held — a divergent tenant or a silent drop is an error.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Chaosbench {
    /// Apps served (registry model names).
    pub apps: Vec<String>,
    /// Scheduled server kills that fired.
    pub kills: usize,
    /// Server restarts (recoveries from the state dir); equals `kills`.
    pub restarts: usize,
    /// Scrapes sent (and acknowledged) across all tenants.
    pub scrapes_sent: u64,
    /// Scrapes the final recovered server accounts for.
    pub scrapes_accepted: u64,
    /// Transport failures survived by reconnect-and-resend.
    pub transport_retries: u64,
    /// Chaos-induced 4xx rejects survived by a clean resend.
    pub reject_retries: u64,
    /// 429 backpressure rejections that were retried.
    pub batches_retried: u64,
    /// Scheduled fault episodes fully replayed.
    pub incidents_expected: u64,
    /// Incidents confirmed across all recovered tenants.
    pub incidents_detected: u64,
    /// Tail detection latency (stream time — identical to the reference
    /// run by the byte-equality guarantee), milliseconds.
    pub detect_p99_ms: f64,
    /// Send-phase wall clock of the uninterrupted reference run, seconds.
    pub ref_send_secs: f64,
    /// Send-phase wall clock under chaos (kills, reconnects, recovery),
    /// seconds.
    pub chaos_send_secs: f64,
    /// Per-tenant outcomes.
    pub tenants: Vec<ChaosTenantRow>,
}

impl Chaosbench {
    /// Wall-clock inflation of the send phase under chaos (≥ 1.0 in
    /// practice; the price of the kills and retries).
    pub fn inflation(&self) -> f64 {
        if self.ref_send_secs <= 0.0 {
            return 1.0;
        }
        self.chaos_send_secs / self.ref_send_secs
    }

    /// Renders the campaign as an aligned text table plus the guarantee
    /// lines the CI gate greps for.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec!["Tenant", "Scrapes", "Incidents", "Byte-equal"]);
        for r in &self.tenants {
            t.row(vec![
                r.tenant.clone(),
                r.scrapes_accepted.to_string(),
                r.incidents.to_string(),
                if r.byte_equal { "yes" } else { "NO" }.to_owned(),
            ]);
        }
        let equal = self.tenants.iter().filter(|r| r.byte_equal).count();
        format!(
            "{}\nkills={} restarts={} | retries transport={} reject={} backpressure={} \
             | incidents {}/{} detected | detect p99={:.0}ms\n\
             byte-equal incidents {equal}/{} tenants\n\
             0 silent drops ({} scrapes accepted == {} sent)\n\
             send-phase inflation {:.2}x ({:.2}s chaos vs {:.2}s reference)",
            t.render(),
            self.kills,
            self.restarts,
            self.transport_retries,
            self.reject_retries,
            self.batches_retried,
            self.incidents_detected,
            self.incidents_expected,
            self.detect_p99_ms,
            self.tenants.len(),
            self.scrapes_accepted,
            self.scrapes_sent,
            self.inflation(),
            self.chaos_send_secs,
            self.ref_send_secs,
        )
    }

    /// Renders the `results/chaos_recovery.md` report body.
    pub fn to_markdown(&self, mode: Mode, seed: u64) -> String {
        let mut out = String::new();
        out.push_str("# Chaos recovery campaign\n\n");
        out.push_str(&format!(
            "`chaosbench` (`{mode}` mode, seed {seed}): {} tenant streams ({}) replay \
             recorded scheduled-outage traces through a seeded chaos proxy \
             (delay/corrupt/sever) at a durable `icfl-server`; the harness kills the \
             server at {} scheduled points and restarts it from `--state-dir`. Every \
             tenant's `/incidents` must come back byte-identical to an uninterrupted \
             reference run, with zero silent drops.\n\n",
            self.tenants.len(),
            self.apps.join(", "),
            self.kills,
        ));
        out.push_str("```text\n");
        out.push_str(&self.render());
        out.push_str("\n```\n\n");
        out.push_str(
            "Regenerate with `cargo run --release -p icfl-experiments --bin chaosbench`; \
             the CI gate runs `--smoke` (one kill) and fails on any divergent byte or \
             lost scrape.\n",
        );
        out
    }
}

/// Builds the chaos server's config: durable state, tight checkpoint and
/// fsync cadence so kills land between checkpoints and mid-WAL.
fn chaos_server_cfg(opts: &ChaosbenchOptions, cfg: &FeedConfig) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        registry_root: opts.registry_root.clone(),
        feed: cfg.clone(),
        queue_cap: opts.queue_cap,
        http_workers: 32,
        retry_after_ms: 5,
        state_dir: Some(opts.state_dir.clone()),
        checkpoint_every_ticks: 4,
        fsync_every_batches: 4,
        ..ServerConfig::quick(&opts.registry_root)
    }
}

/// The load campaign both runs replay: one pass of the longest trace per
/// stream, bulk batches, fixed tenant names so the runs are comparable.
fn loadgen_cfg(addr: String, traces: &[ScrapeTrace], opts: &ChaosbenchOptions) -> LoadgenConfig {
    let per_stream = traces
        .iter()
        .map(|t| t.scrapes.len() as u64)
        .max()
        .unwrap_or(0);
    LoadgenConfig {
        addr,
        traces: traces.to_vec(),
        total: per_stream * STREAMS_PER_SCALE as u64,
        concurrency: STREAMS_PER_SCALE,
        bulk_size: opts.bulk_size,
        mode: LoadMode::Bulk,
        rate: 0.0,
        seed: opts.seed,
        tenant_prefix: "chaos-".to_owned(),
        max_transport_retries: 0,
        max_reject_retries: 0,
    }
}

/// Fetches each tenant's raw `/incidents` body over a direct connection
/// (bypassing the chaos proxy, so the comparison sees server bytes).
fn fetch_incidents(addr: &str, tenants: &[String]) -> Result<Vec<Vec<u8>>> {
    let mut client = HttpClient::connect(addr);
    let mut bodies = Vec::with_capacity(tenants.len());
    for tenant in tenants {
        let resp = client.get(&format!("/incidents/{tenant}"))?;
        if resp.status != 200 {
            return Err(ServerbenchError::Invariant(format!(
                "incidents {tenant}: {} {}",
                resp.status,
                resp.text().trim()
            )));
        }
        bodies.push(resp.body);
    }
    Ok(bodies)
}

/// Blocks until the fleet's accepted-scrape count crosses `at`, polling
/// the live pipelines. Errs if the campaign finished or wedged first.
fn wait_for_kill_point(
    handle: &ServerHandle,
    tenants: &[String],
    at: u64,
    campaign: &std::thread::ScopedJoinHandle<
        '_,
        std::result::Result<LoadgenSummary, icfl_server::LoadgenError>,
    >,
) -> Result<()> {
    let deadline = Instant::now() + KILL_POINT_TIMEOUT;
    loop {
        let accepted: u64 = tenants
            .iter()
            .filter_map(|t| handle.tenant(t))
            .map(|p| p.scrapes_accepted())
            .sum();
        if accepted >= at {
            return Ok(());
        }
        if campaign.is_finished() {
            return Err(ServerbenchError::Invariant(format!(
                "campaign finished before the kill point at {at} accepted scrapes"
            )));
        }
        if Instant::now() >= deadline {
            return Err(ServerbenchError::Invariant(format!(
                "campaign wedged at {accepted}/{at} accepted scrapes"
            )));
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Runs the chaos campaign: train + record once, score an uninterrupted
/// reference run, then replay the same campaign through the chaos proxy
/// with scheduled kills and compare.
///
/// # Errors
///
/// Training/registry/transport failures, a tenant whose recovered
/// `/incidents` diverges from the reference, a silently dropped scrape,
/// or a kill point the campaign never reached.
pub fn chaosbench(opts: &ChaosbenchOptions) -> Result<Chaosbench> {
    let cfg = online_cfg(opts.mode);
    let registry = ModelRegistry::open(&opts.registry_root)?;
    let sb_opts = ServerbenchOptions {
        queue_cap: opts.queue_cap,
        bulk_size: opts.bulk_size,
        registry_root: opts.registry_root.clone(),
        ..ServerbenchOptions::new(opts.mode, opts.seed)
    };
    let apps = [icfl_apps::fig2_topology(), icfl_apps::causalbench()];
    let mut traces = Vec::new();
    for app in &apps {
        icfl_obs::info!("chaosbench: training + recording {}...", app.name);
        traces.push(prepare_app(app, &registry, &cfg, &sb_opts)?);
    }
    let tenants: Vec<String> = (0..STREAMS_PER_SCALE)
        .map(|w| format!("{}:chaos-w{w}", traces[w % traces.len()].meta.app))
        .collect();
    let feed = FeedConfig::from_online(&cfg);

    // Uninterrupted reference run: same campaign, no proxy, no durable
    // state, no kills.
    icfl_obs::info!("chaosbench: reference run (no chaos)...");
    let mut ref_handle = IcflServer::start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        registry_root: opts.registry_root.clone(),
        feed: feed.clone(),
        queue_cap: opts.queue_cap,
        http_workers: 32,
        retry_after_ms: 5,
        ..ServerConfig::quick(&opts.registry_root)
    })?;
    let ref_summary = run_loadgen(&loadgen_cfg(ref_handle.addr().to_string(), &traces, opts))?;
    let reference = fetch_incidents(&ref_handle.addr().to_string(), &tenants)?;
    ref_handle.shutdown();

    // Chaos run: durable server behind the seeded proxy, killed at the
    // scheduled points and restarted from its state dir each time.
    if opts.state_dir.exists() {
        std::fs::remove_dir_all(&opts.state_dir)?;
    }
    std::fs::create_dir_all(&opts.state_dir)?;
    let mut handle = IcflServer::start(chaos_server_cfg(opts, &feed))?;
    let proxy = ChaosProxy::start(handle.addr().to_string(), ChaosConfig::mild(opts.seed))?;

    let mut chaos_cfg = loadgen_cfg(proxy.addr().to_string(), &traces, opts);
    // Generous retry budgets: every kill severs in-flight requests, and
    // each reconnect may land while the server is still recovering.
    chaos_cfg.max_transport_retries = 4000;
    chaos_cfg.max_reject_retries = 64;
    let total = chaos_cfg.total;
    let kill_points: Vec<u64> = (1..=opts.kills)
        .map(|k| total * k as u64 / (opts.kills as u64 + 1))
        .collect();
    icfl_obs::info!(
        "chaosbench: chaos run — {total} scrapes, kills at {kill_points:?} accepted..."
    );

    let (summary, restarts) = std::thread::scope(|scope| -> Result<(LoadgenSummary, usize)> {
        let campaign = scope.spawn(|| run_loadgen(&chaos_cfg));
        let mut restarts = 0usize;
        for &at in &kill_points {
            wait_for_kill_point(&handle, &tenants, at, &campaign)?;
            icfl_obs::info!("chaosbench: killing server at ≥{at} accepted scrapes");
            handle.crash();
            handle = IcflServer::start(chaos_server_cfg(opts, &feed))?;
            proxy.set_upstream(handle.addr().to_string());
            restarts += 1;
        }
        let summary = campaign
            .join()
            .map_err(|_| ServerbenchError::Invariant("campaign thread panicked".into()))??;
        Ok((summary, restarts))
    })?;

    let recovered = fetch_incidents(&handle.addr().to_string(), &tenants)?;
    handle.shutdown();

    // Score: byte-equality per tenant, zero silent drops fleet-wide.
    let mut rows = Vec::new();
    for (i, tenant) in tenants.iter().enumerate() {
        let outcome = summary
            .tenants
            .iter()
            .find(|t| &t.tenant == tenant)
            .ok_or_else(|| {
                ServerbenchError::Invariant(format!("tenant {tenant} missing from the campaign"))
            })?;
        rows.push(ChaosTenantRow {
            tenant: tenant.clone(),
            scrapes_accepted: outcome.scrapes_accepted,
            incidents: outcome.verdicts.len() as u64,
            byte_equal: recovered[i] == reference[i],
        });
    }
    if let Some(bad) = rows.iter().find(|r| !r.byte_equal) {
        return Err(ServerbenchError::Invariant(format!(
            "tenant {} served divergent /incidents after recovery",
            bad.tenant
        )));
    }
    let accepted: u64 = summary.tenants.iter().map(|t| t.scrapes_accepted).sum();
    if accepted != summary.scrapes_sent {
        return Err(ServerbenchError::Invariant(format!(
            "silent drop: sent {} scrapes but only {accepted} accounted for",
            summary.scrapes_sent
        )));
    }
    if summary.incidents_detected() < summary.incidents_expected() {
        return Err(ServerbenchError::Invariant(format!(
            "{}/{} scheduled incidents detected after recovery",
            summary.incidents_detected(),
            summary.incidents_expected()
        )));
    }
    if restarts != opts.kills {
        return Err(ServerbenchError::Invariant(format!(
            "{restarts} restarts for {} scheduled kills",
            opts.kills
        )));
    }
    icfl_obs::info!("chaosbench: {}", summary.one_line());

    Ok(Chaosbench {
        apps: apps.iter().map(|a| a.name.clone()).collect(),
        kills: opts.kills,
        restarts,
        scrapes_sent: summary.scrapes_sent,
        scrapes_accepted: accepted,
        transport_retries: summary.transport_retries,
        reject_retries: summary.reject_retries,
        batches_retried: summary.batches_retried,
        incidents_expected: summary.incidents_expected(),
        incidents_detected: summary.incidents_detected(),
        detect_p99_ms: summary.detect_p(0.99).unwrap_or(0.0),
        ref_send_secs: ref_summary.send_wall.as_secs_f64(),
        chaos_send_secs: summary.send_wall.as_secs_f64(),
        tenants: rows,
    })
}
