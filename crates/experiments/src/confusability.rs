//! Confusability analysis: does the §III-B identifiability argument predict
//! which faults the localizer actually confuses?
//!
//! For each application we rank target pairs by causal-signature similarity
//! (mean Jaccard across metrics) and cross-check them against the 4×-load
//! evaluation: a miss whose predicted candidate is the other member of a
//! highly similar pair *validates* the signature analysis.

use crate::mode::Mode;
use crate::render::TextTable;
use icfl_core::{CampaignRun, EvalSuite, Result, RunConfig};
use icfl_telemetry::MetricCatalog;
use serde::{Deserialize, Serialize};

/// One ranked pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfusablePair {
    /// Application.
    pub app: String,
    /// First service name.
    pub a: String,
    /// Second service name.
    pub b: String,
    /// Mean Jaccard similarity of their causal signatures.
    pub similarity: f64,
    /// Whether the 4× evaluation actually confused them (a fault on one was
    /// answered with a candidate set containing the other but not the
    /// culprit).
    pub confused_at_4x: bool,
}

/// The confusability report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Confusability {
    /// Top pairs per app, most similar first.
    pub pairs: Vec<ConfusablePair>,
}

impl Confusability {
    /// Renders the report.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec!["App", "Pair", "Signature similarity", "Confused @4x?"]);
        for p in &self.pairs {
            t.row(vec![
                p.app.clone(),
                format!("{} ~ {}", p.a, p.b),
                format!("{:.2}", p.similarity),
                if p.confused_at_4x {
                    "yes".into()
                } else {
                    "no".into()
                },
            ]);
        }
        t.render()
    }
}

/// Runs the confusability analysis on both benchmark apps.
///
/// # Errors
///
/// Propagates pipeline errors.
pub fn confusability(mode: Mode, seed: u64) -> Result<Confusability> {
    let mut pairs = Vec::new();
    for app in [icfl_apps::causalbench(), icfl_apps::robot_shop()] {
        let campaign = CampaignRun::execute(&app, &mode.train_cfg(seed))?;
        let model = campaign.learn(&MetricCatalog::derived_all(), RunConfig::default_detector())?;
        let suite = EvalSuite::execute(
            &app,
            campaign.targets(),
            &mode.eval_cfg(seed).with_replicas(4),
        )?;
        let summary = suite.evaluate(&model)?;
        let names = campaign.service_names();

        for (a, b, sim) in model.confusable_pairs(0.0).into_iter().take(5) {
            // Did the evaluation mistake one for the other?
            let confused = summary.cases.iter().any(|c| {
                !c.correct
                    && ((c.injected == a && c.candidates.contains(&b))
                        || (c.injected == b && c.candidates.contains(&a)))
            });
            pairs.push(ConfusablePair {
                app: app.name.clone(),
                a: names[a.index()].clone(),
                b: names[b.index()].clone(),
                similarity: sim,
                confused_at_4x: confused,
            });
        }
    }
    Ok(Confusability { pairs })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_shows_pairs() {
        let c = Confusability {
            pairs: vec![ConfusablePair {
                app: "x".into(),
                a: "A".into(),
                b: "B".into(),
                similarity: 0.5,
                confused_at_4x: true,
            }],
        };
        let out = c.render();
        assert!(out.contains("A ~ B"));
        assert!(out.contains("yes"));
    }
}
