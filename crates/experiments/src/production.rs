//! The `production` experiment: long multi-incident online runs.
//!
//! Where `table1`/`table2` replay whole offline campaigns, this experiment
//! exercises the paper's *platform* (Fig. 3) end to end: per application it
//! (1) trains a causal model with an Algorithm-1 campaign, (2) persists it
//! through the [`ModelRegistry`] and reloads it — every localization below
//! is served by the *reloaded* model, as production would; (3) measures the
//! offline Table-I-style accuracy at 1× as the reference bar; and (4) runs
//! several long [`OnlineSession`]s in parallel, each a continuously loaded
//! cluster with scheduled `service-unavailable` outages — evenly spaced,
//! back-to-back, and overlapping — watched by the streaming ingester,
//! incident detector, and online localizer. The report carries
//! per-incident time-to-detect, time-to-localize, and ranked candidates.
//!
//! Sessions are independent seeded simulations, so they fan out over
//! [`parallel_map`] exactly like campaign phases; thread count never
//! changes the report (asserted by the `production_determinism` test).

use crate::mode::Mode;
use crate::render::TextTable;
use icfl_core::{parallel_map, CampaignRun, EvalSuite, RunConfig};
use icfl_micro::{FaultKind, ServiceId};
use icfl_online::{
    Episode, EpisodeFault, IncidentSchedule, ModelMeta, ModelRegistry, OnlineConfig, OnlineError,
    OnlineSession, RegistryError, SessionReport,
};
use icfl_sim::{SimDuration, SimTime};
use icfl_stats::{ShiftDetector, TestKind};
use icfl_telemetry::MetricCatalog;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::PathBuf;

/// Errors surfaced by the production experiment.
#[derive(Debug)]
pub enum ProductionError {
    /// Offline training or evaluation failed.
    Core(icfl_core::CoreError),
    /// An online session failed.
    Online(OnlineError),
    /// Model persistence failed.
    Registry(RegistryError),
}

impl fmt::Display for ProductionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProductionError::Core(e) => write!(f, "offline pipeline failed: {e}"),
            ProductionError::Online(e) => write!(f, "online session failed: {e}"),
            ProductionError::Registry(e) => write!(f, "model registry failed: {e}"),
        }
    }
}

impl std::error::Error for ProductionError {}

impl From<icfl_core::CoreError> for ProductionError {
    fn from(e: icfl_core::CoreError) -> Self {
        ProductionError::Core(e)
    }
}
impl From<OnlineError> for ProductionError {
    fn from(e: OnlineError) -> Self {
        ProductionError::Online(e)
    }
}
impl From<RegistryError> for ProductionError {
    fn from(e: RegistryError) -> Self {
        ProductionError::Registry(e)
    }
}

/// Production experiment result alias.
pub type Result<T> = std::result::Result<T, ProductionError>;

/// Tuning of one production run.
#[derive(Debug, Clone)]
pub struct ProductionOptions {
    /// Timing mode (window geometry and phase lengths).
    pub mode: Mode,
    /// Root seed for training and all sessions.
    pub seed: u64,
    /// Worker threads for session fan-out (`0` = auto).
    pub threads: usize,
    /// Where models are persisted and reloaded from.
    pub registry_root: PathBuf,
    /// Use Anderson–Darling instead of KS for live incident detection.
    pub anderson_darling: bool,
}

impl ProductionOptions {
    /// Defaults: quick mode, seed 42, auto threads, KS detection, models
    /// under `results/models` (honoring `ICFL_RESULTS_DIR`).
    pub fn new(mode: Mode, seed: u64) -> Self {
        let results = std::env::var_os("ICFL_RESULTS_DIR")
            .map_or_else(|| PathBuf::from("results"), PathBuf::from);
        ProductionOptions {
            mode,
            seed,
            threads: 0,
            registry_root: results.join("models"),
            anderson_darling: false,
        }
    }

    /// Sets the registry root, returning `self`.
    pub fn with_registry_root(mut self, root: impl Into<PathBuf>) -> Self {
        self.registry_root = root.into();
        self
    }

    /// The session tuning for this run's mode and detector choice.
    fn online_cfg(&self) -> OnlineConfig {
        let cfg = match self.mode {
            Mode::Quick => OnlineConfig::quick(),
            Mode::Paper => OnlineConfig::paper(),
        };
        if self.anderson_darling {
            let detector = ShiftDetector {
                kind: TestKind::AndersonDarling,
                ..cfg.detector
            };
            cfg.with_detector(detector)
        } else {
            cfg
        }
    }
}

/// One application's slice of the production run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProductionAppReport {
    /// Application name.
    pub app: String,
    /// Registry version the sessions' model was reloaded from.
    pub model_version: u32,
    /// Offline Table-I-style accuracy at 1× of the reloaded model — the
    /// reference bar the online loop is held to.
    pub offline_accuracy: f64,
    /// The online sessions, in schedule order.
    pub sessions: Vec<SessionReport>,
}

impl ProductionAppReport {
    /// Incident episodes across all sessions.
    pub fn episodes(&self) -> usize {
        self.sessions.iter().map(|s| s.incidents.len()).sum()
    }

    /// Faults injected across all sessions.
    pub fn injected_faults(&self) -> usize {
        self.sessions.iter().map(|s| s.injected_faults).sum()
    }

    /// Detected episodes across all sessions.
    pub fn detected(&self) -> usize {
        self.sessions
            .iter()
            .flat_map(|s| &s.incidents)
            .filter(|i| i.detected)
            .count()
    }

    /// Correct top-1 verdicts across all sessions.
    pub fn top1_correct(&self) -> usize {
        self.sessions
            .iter()
            .flat_map(|s| &s.incidents)
            .filter(|i| i.top1_correct)
            .count()
    }

    /// Correct top-1 verdicts / episodes (misses count against accuracy).
    pub fn online_top1_accuracy(&self) -> f64 {
        let n = self.episodes();
        if n == 0 {
            return 0.0;
        }
        self.top1_correct() as f64 / n as f64
    }

    /// False alarms across all sessions.
    pub fn false_alarms(&self) -> usize {
        self.sessions.iter().map(|s| s.false_alarms).sum()
    }

    /// Mean time-to-detect over detected episodes.
    pub fn mean_time_to_detect_secs(&self) -> Option<f64> {
        mean(
            self.sessions
                .iter()
                .flat_map(|s| &s.incidents)
                .filter_map(|i| i.time_to_detect_secs),
        )
    }

    /// Mean time-to-localize over localized episodes.
    pub fn mean_time_to_localize_secs(&self) -> Option<f64> {
        mean(
            self.sessions
                .iter()
                .flat_map(|s| &s.incidents)
                .filter_map(|i| i.time_to_localize_secs),
        )
    }
}

fn mean(values: impl Iterator<Item = f64>) -> Option<f64> {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        None
    } else {
        Some(sum / n as f64)
    }
}

/// The full production run report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProductionReport {
    /// Timing mode the run used.
    pub mode: Mode,
    /// Root seed.
    pub seed: u64,
    /// Two-sample test driving live detection.
    pub detector: String,
    /// Per-application results.
    pub apps: Vec<ProductionAppReport>,
}

impl ProductionReport {
    /// Incident episodes across all applications.
    pub fn total_episodes(&self) -> usize {
        self.apps.iter().map(ProductionAppReport::episodes).sum()
    }

    /// Faults injected across all applications.
    pub fn total_injected_faults(&self) -> usize {
        self.apps
            .iter()
            .map(ProductionAppReport::injected_faults)
            .sum()
    }

    /// Aggregate online top-1 accuracy over every episode.
    pub fn online_top1_accuracy(&self) -> f64 {
        let n = self.total_episodes();
        if n == 0 {
            return 0.0;
        }
        let correct: usize = self
            .apps
            .iter()
            .map(ProductionAppReport::top1_correct)
            .sum();
        correct as f64 / n as f64
    }

    /// Renders the per-incident log and the per-app summary.
    pub fn render(&self) -> String {
        let mut incidents = TextTable::new(vec![
            "App", "Session", "Episode", "Services", "Injected", "TTD(s)", "TTL(s)", "Top-1",
            "Correct",
        ]);
        for app in &self.apps {
            for (si, session) in app.sessions.iter().enumerate() {
                for inc in &session.incidents {
                    incidents.row(vec![
                        app.app.clone(),
                        si.to_string(),
                        inc.episode.to_string(),
                        inc.services.join("+"),
                        format!("{:.0}s", inc.injected_start_secs),
                        inc.time_to_detect_secs
                            .map_or("miss".into(), |t| format!("{t:.1}")),
                        inc.time_to_localize_secs
                            .map_or("-".into(), |t| format!("{t:.1}")),
                        inc.top1.clone().unwrap_or_else(|| "-".into()),
                        if inc.top1_correct { "yes" } else { "no" }.into(),
                    ]);
                }
            }
        }

        let mut summary = TextTable::new(vec![
            "App",
            "Episodes",
            "Detected",
            "FalseAlarms",
            "MeanTTD(s)",
            "MeanTTL(s)",
            "OnlineTop1",
            "OfflineAcc",
        ]);
        for app in &self.apps {
            summary.row(vec![
                app.app.clone(),
                app.episodes().to_string(),
                app.detected().to_string(),
                app.false_alarms().to_string(),
                app.mean_time_to_detect_secs()
                    .map_or("-".into(), |t| format!("{t:.1}")),
                app.mean_time_to_localize_secs()
                    .map_or("-".into(), |t| format!("{t:.1}")),
                format!("{:.2}", app.online_top1_accuracy()),
                format!("{:.2}", app.offline_accuracy),
            ]);
        }
        format!(
            "Per-incident log ({} detection):\n{}\nSummary:\n{}",
            self.detector,
            incidents.render(),
            summary.render()
        )
    }
}

/// Builds the three session schedules for an application: evenly spaced
/// single outages, back-to-back single outages, and a mix ending in an
/// overlapping double outage. All spans are multiples of the hop so every
/// onset sits on a window boundary; constants scale with the mode's
/// window geometry.
fn session_schedules(targets: &[ServiceId], cfg: &OnlineConfig) -> Vec<IncidentSchedule> {
    let hop = cfg.windows.hop;
    let hops = |n: u64| SimDuration::from_nanos(hop.as_nanos() * n);
    let first = SimTime::ZERO + cfg.warmup + cfg.windows.window + hops(16);
    let fault_len = hops(10);
    let target = |i: usize| targets[i % targets.len()];

    let single = |start: SimTime, idx: usize| {
        Episode::single(start, target(idx), FaultKind::ServiceUnavailable, fault_len)
    };

    // Session 0: four outages with generous spacing.
    let spaced = IncidentSchedule::new(
        (0..4)
            .map(|k| single(first + hops(32 * k as u64), k))
            .collect(),
    );

    // Session 1: four back-to-back outages — the next begins six hops
    // after the previous lifts, while the detector is still draining.
    let tight = IncidentSchedule::new(
        (0..4)
            .map(|k| single(first + hops(16 * k as u64), 4 + k))
            .collect(),
    );

    // Session 2: two singles, then two faults overlapping in time —
    // one incident episode with two root causes.
    let overlap_start = first + hops(64);
    let overlapping = Episode {
        start: overlap_start,
        faults: vec![
            EpisodeFault {
                service: target(10),
                fault: FaultKind::ServiceUnavailable,
                offset: SimDuration::from_secs(0),
                duration: fault_len,
            },
            EpisodeFault {
                service: target(13),
                fault: FaultKind::ServiceUnavailable,
                offset: hops(3),
                duration: fault_len,
            },
        ],
    };
    let mixed = IncidentSchedule::new(vec![
        single(first, 8),
        single(first + hops(32), 9),
        overlapping,
    ]);

    vec![spaced, tight, mixed]
}

/// Runs the production experiment.
///
/// # Errors
///
/// Propagates training, registry, and session errors.
pub fn production(opts: &ProductionOptions) -> Result<ProductionReport> {
    let registry = ModelRegistry::open(&opts.registry_root)?;
    let online_cfg = opts.online_cfg();
    let catalog = MetricCatalog::derived_all();
    let mut apps = Vec::new();

    for (app_idx, app) in [icfl_apps::causalbench(), icfl_apps::robot_shop()]
        .into_iter()
        .enumerate()
    {
        // Train offline (Algorithm 1) and persist through the registry;
        // everything below runs on the *reloaded* model.
        let train_cfg = opts.mode.train_cfg(opts.seed).with_threads(opts.threads);
        let campaign = CampaignRun::execute(&app, &train_cfg)?;
        let trained = campaign.learn(&catalog, RunConfig::default_detector())?;
        let meta = ModelMeta {
            app: app.name.clone(),
            seed: opts.seed,
            catalog: catalog.name().to_owned(),
            detector: RunConfig::default_detector().kind.to_string(),
            num_services: trained.num_services(),
            targets: campaign
                .targets()
                .iter()
                .map(|&t| campaign.service_names()[t.index()].clone())
                .collect(),
            note: "production experiment".into(),
        };
        let model_version = registry.save(&app.name, meta, &trained)?;
        let record = registry.load_latest(&app.name)?;
        let model = record.model;

        // Offline reference: Table-I-style accuracy at 1× load.
        let eval_cfg = opts.mode.eval_cfg(opts.seed).with_threads(opts.threads);
        let suite = EvalSuite::execute(&app, campaign.targets(), &eval_cfg)?;
        let offline_accuracy = suite.evaluate(&model)?.accuracy;

        // Online sessions: independent seeded simulations, fanned out.
        let schedules = session_schedules(campaign.targets(), &online_cfg);
        let threads = train_cfg.resolved_threads(schedules.len());
        let outcomes = parallel_map(schedules.len(), threads, |i| {
            OnlineSession::run(
                &app,
                &model,
                &schedules[i],
                &online_cfg,
                icfl_scenario::seeds::production_session(opts.seed, app_idx, i),
            )
        });
        let mut sessions = Vec::with_capacity(outcomes.len());
        for outcome in outcomes {
            sessions.push(outcome?);
        }

        apps.push(ProductionAppReport {
            app: app.name.clone(),
            model_version,
            offline_accuracy,
            sessions,
        });
    }

    Ok(ProductionReport {
        mode: opts.mode,
        seed: opts.seed,
        detector: if opts.anderson_darling {
            TestKind::AndersonDarling.to_string()
        } else {
            TestKind::KolmogorovSmirnov.to_string()
        },
        apps,
    })
}
