//! Gray-failure and cascade localization at *instance* granularity.
//!
//! Two scenarios beyond the paper's service-level protocol:
//!
//! * **Gray replica** — one replica of a load-balanced service degrades
//!   (slow + flaky) while its siblings stay healthy. Service-aggregated
//!   counters dilute the shift by `1/replicas`; the per-row pipeline
//!   ([`InstanceCampaignRun`]) localizes the exact instance.
//! * **Overload cascade** — open-loop bursty traffic (flash crowd)
//!   overflows the front door's queue, which triggers a secondary gray
//!   fault on one replica of the downstream service
//!   ([`icfl_faults::CascadeRule`]). The symptom starts at a *victim*; the
//!   question is whether Algorithm 2 still names the degraded replica.
//!   Training and evaluation both run under the same bursty arrival model,
//!   so the flash crowds are common mode and cancel in the KS comparisons.

use crate::mode::Mode;
use crate::render::TextTable;
use icfl_core::{
    parallel_map, CausalModel, InstanceCampaignRun, InstanceEvalSuite, MatchRule, Result, RunConfig,
};
use icfl_faults::{CascadeRule, InterventionTrace};
use icfl_loadgen::ArrivalModel;
use icfl_micro::{FaultKind, ServiceId, TargetId};
use icfl_scenario::{seeds, RecorderTap, Scenario};
use icfl_sim::{SimDuration, SimTime};
use icfl_telemetry::{MetricCatalog, Recorder};
use serde::{Deserialize, Serialize};

/// The gray fault both scenarios inject: 8× latency, 30% spurious errors
/// on the targeted replica only.
pub fn gray_fault() -> FaultKind {
    FaultKind::DegradedReplica {
        latency_factor: 8.0,
        error_prob: 0.3,
    }
}

/// One instance-granularity measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GrayFailRow {
    /// Scenario label (`gray-bN` / `cascade-bN`).
    pub scenario: String,
    /// Replica rows in the topology (services counted per instance).
    pub rows: usize,
    /// Evaluation cases scored.
    pub cases: usize,
    /// Fraction of cases whose top-1 row was the exact degraded instance.
    pub instance_top1: f64,
    /// Fraction whose top-1 row belonged to the degraded service (the
    /// service-level fallback; never below `instance_top1`).
    pub service_top1: f64,
}

/// The gray/cascade sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GrayFail {
    /// One row per scenario.
    pub rows: Vec<GrayFailRow>,
}

impl GrayFail {
    /// Renders the sweep.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "Scenario",
            "Rows",
            "Cases",
            "Instance top-1",
            "Service top-1",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.scenario.clone(),
                r.rows.to_string(),
                r.cases.to_string(),
                format!("{:.2}", r.instance_top1),
                format!("{:.2}", r.service_top1),
            ]);
        }
        t.render()
    }
}

fn gray_cfg(mode: Mode, seed: u64) -> RunConfig {
    mode.train_cfg(seed).with_fault(gray_fault())
}

/// The gray-replica scenario: train an instance-granularity model on
/// `gray_app(replicas)` (closed-loop load, gray fault per row), then score
/// fresh per-row production cases at instance and service level.
///
/// # Errors
///
/// Propagates pipeline errors.
pub fn gray_measure(mode: Mode, seed: u64, replicas: usize) -> Result<GrayFailRow> {
    let app = icfl_apps::gray_app(replicas);
    let campaign = InstanceCampaignRun::execute(&app, &gray_cfg(mode, seed))?;
    let model = campaign.learn(&MetricCatalog::derived_all(), RunConfig::default_detector())?;
    let suite =
        InstanceEvalSuite::execute(&app, &campaign, &gray_cfg(mode, seeds::eval_phase(seed)))?;
    let summary = suite.evaluate(&model)?;
    Ok(GrayFailRow {
        scenario: app.name.clone(),
        rows: campaign.targets().len(),
        cases: summary.cases.len(),
        instance_top1: summary.instance_top1,
        service_top1: summary.service_top1,
    })
}

/// The bursty open-loop arrival both cascade phases run under: a flat
/// 100 rps base with a 25× flash crowd in the last 10 s of every 80 s
/// interval — enough to overflow the front door's 512-slot queue.
fn cascade_arrival() -> ArrivalModel {
    ArrivalModel::Bursty {
        base_rps_per_replica: 100.0,
        diurnal_amplitude: 0.0,
        diurnal_period: SimDuration::from_secs(600),
        spike_every: SimDuration::from_secs(80),
        spike_duration: SimDuration::from_secs(10),
        spike_factor: 25.0,
    }
}

/// Cascade-scenario phase geometry (quick-mode timing): training phases
/// observe `[10 s, 130 s)` — one flash crowd at `[70 s, 80 s)` — and
/// evaluation observes `[80 s, 200 s)` of a run whose first flash crowd
/// triggers the cascade.
const CASCADE_PHASE: (u64, u64) = (10, 130);
const CASCADE_EVAL_WINDOW: (u64, u64) = (80, 200);

/// One bursty phase at instance granularity: `gray_app` under
/// [`cascade_arrival`] with `fault` (if any) held on `target` for the
/// whole observed phase.
fn bursty_phase(
    app: &icfl_apps::App,
    cfg: &RunConfig,
    fault: Option<TargetId>,
) -> Result<Recorder> {
    let (from, to) = (
        SimTime::from_secs(CASCADE_PHASE.0),
        SimTime::from_secs(CASCADE_PHASE.1),
    );
    let mut builder = Scenario::builder(app, cfg.seed).arrival(cascade_arrival());
    let trace = InterventionTrace::new();
    if let Some(target) = fault {
        builder = builder.target_fault_between(target, gray_fault(), from, to, &trace);
    }
    let (mut scenario, recorder) =
        builder.build_with(RecorderTap::instances((from, to), cfg.windows))?;
    scenario.run_until(to);
    Ok(recorder)
}

/// Learns an instance-granularity model for `gray_app(replicas)` under the
/// bursty arrival: a baseline phase plus one gray-fault phase per replica
/// row, fanned out over the worker pool.
fn learn_bursty_model(app: &icfl_apps::App, cfg: &RunConfig) -> Result<CausalModel> {
    let (cluster, _) = app.build(cfg.seed)?;
    let targets = cluster.row_targets();
    drop(cluster);
    let jobs = targets.len() + 1;
    let threads = cfg.resolved_threads(jobs);
    let recorders = parallel_map(jobs, threads, |i| -> Result<Recorder> {
        if i == 0 {
            bursty_phase(app, cfg, None)
        } else {
            let case_cfg = RunConfig {
                seed: seeds::campaign_fault(cfg.seed, i - 1),
                ..cfg.clone()
            };
            bursty_phase(app, &case_cfg, Some(targets[i - 1]))
        }
    });
    let catalog = MetricCatalog::derived_all();
    let mut baseline = None;
    let mut faults = Vec::with_capacity(targets.len());
    for (i, rec) in recorders.into_iter().enumerate() {
        let ds = rec?.dataset(&catalog)?;
        if i == 0 {
            baseline = Some(ds);
        } else {
            faults.push((ServiceId::from_index(i - 1), ds));
        }
    }
    CausalModel::learn(
        &catalog,
        RunConfig::default_detector(),
        &baseline.expect("job 0 is the baseline"),
        &faults,
    )
}

/// The overload-cascade scenario. Trains under the bursty arrival, then
/// runs `cases` evaluation simulations in which the first flash crowd
/// overflows the front door (service `A`), triggering a
/// [`CascadeRule`] that degrades the middle replica of `B`; each case is
/// scored on whether Algorithm 2's top-1 row is that replica. A case
/// whose cascade never fires counts as a miss.
///
/// # Errors
///
/// Propagates pipeline errors.
pub fn cascade_measure(
    mode: Mode,
    seed: u64,
    replicas: usize,
    cases: usize,
) -> Result<GrayFailRow> {
    let _ = mode; // cascade timing is fixed quick-scale geometry
    let app = icfl_apps::gray_app(replicas);
    let cfg = gray_cfg(Mode::Quick, seed);
    let model = learn_bursty_model(&app, &cfg)?;

    let front = ServiceId::from_index(0);
    let b = ServiceId::from_index(1);
    let victim_replica = (replicas / 2) as u32;
    let target = TargetId::Instance(b, victim_replica);
    let injected_row = 1 + replicas / 2;

    let outcomes = parallel_map(cases, cfg.resolved_threads(cases), |i| -> Result<_> {
        let case_seed = seeds::eval_case(seed, i);
        let trace = InterventionTrace::new();
        let rule = CascadeRule::new(
            front,
            100,
            target,
            gray_fault(),
            SimDuration::from_secs(150),
        );
        let window = (
            SimTime::from_secs(CASCADE_EVAL_WINDOW.0),
            SimTime::from_secs(CASCADE_EVAL_WINDOW.1),
        );
        let (mut scenario, recorder) = Scenario::builder(&app, case_seed)
            .arrival(cascade_arrival())
            .cascade(rule, SimTime::from_secs(100), &trace)
            .build_with(RecorderTap::instances(window, cfg.windows))?;
        scenario.run_until(window.1);
        if trace.is_empty() {
            icfl_obs::warn!("cascade case {i}: trigger never fired");
            return Ok(None);
        }
        let ds = recorder.dataset(model.catalog())?;
        let loc = model.localize_with(&ds, MatchRule::IntersectionSize)?;
        Ok(loc.ranked().first().map(|&(s, _)| s.index()))
    });
    let mut instance_hits = 0usize;
    let mut service_hits = 0usize;
    for outcome in outcomes {
        if let Some(row) = outcome? {
            if row == injected_row {
                instance_hits += 1;
            }
            if row >= 1 && row <= replicas {
                service_hits += 1;
            }
        }
    }
    Ok(GrayFailRow {
        scenario: format!("cascade-b{replicas}"),
        rows: replicas + 2,
        cases,
        instance_top1: instance_hits as f64 / cases.max(1) as f64,
        service_top1: service_hits as f64 / cases.max(1) as f64,
    })
}

/// The full gray/cascade sweep: gray replicas at two fan-outs plus the
/// overload cascade.
///
/// # Errors
///
/// Propagates pipeline errors.
pub fn grayfail(mode: Mode, seed: u64) -> Result<GrayFail> {
    let cases = match mode {
        Mode::Quick => 5,
        Mode::Paper => 10,
    };
    Ok(GrayFail {
        rows: vec![
            gray_measure(mode, seed, 2)?,
            gray_measure(mode, seed, 3)?,
            cascade_measure(mode, seed, 3, cases)?,
        ],
    })
}

/// The CI smoke slice: one gray scenario and one cascade scenario at
/// instance granularity — the pull-request gate for the per-replica
/// pipeline (flattened scrapes, row-indexed learning, cascade arming,
/// bursty open-loop load).
///
/// # Errors
///
/// Propagates pipeline errors.
pub fn grayfail_smoke(seed: u64) -> Result<GrayFail> {
    Ok(GrayFail {
        rows: vec![
            gray_measure(Mode::Quick, seed, 3)?,
            cascade_measure(Mode::Quick, seed, 3, 3)?,
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_formats_rows() {
        let g = GrayFail {
            rows: vec![GrayFailRow {
                scenario: "gray-b3".into(),
                rows: 5,
                cases: 5,
                instance_top1: 1.0,
                service_top1: 1.0,
            }],
        };
        let out = g.render();
        assert!(out.contains("gray-b3"));
        assert!(out.contains("1.00"));
    }

    #[test]
    fn gray_scenario_localizes_the_instance() {
        let row = gray_measure(Mode::Quick, 42, 3).unwrap();
        assert_eq!(row.rows, 5);
        assert!(
            row.instance_top1 >= 0.9,
            "gray top-1 below the bar: {row:?}"
        );
        assert!(row.service_top1 >= row.instance_top1);
    }

    #[test]
    fn cascade_scenario_names_the_victim_replica() {
        let row = cascade_measure(Mode::Quick, 42, 3, 2).unwrap();
        assert_eq!(row.cases, 2);
        assert!(
            row.instance_top1 > 0.0,
            "cascade never localized the degraded replica: {row:?}"
        );
    }
}
