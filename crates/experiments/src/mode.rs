//! Experiment modes and command-line plumbing shared by the binaries.

use icfl_core::RunConfig;
use serde::{Deserialize, Serialize};

/// How faithfully to reproduce the paper's timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Mode {
    /// 2-minute phases with 10 s/5 s windows — minutes of wall-clock,
    /// same statistical power per phase (23 windows vs the paper's 19).
    #[default]
    Quick,
    /// The paper's protocol: 10-minute phases, 60 s/30 s hopping windows.
    Paper,
}

impl Mode {
    /// Training-run configuration at 1× load.
    pub fn train_cfg(self, seed: u64) -> RunConfig {
        match self {
            Mode::Quick => RunConfig::quick(seed),
            Mode::Paper => RunConfig::paper(seed),
        }
    }

    /// Evaluation-run configuration (same timing, fresh seed stream).
    pub fn eval_cfg(self, seed: u64) -> RunConfig {
        // Evaluation seeds are decorrelated from training by construction
        // in EvalSuite; offsetting here keeps even the first case distinct.
        self.train_cfg(seed ^ 0x00e1_7ab1_e5ee_d5ee)
    }
}

impl std::fmt::Display for Mode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Mode::Quick => write!(f, "quick"),
            Mode::Paper => write!(f, "paper"),
        }
    }
}

/// Options parsed from an experiment binary's command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CliOptions {
    /// Timing mode.
    pub mode: Mode,
    /// Root seed.
    pub seed: u64,
    /// Also emit the structured result as JSON on stdout.
    pub json: bool,
}

impl CliOptions {
    /// Parses `--paper` / `--quick`, `--seed N`, and `--json` from raw
    /// arguments (binary name excluded). Unknown arguments are rejected.
    ///
    /// # Errors
    ///
    /// Returns a usage string on unknown flags or malformed values.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<CliOptions, String> {
        let mut opts = CliOptions { mode: Mode::Quick, seed: 42, json: false };
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--paper" => opts.mode = Mode::Paper,
                "--quick" => opts.mode = Mode::Quick,
                "--json" => opts.json = true,
                "--seed" => {
                    let v = it.next().ok_or("--seed needs a value")?;
                    opts.seed = v.parse().map_err(|_| format!("bad seed: {v}"))?;
                }
                other => {
                    return Err(format!(
                        "unknown argument {other}; usage: [--quick|--paper] [--seed N] [--json]"
                    ))
                }
            }
        }
        Ok(opts)
    }

    /// Parses the process arguments, exiting with a usage message on error.
    pub fn from_env() -> CliOptions {
        match CliOptions::parse(std::env::args().skip(1)) {
            Ok(o) => o,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CliOptions, String> {
        CliOptions::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_are_quick_42() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.mode, Mode::Quick);
        assert_eq!(o.seed, 42);
        assert!(!o.json);
    }

    #[test]
    fn flags_parse() {
        let o = parse(&["--paper", "--seed", "7", "--json"]).unwrap();
        assert_eq!(o.mode, Mode::Paper);
        assert_eq!(o.seed, 7);
        assert!(o.json);
    }

    #[test]
    fn unknown_flag_rejected() {
        assert!(parse(&["--what"]).is_err());
        assert!(parse(&["--seed"]).is_err());
        assert!(parse(&["--seed", "abc"]).is_err());
    }

    #[test]
    fn mode_configs_differ() {
        let q = Mode::Quick.train_cfg(1);
        let p = Mode::Paper.train_cfg(1);
        assert!(p.campaign.baseline > q.campaign.baseline);
        assert_eq!(Mode::Quick.to_string(), "quick");
        assert_eq!(Mode::Paper.to_string(), "paper");
    }

    #[test]
    fn eval_cfg_uses_decorrelated_seed() {
        let t = Mode::Quick.train_cfg(1);
        let e = Mode::Quick.eval_cfg(1);
        assert_ne!(t.seed, e.seed);
    }
}
