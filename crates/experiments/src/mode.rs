//! Experiment modes and command-line plumbing shared by the binaries.

use icfl_core::RunConfig;
use serde::{Deserialize, Serialize};

/// How faithfully to reproduce the paper's timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Mode {
    /// 2-minute phases with 10 s/5 s windows — minutes of wall-clock,
    /// same statistical power per phase (23 windows vs the paper's 19).
    #[default]
    Quick,
    /// The paper's protocol: 10-minute phases, 60 s/30 s hopping windows.
    Paper,
}

impl Mode {
    /// Training-run configuration at 1× load.
    pub fn train_cfg(self, seed: u64) -> RunConfig {
        match self {
            Mode::Quick => RunConfig::quick(seed),
            Mode::Paper => RunConfig::paper(seed),
        }
    }

    /// Evaluation-run configuration (same timing, fresh seed stream).
    pub fn eval_cfg(self, seed: u64) -> RunConfig {
        // Evaluation seeds are decorrelated from training by construction
        // in EvalSuite; salting here keeps even the first case distinct.
        self.train_cfg(icfl_scenario::seeds::eval_phase(seed))
    }
}

impl std::fmt::Display for Mode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Mode::Quick => write!(f, "quick"),
            Mode::Paper => write!(f, "paper"),
        }
    }
}

/// Options parsed from an experiment binary's command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliOptions {
    /// Timing mode.
    pub mode: Mode,
    /// Root seed.
    pub seed: u64,
    /// Also emit the structured result as JSON on stdout.
    pub json: bool,
    /// Worker threads for the parallel campaign/evaluation executor
    /// (`0` = auto; see [`RunConfig::resolved_threads`]).
    pub threads: usize,
    /// Directory to render profiling artifacts into (`--profile <dir>`):
    /// the per-phase breakdown, Chrome trace, metrics snapshot, and run
    /// manifests.
    pub profile: Option<std::path::PathBuf>,
    /// Log-level override from `--quiet`/`-v`/`-vv` (`None` leaves the
    /// `ICFL_LOG` environment default in effect).
    pub log: Option<icfl_obs::Level>,
}

impl CliOptions {
    /// The defaults every flag set starts from: quick mode, seed 42.
    pub fn defaults() -> CliOptions {
        CliOptions {
            mode: Mode::Quick,
            seed: 42,
            json: false,
            threads: 0,
            profile: None,
            log: None,
        }
    }

    /// Parses `--paper` / `--quick`, `--seed N`, `--threads N`, `--json`,
    /// `--profile DIR`, and the log-level flags (`--quiet`/`-q`, `-v`,
    /// `-vv`) from raw arguments (binary name excluded). Unknown
    /// arguments are rejected.
    ///
    /// # Errors
    ///
    /// Returns a usage string on unknown flags or malformed values.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<CliOptions, String> {
        let mut opts = CliOptions::defaults();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--paper" => opts.mode = Mode::Paper,
                "--quick" => opts.mode = Mode::Quick,
                "--json" => opts.json = true,
                "--quiet" | "-q" => opts.log = Some(icfl_obs::Level::Error),
                "-v" => opts.log = Some(icfl_obs::Level::Debug),
                "-vv" => opts.log = Some(icfl_obs::Level::Trace),
                "--seed" => {
                    let v = it.next().ok_or("--seed needs a value")?;
                    opts.seed = v.parse().map_err(|_| format!("bad seed: {v}"))?;
                }
                "--threads" => {
                    let v = it.next().ok_or("--threads needs a value")?;
                    opts.threads = v.parse().map_err(|_| format!("bad thread count: {v}"))?;
                }
                "--profile" => {
                    let v = it.next().ok_or("--profile needs a directory")?;
                    opts.profile = Some(std::path::PathBuf::from(v));
                }
                other => {
                    return Err(format!(
                        "unknown argument {other}; usage: [--quick|--paper] [--seed N] \
                         [--threads N] [--json] [--profile DIR] [--quiet|-q] [-v] [-vv]"
                    ))
                }
            }
        }
        Ok(opts)
    }

    /// Parses the process arguments, exiting with a usage message on error.
    ///
    /// A `--threads N` argument is exported as the `ICFL_THREADS`
    /// environment variable so every [`RunConfig`] built anywhere in the
    /// experiment (training, evaluation, baselines) resolves to the same
    /// worker count without threading the value through each call site.
    /// A log-level flag is applied to the global `icfl-obs` logger (flags
    /// win over the `ICFL_LOG` environment variable).
    pub fn from_env() -> CliOptions {
        match CliOptions::parse(std::env::args().skip(1)) {
            Ok(o) => {
                if o.threads > 0 {
                    std::env::set_var("ICFL_THREADS", o.threads.to_string());
                }
                if let Some(level) = o.log {
                    icfl_obs::logger::set_level(level);
                }
                o
            }
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// The worker count the executor will actually use for a large fan-out
    /// (explicit `--threads`, else `ICFL_THREADS`, else the machine's
    /// available parallelism).
    pub fn resolved_threads(&self) -> usize {
        RunConfig::quick(self.seed)
            .with_threads(self.threads)
            .resolved_threads(usize::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CliOptions, String> {
        CliOptions::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_are_quick_42() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.mode, Mode::Quick);
        assert_eq!(o.seed, 42);
        assert!(!o.json);
        assert_eq!(o.threads, 0);
        assert_eq!(o.profile, None);
        assert_eq!(o.log, None);
    }

    #[test]
    fn flags_parse() {
        let o = parse(&["--paper", "--seed", "7", "--threads", "4", "--json"]).unwrap();
        assert_eq!(o.mode, Mode::Paper);
        assert_eq!(o.seed, 7);
        assert!(o.json);
        assert_eq!(o.threads, 4);
    }

    #[test]
    fn observability_flags_parse() {
        let o = parse(&["--profile", "out/prof", "-v"]).unwrap();
        assert_eq!(o.profile.as_deref(), Some(std::path::Path::new("out/prof")));
        assert_eq!(o.log, Some(icfl_obs::Level::Debug));
        assert_eq!(
            parse(&["--quiet"]).unwrap().log,
            Some(icfl_obs::Level::Error)
        );
        assert_eq!(parse(&["-q"]).unwrap().log, Some(icfl_obs::Level::Error));
        assert_eq!(parse(&["-vv"]).unwrap().log, Some(icfl_obs::Level::Trace));
    }

    #[test]
    fn unknown_flag_rejected() {
        assert!(parse(&["--what"]).is_err());
        assert!(parse(&["--seed"]).is_err());
        assert!(parse(&["--seed", "abc"]).is_err());
        assert!(parse(&["--threads"]).is_err());
        assert!(parse(&["--threads", "many"]).is_err());
        assert!(parse(&["--profile"]).is_err());
    }

    #[test]
    fn explicit_threads_resolve_verbatim() {
        let o = parse(&["--threads", "3"]).unwrap();
        assert_eq!(o.resolved_threads(), 3);
    }

    #[test]
    fn mode_configs_differ() {
        let q = Mode::Quick.train_cfg(1);
        let p = Mode::Paper.train_cfg(1);
        assert!(p.campaign.baseline > q.campaign.baseline);
        assert_eq!(Mode::Quick.to_string(), "quick");
        assert_eq!(Mode::Paper.to_string(), "paper");
    }

    #[test]
    fn eval_cfg_uses_decorrelated_seed() {
        let t = Mode::Quick.train_cfg(1);
        let e = Mode::Quick.eval_cfg(1);
        assert_ne!(t.seed, e.seed);
    }
}
