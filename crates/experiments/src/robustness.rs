//! The `robustness` experiment: online localization under degraded
//! telemetry.
//!
//! The paper's platform assumes Prometheus-style scraping, and real scrape
//! streams lose samples, deliver late and out of order, duplicate on
//! retry, and reset counters when pods restart. This experiment turns the
//! seeded [`DegradationConfig`] knobs on over full [`OnlineSession`] runs
//! and measures how detection and localization decay: per application it
//! trains one model on clean telemetry, then replays the *same* seeded
//! incident session under every cell of a drop-rate × counter-reset grid
//! (only the degradation seed stream differs between cells, so deltas are
//! attributable to telemetry loss alone). A final gaps-only arm runs a
//! fault-free session under the heaviest degradation and demands zero
//! false alarms: missing telemetry must read as "no data", never as an
//! incident.

use crate::mode::Mode;
use crate::render::TextTable;
use icfl_core::{parallel_map, CampaignRun, RunConfig};
use icfl_micro::{FaultKind, ServiceId};
use icfl_online::{
    Episode, IncidentSchedule, OnlineConfig, OnlineError, OnlineSession, SessionReport,
};
use icfl_sim::{SimDuration, SimTime};
use icfl_telemetry::{DegradationConfig, MetricCatalog};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors surfaced by the robustness experiment.
#[derive(Debug)]
pub enum RobustnessError {
    /// Offline training failed.
    Core(icfl_core::CoreError),
    /// An online session failed.
    Online(OnlineError),
}

impl fmt::Display for RobustnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RobustnessError::Core(e) => write!(f, "offline training failed: {e}"),
            RobustnessError::Online(e) => write!(f, "online session failed: {e}"),
        }
    }
}

impl std::error::Error for RobustnessError {}

impl From<icfl_core::CoreError> for RobustnessError {
    fn from(e: icfl_core::CoreError) -> Self {
        RobustnessError::Core(e)
    }
}
impl From<OnlineError> for RobustnessError {
    fn from(e: OnlineError) -> Self {
        RobustnessError::Online(e)
    }
}

/// Robustness experiment result alias.
pub type Result<T> = std::result::Result<T, RobustnessError>;

/// The swept scrape-drop rates.
pub const DROP_RATES: [f64; 5] = [0.0, 0.01, 0.05, 0.10, 0.20];

/// Per-scrape counter-reset probability of the reset arm (one pod
/// restart every ~500 scrapes somewhere in the cluster).
pub const RESET_PROB: f64 = 0.002;

/// Tuning of one robustness run.
#[derive(Debug, Clone)]
pub struct RobustnessOptions {
    /// Timing mode (window geometry and phase lengths).
    pub mode: Mode,
    /// Root seed for training and the shared session.
    pub seed: u64,
    /// Worker threads for the cell fan-out (`0` = auto).
    pub threads: usize,
}

impl RobustnessOptions {
    /// Defaults: the given mode and seed, auto threads.
    pub fn new(mode: Mode, seed: u64) -> Self {
        RobustnessOptions {
            mode,
            seed,
            threads: 0,
        }
    }
}

/// One cell of the degradation grid: a session replayed under one
/// degradation configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RobustnessCell {
    /// Scrape-drop probability of this cell.
    pub drop_prob: f64,
    /// Whether counter resets (pod restarts) were injected.
    pub resets: bool,
    /// The session as observed through this cell's telemetry.
    pub session: SessionReport,
}

impl RobustnessCell {
    /// True for the clean reference cell (no degradation at all).
    pub fn is_baseline(&self) -> bool {
        self.drop_prob == 0.0 && !self.resets
    }
}

/// One application's slice of the robustness run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RobustnessAppReport {
    /// Application name.
    pub app: String,
    /// The degradation grid, drop rate ascending within each reset arm.
    pub cells: Vec<RobustnessCell>,
    /// False alarms of the fault-free gaps-only arm (heaviest drop rate,
    /// resets on, nothing injected). Must be zero: gaps are not anomalies.
    pub gaps_only_false_alarms: usize,
    /// Windows the gaps-only arm flagged invalid — evidence the arm
    /// actually starved the detector rather than trivially passing.
    pub gaps_only_invalid_windows: u64,
}

impl RobustnessAppReport {
    /// The clean reference cell.
    pub fn baseline(&self) -> &RobustnessCell {
        self.cells
            .iter()
            .find(|c| c.is_baseline())
            .expect("grid always contains the clean cell")
    }
}

/// The full robustness report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RobustnessReport {
    /// Timing mode the run used.
    pub mode: Mode,
    /// Root seed.
    pub seed: u64,
    /// Per-application grids.
    pub apps: Vec<RobustnessAppReport>,
}

impl RobustnessReport {
    /// False alarms across every gaps-only arm (the headline robustness
    /// claim is that this is zero).
    pub fn gaps_only_false_alarms(&self) -> usize {
        self.apps.iter().map(|a| a.gaps_only_false_alarms).sum()
    }

    /// Renders the per-cell decay table.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(vec![
            "App",
            "Drop",
            "Resets",
            "Detected",
            "FalseAlarms",
            "Top1",
            "MeanTTD(s)",
            "dTTD(s)",
            "MeanTTL(s)",
            "dTTL(s)",
            "InvalidWin",
        ]);
        for app in &self.apps {
            let base = app.baseline();
            let base_ttd = base.session.mean_time_to_detect_secs();
            let base_ttl = base.session.mean_time_to_localize_secs();
            for cell in &app.cells {
                let s = &cell.session;
                let delta = |v: Option<f64>, b: Option<f64>| match (v, b) {
                    (Some(v), Some(b)) => format!("{:+.1}", v - b),
                    _ => "-".into(),
                };
                table.row(vec![
                    app.app.clone(),
                    format!("{:.0}%", cell.drop_prob * 100.0),
                    if cell.resets { "yes" } else { "no" }.into(),
                    format!(
                        "{}/{}",
                        s.incidents.iter().filter(|i| i.detected).count(),
                        s.incidents.len()
                    ),
                    s.false_alarms.to_string(),
                    format!("{:.2}", s.top1_accuracy()),
                    s.mean_time_to_detect_secs()
                        .map_or("-".into(), |t| format!("{t:.1}")),
                    delta(s.mean_time_to_detect_secs(), base_ttd),
                    s.mean_time_to_localize_secs()
                        .map_or("-".into(), |t| format!("{t:.1}")),
                    delta(s.mean_time_to_localize_secs(), base_ttl),
                    s.degraded.invalid_windows.to_string(),
                ]);
            }
        }
        let mut gaps = String::new();
        for app in &self.apps {
            gaps.push_str(&format!(
                "  {}: gaps-only arm — {} false alarms, {} invalid windows\n",
                app.app, app.gaps_only_false_alarms, app.gaps_only_invalid_windows
            ));
        }
        format!(
            "Degradation grid:\n{}\nFault-free arm:\n{gaps}",
            table.render()
        )
    }

    /// The grid as CSV (one row per cell, plus the gaps-only arms).
    pub fn to_csv(&self) -> String {
        let mut csv = String::from(
            "app,drop_prob,resets,episodes,detected,false_alarms,top1_accuracy,\
             mean_ttd_secs,mean_ttl_secs,late_dropped,duplicates_coalesced,\
             resets_detected,invalid_windows\n",
        );
        let opt = |v: Option<f64>| v.map_or(String::new(), |t| format!("{t:.3}"));
        for app in &self.apps {
            for cell in &app.cells {
                let s = &cell.session;
                csv.push_str(&format!(
                    "{},{},{},{},{},{},{:.4},{},{},{},{},{},{}\n",
                    app.app,
                    cell.drop_prob,
                    cell.resets,
                    s.incidents.len(),
                    s.incidents.iter().filter(|i| i.detected).count(),
                    s.false_alarms,
                    s.top1_accuracy(),
                    opt(s.mean_time_to_detect_secs()),
                    opt(s.mean_time_to_localize_secs()),
                    s.degraded.late_dropped,
                    s.degraded.duplicates_coalesced,
                    s.degraded.resets_detected,
                    s.degraded.invalid_windows,
                ));
            }
            csv.push_str(&format!(
                "{},gaps_only,true,0,0,{},,,,,,,{}\n",
                app.app, app.gaps_only_false_alarms, app.gaps_only_invalid_windows
            ));
        }
        csv
    }
}

/// The shared incident schedule every cell replays: three spaced
/// single-service outages, onsets on window boundaries.
fn robustness_schedule(targets: &[ServiceId], cfg: &OnlineConfig) -> IncidentSchedule {
    let hop = cfg.windows.hop;
    let hops = |n: u64| SimDuration::from_nanos(hop.as_nanos() * n);
    let first = SimTime::ZERO + cfg.warmup + cfg.windows.window + hops(16);
    IncidentSchedule::new(
        (0..3)
            .map(|k| {
                Episode::single(
                    first + hops(28 * k as u64),
                    targets[k % targets.len()],
                    FaultKind::ServiceUnavailable,
                    hops(10),
                )
            })
            .collect(),
    )
}

/// The degradation configuration of one grid cell. Cells with any loss
/// also carry mild delivery jitter and duplicates — real scrape paths
/// that drop samples also reorder and retry them.
fn cell_config(deg_seed: u64, drop_prob: f64, resets: bool) -> DegradationConfig {
    let mut cfg = DegradationConfig::none(deg_seed).with_drop(drop_prob);
    if drop_prob > 0.0 {
        cfg = cfg.with_delay(0.05, 2).with_duplicates(0.03);
    }
    if resets {
        cfg = cfg.with_resets(RESET_PROB);
    }
    cfg
}

/// Runs the robustness experiment.
///
/// # Errors
///
/// Propagates training and session errors.
pub fn robustness(opts: &RobustnessOptions) -> Result<RobustnessReport> {
    let online_cfg = match opts.mode {
        Mode::Quick => OnlineConfig::quick(),
        Mode::Paper => OnlineConfig::paper(),
    };
    let catalog = MetricCatalog::derived_all();
    let mut apps = Vec::new();

    for (app_idx, app) in [icfl_apps::causalbench(), icfl_apps::robot_shop()]
        .into_iter()
        .enumerate()
    {
        // One clean-telemetry model per app; every cell below is served
        // by the same model, as production would be after a scrape-path
        // regression.
        let train_cfg = opts.mode.train_cfg(opts.seed).with_threads(opts.threads);
        let campaign = CampaignRun::execute(&app, &train_cfg)?;
        let model = campaign.learn(&catalog, RunConfig::default_detector())?;
        let schedule = robustness_schedule(campaign.targets(), &online_cfg);

        // All cells replay the same seeded session; only the degradation
        // stream (its own salted seed) differs from cell to cell.
        let session_seed = icfl_scenario::seeds::production_session(opts.seed, app_idx, 9);
        let deg_seed = icfl_scenario::seeds::degradation(session_seed);
        let grid: Vec<(f64, bool)> = [false, true]
            .into_iter()
            .flat_map(|resets| DROP_RATES.into_iter().map(move |d| (d, resets)))
            .collect();

        let threads = train_cfg.resolved_threads(grid.len());
        let outcomes = parallel_map(grid.len(), threads, |i| {
            let (drop_prob, resets) = grid[i];
            let deg = cell_config(deg_seed, drop_prob, resets);
            let mut cfg = online_cfg.clone();
            cfg.degrade = if deg.is_none() { None } else { Some(deg) };
            OnlineSession::run(&app, &model, &schedule, &cfg, session_seed)
        });
        let mut cells = Vec::with_capacity(outcomes.len());
        for (&(drop_prob, resets), outcome) in grid.iter().zip(outcomes) {
            cells.push(RobustnessCell {
                drop_prob,
                resets,
                session: outcome?,
            });
        }

        // Gaps-only arm: heaviest degradation, zero faults. Stretch the
        // drain so the fault-free session still covers a long stretch of
        // detection ticks under dark telemetry.
        let mut gaps_cfg = online_cfg.clone();
        gaps_cfg.degrade = Some(cell_config(deg_seed, *DROP_RATES.last().unwrap(), true));
        gaps_cfg.drain = SimDuration::from_nanos(online_cfg.windows.hop.as_nanos() * 80);
        let gaps = OnlineSession::run(
            &app,
            &model,
            &IncidentSchedule::new(Vec::new()),
            &gaps_cfg,
            session_seed,
        )?;

        apps.push(RobustnessAppReport {
            app: app.name.clone(),
            cells,
            gaps_only_false_alarms: gaps.false_alarms,
            gaps_only_invalid_windows: gaps.degraded.invalid_windows,
        });
    }

    Ok(RobustnessReport {
        mode: opts.mode,
        seed: opts.seed,
        apps,
    })
}
