//! Minimal fixed-width text-table renderer for experiment reports.

/// A simple text table with a header row and aligned columns.
///
/// # Examples
///
/// ```
/// use icfl_experiments::TextTable;
///
/// let mut t = TextTable::new(vec!["App", "Load", "Accuracy"]);
/// t.row(vec!["CausalBench".into(), "1x".into(), "1.00".into()]);
/// let s = t.render();
/// assert!(s.contains("CausalBench"));
/// assert!(s.lines().count() >= 3);
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> TextTable {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Rows shorter than the header are padded with blanks;
    /// longer rows are truncated.
    pub fn row(&mut self, cells: Vec<String>) -> &mut TextTable {
        let mut cells = cells;
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(cell);
                line.push_str(&" ".repeat(widths[c] - cell.len()));
            }
            line.trim_end().to_owned()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["a", "bb"]);
        t.row(vec!["xxxx".into(), "y".into()]);
        t.row(vec!["z".into(), "wwwww".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // Column widths are consistent: "bb" starts at the same offset.
        let off_header = lines[0].find("bb").unwrap();
        let off_row = lines[3].find("wwwww").unwrap();
        assert_eq!(off_header, off_row);
    }

    #[test]
    fn pads_and_truncates_rows() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
        t.row(vec!["1".into(), "2".into(), "extra".into()]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let s = t.render();
        assert!(!s.contains("extra"));
    }
}
