//! The forensics gate: every confirmed incident must carry a complete,
//! byte-deterministic [`EvidenceChain`].
//!
//! Per application it trains a quick Algorithm-1 model, runs scheduled
//! outage sessions through [`OnlineSession::run_with_forensics`], and
//! holds the chains to the invariants the `/explain` surface relies on:
//!
//! 1. **Coverage** — every confirmed incident (detections and false
//!    alarms alike) has a chain; chains carry the current format
//!    version, a non-empty window ring, and the detector transitions
//!    that confirmed the incident.
//! 2. **Score accounting** — for every localized incident, each
//!    candidate's per-metric contribution deltas sum to the reported
//!    Algorithm-2 score *bit for bit* (`f64::to_bits` equality, not an
//!    epsilon), and the breakdown targets match the ranked candidates.
//! 3. **Thread invariance** — serialized chains are byte-identical when
//!    the session fan-out runs on 1, 2, and max worker threads.
//! 4. **Replay equivalence** — replaying the recorded scrape trace
//!    through a [`FeedSession`] (as the networked server would) yields
//!    byte-identical chains, including across a mid-stream
//!    checkpoint/restore of the feed — the in-process analog of the
//!    server's SIGKILL + WAL recovery path.
//!
//! Any violated invariant is an error, so the smoke tier doubles as the
//! CI forensics gate.

use crate::mode::Mode;
use crate::render::TextTable;
use icfl_core::{parallel_map, CampaignRun, CausalModel, RunConfig};
use icfl_micro::FaultKind;
use icfl_online::{
    record_trace, Episode, EvidenceChain, FeedConfig, FeedSession, IncidentSchedule, ModelMeta,
    ModelProvenance, OnlineConfig, OnlineError, OnlineSession, CHAIN_FORMAT_VERSION,
};
use icfl_sim::{SimDuration, SimTime};
use icfl_telemetry::MetricCatalog;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors surfaced by the forensics gate.
#[derive(Debug)]
pub enum ForensicsError {
    /// Offline training failed.
    Core(icfl_core::CoreError),
    /// An online session or trace replay failed.
    Online(OnlineError),
    /// A chain invariant did not hold.
    Invariant(String),
}

impl fmt::Display for ForensicsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ForensicsError::Core(e) => write!(f, "offline training failed: {e}"),
            ForensicsError::Online(e) => write!(f, "online session failed: {e}"),
            ForensicsError::Invariant(msg) => write!(f, "chain invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for ForensicsError {}

impl From<icfl_core::CoreError> for ForensicsError {
    fn from(e: icfl_core::CoreError) -> Self {
        ForensicsError::Core(e)
    }
}
impl From<OnlineError> for ForensicsError {
    fn from(e: OnlineError) -> Self {
        ForensicsError::Online(e)
    }
}

/// Forensics gate result alias.
pub type Result<T> = std::result::Result<T, ForensicsError>;

/// Tuning of one forensics run.
#[derive(Debug, Clone)]
pub struct ForensicsOptions {
    /// Timing mode (window geometry and phase lengths).
    pub mode: Mode,
    /// Root seed for training and all sessions.
    pub seed: u64,
}

impl ForensicsOptions {
    /// A run in the given mode.
    pub fn new(mode: Mode, seed: u64) -> Self {
        ForensicsOptions { mode, seed }
    }

    /// The CI smoke tier: quick mode.
    pub fn smoke(seed: u64) -> Self {
        ForensicsOptions::new(Mode::Quick, seed)
    }
}

/// One application's slice of the forensics gate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForensicsRow {
    /// Application name.
    pub app: String,
    /// Scheduled incident episodes across the app's sessions.
    pub episodes: usize,
    /// Confirmed incidents — each one carries a chain.
    pub chains: usize,
    /// Chains with a localization verdict (candidates + breakdowns).
    pub localized: usize,
    /// Candidate score breakdowns whose delta sums were checked
    /// bit-for-bit against the reported Algorithm-2 scores.
    pub breakdowns_checked: usize,
    /// Serialized size of the app's chains, in bytes (the payload the
    /// `/explain` route would serve).
    pub chain_bytes: usize,
    /// Chains were byte-identical across 1/2/max worker threads.
    pub thread_byte_equal: bool,
    /// Trace replay through a `FeedSession` — plus a mid-stream
    /// checkpoint/restore — reproduced the chains byte-identically.
    pub replay_byte_equal: bool,
}

/// The full forensics gate report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForensicsReport {
    /// Timing mode the run used.
    pub mode: Mode,
    /// Root seed.
    pub seed: u64,
    /// Per-application results.
    pub rows: Vec<ForensicsRow>,
}

impl ForensicsReport {
    /// Confirmed incidents (= chains) across all applications.
    pub fn total_chains(&self) -> usize {
        self.rows.iter().map(|r| r.chains).sum()
    }

    /// Renders the per-app summary table.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(vec![
            "App",
            "Episodes",
            "Chains",
            "Localized",
            "Breakdowns",
            "Bytes",
            "ThreadEq",
            "ReplayEq",
        ]);
        for row in &self.rows {
            table.row(vec![
                row.app.clone(),
                row.episodes.to_string(),
                row.chains.to_string(),
                row.localized.to_string(),
                row.breakdowns_checked.to_string(),
                row.chain_bytes.to_string(),
                if row.thread_byte_equal { "yes" } else { "NO" }.into(),
                if row.replay_byte_equal { "yes" } else { "NO" }.into(),
            ]);
        }
        table.render()
    }
}

/// Two single-service outage schedules per app: one evenly spaced, one
/// back-to-back — enough to confirm several incidents per session while
/// staying inside the smoke-tier wall-clock budget.
fn schedules(targets: &[icfl_micro::ServiceId], cfg: &OnlineConfig) -> Vec<IncidentSchedule> {
    let hop = cfg.windows.hop;
    let hops = |n: u64| SimDuration::from_nanos(hop.as_nanos() * n);
    let first = SimTime::ZERO + cfg.warmup + cfg.windows.window + hops(16);
    let fault_len = hops(10);
    let target = |i: usize| targets[i % targets.len()];
    let single = |start: SimTime, idx: usize| {
        Episode::single(start, target(idx), FaultKind::ServiceUnavailable, fault_len)
    };
    vec![
        IncidentSchedule::new(
            (0..2)
                .map(|k| single(first + hops(32 * k), k as usize))
                .collect(),
        ),
        IncidentSchedule::new(
            (0..2)
                .map(|k| single(first + hops(16 * k), 2 + k as usize))
                .collect(),
        ),
    ]
}

/// Runs every schedule through [`OnlineSession::run_with_forensics`] on
/// `threads` workers and returns the per-session chains.
fn fan_out(
    app: &icfl_apps::App,
    model: &CausalModel,
    schedules: &[IncidentSchedule],
    cfg: &OnlineConfig,
    seed: u64,
    threads: usize,
) -> Result<Vec<Vec<EvidenceChain>>> {
    let outcomes = parallel_map(schedules.len(), threads, |i| {
        OnlineSession::run_with_forensics(
            app,
            model,
            &schedules[i],
            cfg,
            seed.wrapping_add(i as u64),
        )
    });
    let mut chains = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        chains.push(outcome?.1);
    }
    Ok(chains)
}

fn to_bytes(chains: &[Vec<EvidenceChain>]) -> String {
    serde_json::to_string(chains).expect("chains serialize")
}

/// Checks the structural and score-accounting invariants of one chain.
/// Returns the number of candidate breakdowns verified bit-for-bit.
fn check_chain(app: &str, chain: &EvidenceChain) -> Result<usize> {
    let fail = |msg: String| Err(ForensicsError::Invariant(format!("{app}: {msg}")));
    if chain.format_version != CHAIN_FORMAT_VERSION {
        return fail(format!(
            "incident {} has format version {} (expected {CHAIN_FORMAT_VERSION})",
            chain.incident, chain.format_version
        ));
    }
    if chain.windows.is_empty() {
        return fail(format!(
            "incident {} has no window evidence",
            chain.incident
        ));
    }
    if chain.transitions.is_empty() {
        return fail(format!(
            "incident {} has no detector transitions",
            chain.incident
        ));
    }
    if chain.model.key.is_empty() {
        return fail(format!(
            "incident {} has no model provenance",
            chain.incident
        ));
    }
    if chain.localized_at_nanos.is_none() {
        // Confirmed but never localized: candidates/breakdowns stay empty.
        return Ok(0);
    }
    if chain.candidates.is_empty() || chain.breakdowns.is_empty() {
        return fail(format!(
            "localized incident {} has an empty verdict breakdown",
            chain.incident
        ));
    }
    for b in &chain.breakdowns {
        if !chain.candidates.contains(&b.target) {
            return fail(format!(
                "incident {}: breakdown target {} is not a ranked candidate",
                chain.incident, b.target
            ));
        }
        let sum: f64 = b.contributions.iter().map(|c| c.delta).sum();
        if sum.to_bits() != b.score.to_bits() {
            return fail(format!(
                "incident {}: {} contribution deltas sum to {sum} but the \
                 Algorithm-2 score is {} (bitwise mismatch)",
                chain.incident, b.target, b.score
            ));
        }
    }
    Ok(chain.breakdowns.len())
}

/// Replays each schedule's recorded trace through a [`FeedSession`] —
/// with a mid-stream checkpoint/restore, the in-process analog of the
/// server's crash-recovery path — and returns the replayed chains.
fn replay_chains(
    app: &icfl_apps::App,
    model: &CausalModel,
    schedules: &[IncidentSchedule],
    cfg: &OnlineConfig,
    seed: u64,
) -> Result<Vec<Vec<EvidenceChain>>> {
    // `OnlineSession` stamps this provenance when no registry is in the
    // loop; the replay must match it for chains to byte-compare.
    let provenance = ModelProvenance {
        key: app.name.clone(),
        version: 0,
        meta: ModelMeta::default(),
    };
    let mut all = Vec::with_capacity(schedules.len());
    for (i, schedule) in schedules.iter().enumerate() {
        let session_seed = seed.wrapping_add(i as u64);
        let trace = record_trace(app, schedule, cfg, session_seed)?;
        let mut feed = FeedSession::new(
            model.clone(),
            trace.meta.service_names.clone(),
            FeedConfig::from_online(cfg),
        )?
        .with_provenance(provenance.clone());
        let half = trace.scrapes.len() / 2;
        for (at, row) in &trace.scrapes[..half] {
            feed.push(SimTime::from_nanos(*at), row.clone())?;
        }
        // Crash mid-stream: serialize the checkpoint, drop the session,
        // restore into a fresh one, and keep feeding.
        let ckpt = feed.checkpoint();
        drop(feed);
        let mut feed = FeedSession::new(
            model.clone(),
            trace.meta.service_names.clone(),
            FeedConfig::from_online(cfg),
        )?
        .with_provenance(provenance.clone());
        feed.restore(ckpt);
        for (at, row) in &trace.scrapes[half..] {
            feed.push(SimTime::from_nanos(*at), row.clone())?;
        }
        all.push(feed.chains().into_iter().cloned().collect());
    }
    Ok(all)
}

/// Runs the forensics gate.
///
/// # Errors
///
/// Propagates training and session errors, and reports any violated
/// chain invariant as [`ForensicsError::Invariant`].
pub fn forensics(opts: &ForensicsOptions) -> Result<ForensicsReport> {
    let catalog = MetricCatalog::derived_all();
    let cfg = match opts.mode {
        Mode::Quick => OnlineConfig::quick(),
        Mode::Paper => OnlineConfig::paper(),
    };
    let apps = match opts.mode {
        Mode::Quick => vec![icfl_apps::pattern1()],
        Mode::Paper => vec![icfl_apps::pattern1(), icfl_apps::causalbench()],
    };

    let mut rows = Vec::new();
    for app in &apps {
        let train_cfg = opts.mode.train_cfg(opts.seed);
        let campaign = CampaignRun::execute(app, &train_cfg)?;
        let model = campaign.learn(&catalog, RunConfig::default_detector())?;
        let schedules = schedules(campaign.targets(), &cfg);
        let episodes: usize = schedules.iter().map(|s| s.episodes().len()).sum();

        // Invariants 1 + 2 on the max-thread run, then byte-compare the
        // 1- and 2-thread runs against it (invariant 3).
        let reference = fan_out(app, &model, &schedules, &cfg, opts.seed, schedules.len())?;
        let mut breakdowns_checked = 0;
        for chain in reference.iter().flatten() {
            breakdowns_checked += check_chain(&app.name, chain)?;
        }
        let chains: usize = reference.iter().map(Vec::len).sum();
        if chains == 0 {
            return Err(ForensicsError::Invariant(format!(
                "{}: no incident was confirmed — the gate checked nothing",
                app.name
            )));
        }
        let localized = reference
            .iter()
            .flatten()
            .filter(|c| c.localized_at_nanos.is_some())
            .count();
        if localized == 0 {
            return Err(ForensicsError::Invariant(format!(
                "{}: no incident was localized — score accounting went unchecked",
                app.name
            )));
        }
        let reference_bytes = to_bytes(&reference);
        let thread_byte_equal = [1usize, 2].iter().all(|&threads| {
            fan_out(app, &model, &schedules, &cfg, opts.seed, threads)
                .map(|runs| to_bytes(&runs) == reference_bytes)
                .unwrap_or(false)
        });
        if !thread_byte_equal {
            return Err(ForensicsError::Invariant(format!(
                "{}: chains differ across worker-thread counts",
                app.name
            )));
        }

        // Invariant 4: trace replay (with a mid-stream crash) matches.
        let replayed = replay_chains(app, &model, &schedules, &cfg, opts.seed)?;
        let replay_byte_equal = to_bytes(&replayed) == reference_bytes;
        if !replay_byte_equal {
            return Err(ForensicsError::Invariant(format!(
                "{}: feed-replay chains diverge from the live session's",
                app.name
            )));
        }

        rows.push(ForensicsRow {
            app: app.name.clone(),
            episodes,
            chains,
            localized,
            breakdowns_checked,
            chain_bytes: reference_bytes.len(),
            thread_byte_equal,
            replay_byte_equal,
        });
    }

    Ok(ForensicsReport {
        mode: opts.mode,
        seed: opts.seed,
        rows,
    })
}
