//! The baseline-comparison experiment backing the paper's headline claim:
//! the proposed multi-metric interventional method outperforms \[23\],
//! \[24\] and single-world learners on the same benchmark.

use crate::mode::Mode;
use crate::render::TextTable;
use icfl_baselines::{
    evaluate_localizer, AnomalyRanker, ErrorLogLocalizer, FaultLocalizer, PooledGraphLocalizer,
    RcdConfig, RcdLocalizer,
};
use icfl_core::{CampaignRun, EvalSuite, Result, RunConfig};
use icfl_telemetry::MetricCatalog;
use serde::{Deserialize, Serialize};

/// One method × app × load measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonRow {
    /// Application name.
    pub app: String,
    /// Method name.
    pub method: String,
    /// Test load scale.
    pub load: usize,
    /// Localization accuracy.
    pub accuracy: f64,
    /// Mean informativeness.
    pub informativeness: f64,
}

/// The full comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Comparison {
    /// Rows grouped by app and load.
    pub rows: Vec<ComparisonRow>,
}

impl Comparison {
    /// Renders the comparison table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec!["App", "Load", "Method", "Accuracy", "Informativeness"]);
        for r in &self.rows {
            t.row(vec![
                r.app.clone(),
                format!("{}x", r.load),
                r.method.clone(),
                format!("{:.2}", r.accuracy),
                format!("{:.2}", r.informativeness),
            ]);
        }
        t.render()
    }

    /// The row for a given method/app/load, if present.
    pub fn row(&self, app: &str, method_prefix: &str, load: usize) -> Option<&ComparisonRow> {
        self.rows
            .iter()
            .find(|r| r.app == app && r.load == load && r.method.starts_with(method_prefix))
    }
}

/// Runs every method on shared campaigns/suites for both apps at 1× and 4×.
///
/// # Errors
///
/// Propagates pipeline errors.
pub fn comparison(mode: Mode, seed: u64) -> Result<Comparison> {
    let mut rows = Vec::new();
    for app in [icfl_apps::causalbench(), icfl_apps::robot_shop()] {
        let campaign = CampaignRun::execute(&app, &mode.train_cfg(seed))?;
        let detector = RunConfig::default_detector();

        let proposed = campaign.learn(&MetricCatalog::derived_all(), detector)?;
        let error_log = ErrorLogLocalizer::train(&campaign, detector)?;
        let rcd = RcdLocalizer::from_campaign(
            &campaign,
            &MetricCatalog::raw_all(),
            RcdConfig::default(),
        )?;
        let pooled =
            PooledGraphLocalizer::train(&campaign, &MetricCatalog::derived_all(), detector)?;
        let ranker = AnomalyRanker::new(
            MetricCatalog::derived_all(),
            campaign.baseline(&MetricCatalog::derived_all())?,
        );

        for load in [1usize, 4] {
            let suite = EvalSuite::execute(
                &app,
                campaign.targets(),
                &mode.eval_cfg(seed).with_replicas(load),
            )?;
            let ours = suite.evaluate(&proposed)?;
            rows.push(ComparisonRow {
                app: app.name.clone(),
                method: "proposed (multi-metric interventional)".into(),
                load,
                accuracy: ours.accuracy,
                informativeness: ours.informativeness,
            });
            let others: [&dyn FaultLocalizer; 4] = [&error_log, &rcd, &pooled, &ranker];
            for method in others {
                let summary = evaluate_localizer(method, &suite)?;
                rows.push(ComparisonRow {
                    app: app.name.clone(),
                    method: method.name().to_owned(),
                    load,
                    accuracy: summary.accuracy,
                    informativeness: summary.informativeness,
                });
            }
        }
    }
    Ok(Comparison { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_handles_empty() {
        let c = Comparison { rows: vec![] };
        assert!(c.render().contains("Method"));
        assert!(c.row("x", "y", 1).is_none());
    }
}
