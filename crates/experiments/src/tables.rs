//! Regeneration of the paper's Table I and Table II.

use crate::mode::Mode;
use crate::render::TextTable;
use icfl_core::{CampaignRun, EvalSuite, EvalSummary, Result, RunConfig};
use icfl_telemetry::MetricCatalog;
use serde::{Deserialize, Serialize};

/// One row of Table I.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Application name.
    pub app: String,
    /// Load scale of the test data (training is always 1×).
    pub load: usize,
    /// Fault-localization accuracy.
    pub accuracy: f64,
    /// Mean informativeness.
    pub informativeness: f64,
}

/// The regenerated Table I.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1 {
    /// Rows in the paper's order (app × load).
    pub rows: Vec<Table1Row>,
}

impl Table1 {
    /// The paper's reported values, for side-by-side comparison.
    pub fn paper_reference() -> Table1 {
        Table1 {
            rows: vec![
                Table1Row {
                    app: "causalbench".into(),
                    load: 1,
                    accuracy: 1.00,
                    informativeness: 0.82,
                },
                Table1Row {
                    app: "causalbench".into(),
                    load: 4,
                    accuracy: 0.84,
                    informativeness: 0.80,
                },
                Table1Row {
                    app: "robot-shop".into(),
                    load: 1,
                    accuracy: 1.00,
                    informativeness: 0.80,
                },
                Table1Row {
                    app: "robot-shop".into(),
                    load: 4,
                    accuracy: 0.81,
                    informativeness: 0.88,
                },
            ],
        }
    }

    /// Renders measured-vs-paper text.
    pub fn render(&self) -> String {
        let reference = Table1::paper_reference();
        let mut t = TextTable::new(vec![
            "App",
            "Load",
            "Accuracy",
            "Informativeness",
            "Paper acc.",
            "Paper inf.",
        ]);
        for row in &self.rows {
            let paper = reference
                .rows
                .iter()
                .find(|r| r.app == row.app && r.load == row.load);
            t.row(vec![
                row.app.clone(),
                format!("{}x", row.load),
                format!("{:.2}", row.accuracy),
                format!("{:.2}", row.informativeness),
                paper.map_or("-".into(), |p| format!("{:.2}", p.accuracy)),
                paper.map_or("-".into(), |p| format!("{:.2}", p.informativeness)),
            ]);
        }
        t.render()
    }
}

/// Runs the Table I experiment: train each app at 1×, evaluate at 1× (fresh
/// seed) and 4×, with the derived-all metric catalog.
///
/// # Errors
///
/// Propagates pipeline errors.
pub fn table1(mode: Mode, seed: u64) -> Result<Table1> {
    let mut rows = Vec::new();
    for app in [icfl_apps::causalbench(), icfl_apps::robot_shop()] {
        let campaign = CampaignRun::execute(&app, &mode.train_cfg(seed))?;
        let model = campaign.learn(&MetricCatalog::derived_all(), RunConfig::default_detector())?;
        for load in [1usize, 4] {
            let suite = EvalSuite::execute(
                &app,
                campaign.targets(),
                &mode.eval_cfg(seed).with_replicas(load),
            )?;
            let summary = suite.evaluate(&model)?;
            rows.push(Table1Row {
                app: app.name.clone(),
                load,
                accuracy: summary.accuracy,
                informativeness: summary.informativeness,
            });
        }
    }
    Ok(Table1 { rows })
}

/// One row of Table II (per app × catalog).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Application name.
    pub app: String,
    /// Metric catalog name (Table II column).
    pub catalog: String,
    /// Mean informativeness at 4× test load (the table's measure).
    pub informativeness: f64,
    /// Accuracy (not in the paper's table; reported for completeness).
    pub accuracy: f64,
}

/// The regenerated Table II.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2 {
    /// Rows grouped by app, catalogs in the paper's column order.
    pub rows: Vec<Table2Row>,
}

impl Table2 {
    /// The paper's reported informativeness values (blank cells in the
    /// paper are `None`).
    pub fn paper_reference() -> Vec<(&'static str, &'static str, Option<f64>)> {
        vec![
            ("causalbench", "raw-msg", Some(0.54)),
            ("causalbench", "raw-cpu", Some(0.60)),
            ("causalbench", "raw-all", Some(0.73)),
            ("causalbench", "derived-msg", Some(0.62)),
            ("causalbench", "derived-cpu", Some(0.70)),
            ("causalbench", "derived-all", Some(0.80)),
            ("robot-shop", "raw-msg", Some(0.58)),
            ("robot-shop", "raw-cpu", None),
            ("robot-shop", "raw-all", None),
            ("robot-shop", "derived-msg", Some(0.60)),
            ("robot-shop", "derived-cpu", Some(0.64)),
            ("robot-shop", "derived-all", None),
        ]
    }

    /// Renders measured-vs-paper text.
    pub fn render(&self) -> String {
        let reference = Table2::paper_reference();
        let mut t = TextTable::new(vec![
            "App",
            "Catalog",
            "Informativeness",
            "Accuracy",
            "Paper inf.",
        ]);
        for row in &self.rows {
            let paper = reference
                .iter()
                .find(|(a, c, _)| *a == row.app && *c == row.catalog)
                .and_then(|(_, _, v)| *v);
            t.row(vec![
                row.app.clone(),
                row.catalog.clone(),
                format!("{:.2}", row.informativeness),
                format!("{:.2}", row.accuracy),
                paper.map_or("-".into(), |p| format!("{p:.2}")),
            ]);
        }
        t.render()
    }
}

/// Runs the Table II experiment: train at 1×, test at 4×, across the six
/// metric catalogs (raw/derived × msg/cpu/all). The expensive simulations
/// (one campaign and one evaluation suite per app) are shared by all six
/// catalogs.
///
/// # Errors
///
/// Propagates pipeline errors.
pub fn table2(mode: Mode, seed: u64) -> Result<Table2> {
    let mut rows = Vec::new();
    for app in [icfl_apps::causalbench(), icfl_apps::robot_shop()] {
        let campaign = CampaignRun::execute(&app, &mode.train_cfg(seed))?;
        let suite = EvalSuite::execute(
            &app,
            campaign.targets(),
            &mode.eval_cfg(seed).with_replicas(4),
        )?;
        for catalog in MetricCatalog::table2_catalogs() {
            let model = campaign.learn(&catalog, RunConfig::default_detector())?;
            let summary: EvalSummary = suite.evaluate(&model)?;
            rows.push(Table2Row {
                app: app.name.clone(),
                catalog: catalog.name().to_owned(),
                informativeness: summary.informativeness,
                accuracy: summary.accuracy,
            });
        }
    }
    Ok(Table2 { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_reference_has_all_cells() {
        let t1 = Table1::paper_reference();
        assert_eq!(t1.rows.len(), 4);
        assert_eq!(Table2::paper_reference().len(), 12);
    }

    #[test]
    fn renders_reference_without_measured_gaps() {
        let t1 = Table1::paper_reference();
        let s = t1.render();
        assert!(s.contains("causalbench"));
        assert!(s.contains("4x"));
    }
}
