//! Scalability study: how Algorithm 1/2 cost and quality scale with the
//! number of services, on the synthetic topologies motivated by the paper's
//! introduction (heavy-tailed call graphs, 40+ services per request).

use crate::mode::Mode;
use crate::render::TextTable;
use icfl_apps::App;
use icfl_core::{CampaignRun, EvalSuite, Result, RunConfig};
use icfl_telemetry::MetricCatalog;
use serde::{Deserialize, Serialize};

/// One topology-size measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalabilityRow {
    /// Topology name (chain-N, star-N, layered-LxW).
    pub topology: String,
    /// Number of services.
    pub services: usize,
    /// Wall-clock seconds spent simulating the training campaign.
    pub campaign_secs: f64,
    /// Wall-clock seconds spent learning the model (Algorithm 1 proper).
    pub learn_secs: f64,
    /// Mean wall-clock seconds per localization (Algorithm 2).
    pub localize_secs: f64,
    /// Localization accuracy at matched load.
    pub accuracy: f64,
    /// Mean informativeness.
    pub informativeness: f64,
}

/// The scalability sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scalability {
    /// Rows, smallest topology first.
    pub rows: Vec<ScalabilityRow>,
}

impl Scalability {
    /// Renders the sweep.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "Topology",
            "Services",
            "Campaign (s)",
            "Learn (s)",
            "Localize (s)",
            "Accuracy",
            "Informativeness",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.topology.clone(),
                r.services.to_string(),
                format!("{:.2}", r.campaign_secs),
                format!("{:.4}", r.learn_secs),
                format!("{:.4}", r.localize_secs),
                format!("{:.2}", r.accuracy),
                format!("{:.2}", r.informativeness),
            ]);
        }
        t.render()
    }
}

fn measure(app: &App, mode: Mode, seed: u64) -> Result<ScalabilityRow> {
    let t0 = std::time::Instant::now();
    let campaign = CampaignRun::execute(app, &mode.train_cfg(seed))?;
    let campaign_secs = t0.elapsed().as_secs_f64();

    let catalog = MetricCatalog::derived_all();
    let t0 = std::time::Instant::now();
    let model = campaign.learn(&catalog, RunConfig::default_detector())?;
    let learn_secs = t0.elapsed().as_secs_f64();

    let suite = EvalSuite::execute(app, campaign.targets(), &mode.eval_cfg(seed))?;
    let t0 = std::time::Instant::now();
    let summary = suite.evaluate(&model)?;
    let localize_secs = t0.elapsed().as_secs_f64() / suite.runs.len().max(1) as f64;

    Ok(ScalabilityRow {
        topology: app.name.clone(),
        services: app.num_services(),
        campaign_secs,
        learn_secs,
        localize_secs,
        accuracy: summary.accuracy,
        informativeness: summary.informativeness,
    })
}

/// Runs the scalability sweep. Quick mode sweeps up to 40 services (the
/// paper's heavy-tail threshold); paper mode up to 64.
///
/// # Errors
///
/// Propagates pipeline errors.
pub fn scalability(mode: Mode, seed: u64) -> Result<Scalability> {
    let apps: Vec<App> = match mode {
        Mode::Quick => vec![
            icfl_apps::chain_app(10),
            icfl_apps::chain_app(20),
            icfl_apps::chain_app(40),
            icfl_apps::star_app(16),
            icfl_apps::star_app(32),
            icfl_apps::layered_app(4, 4),
            icfl_apps::layered_app(5, 8),
        ],
        Mode::Paper => vec![
            icfl_apps::chain_app(10),
            icfl_apps::chain_app(20),
            icfl_apps::chain_app(40),
            icfl_apps::chain_app(64),
            icfl_apps::star_app(16),
            icfl_apps::star_app(32),
            icfl_apps::star_app(63),
            icfl_apps::layered_app(4, 4),
            icfl_apps::layered_app(5, 8),
            icfl_apps::layered_app(8, 8),
        ],
    };
    let mut rows = Vec::with_capacity(apps.len());
    for app in &apps {
        rows.push(measure(app, mode, seed)?);
    }
    Ok(Scalability { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_formats_rows() {
        let s = Scalability {
            rows: vec![ScalabilityRow {
                topology: "chain-10".into(),
                services: 10,
                campaign_secs: 1.5,
                learn_secs: 0.001,
                localize_secs: 0.0005,
                accuracy: 1.0,
                informativeness: 0.9,
            }],
        };
        let out = s.render();
        assert!(out.contains("chain-10"));
        assert!(out.contains("0.0005"));
    }
}
