//! Scalability study: how Algorithm 1/2 cost and quality scale with the
//! number of services, on the synthetic topologies motivated by the paper's
//! introduction (heavy-tailed call graphs, 40+ services per request).

use crate::mode::Mode;
use crate::render::TextTable;
use icfl_apps::App;
use icfl_core::{CampaignRun, EvalSuite, Result, RunConfig};
use icfl_telemetry::MetricCatalog;
use serde::{Deserialize, Serialize};

/// One topology-size measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalabilityRow {
    /// Topology name (chain-N, star-N, layered-LxW).
    pub topology: String,
    /// Number of services.
    pub services: usize,
    /// Wall-clock seconds spent simulating the training campaign.
    pub campaign_secs: f64,
    /// Wall-clock seconds spent learning the model (Algorithm 1 proper).
    pub learn_secs: f64,
    /// Mean wall-clock seconds per localization (Algorithm 2).
    pub localize_secs: f64,
    /// Localization accuracy at matched load.
    pub accuracy: f64,
    /// Mean informativeness.
    pub informativeness: f64,
}

/// The scalability sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scalability {
    /// Rows, smallest topology first.
    pub rows: Vec<ScalabilityRow>,
}

impl Scalability {
    /// Renders the sweep.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "Topology",
            "Services",
            "Campaign (s)",
            "Learn (s)",
            "Localize (s)",
            "Accuracy",
            "Informativeness",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.topology.clone(),
                r.services.to_string(),
                format!("{:.2}", r.campaign_secs),
                format!("{:.4}", r.learn_secs),
                format!("{:.4}", r.localize_secs),
                format!("{:.2}", r.accuracy),
                format!("{:.2}", r.informativeness),
            ]);
        }
        t.render()
    }
}

fn measure(app: &App, mode: Mode, seed: u64) -> Result<ScalabilityRow> {
    measure_with(app, mode.train_cfg(seed), mode.eval_cfg(seed))
}

fn measure_with(app: &App, train_cfg: RunConfig, eval_cfg: RunConfig) -> Result<ScalabilityRow> {
    let t0 = std::time::Instant::now();
    let campaign = CampaignRun::execute(app, &train_cfg)?;
    let campaign_secs = t0.elapsed().as_secs_f64();

    let catalog = MetricCatalog::derived_all();
    let t0 = std::time::Instant::now();
    let model = campaign.learn(&catalog, RunConfig::default_detector())?;
    let learn_secs = t0.elapsed().as_secs_f64();

    let suite = EvalSuite::execute(app, campaign.targets(), &eval_cfg)?;
    let t0 = std::time::Instant::now();
    let summary = suite.evaluate(&model)?;
    let localize_secs = t0.elapsed().as_secs_f64() / suite.runs.len().max(1) as f64;

    Ok(ScalabilityRow {
        topology: app.name.clone(),
        services: app.num_services(),
        campaign_secs,
        learn_secs,
        localize_secs,
        accuracy: summary.accuracy,
        informativeness: summary.informativeness,
    })
}

/// Runs the scalability sweep. Quick mode sweeps up to 40 services (the
/// paper's heavy-tail threshold); paper mode up to 64.
///
/// # Errors
///
/// Propagates pipeline errors.
pub fn scalability(mode: Mode, seed: u64) -> Result<Scalability> {
    let apps: Vec<App> = match mode {
        Mode::Quick => vec![
            icfl_apps::chain_app(10),
            icfl_apps::chain_app(20),
            icfl_apps::chain_app(40),
            icfl_apps::star_app(16),
            icfl_apps::star_app(32),
            icfl_apps::layered_app(4, 4),
            icfl_apps::layered_app(5, 8),
        ],
        Mode::Paper => vec![
            icfl_apps::chain_app(10),
            icfl_apps::chain_app(20),
            icfl_apps::chain_app(40),
            icfl_apps::chain_app(64),
            icfl_apps::star_app(16),
            icfl_apps::star_app(32),
            icfl_apps::star_app(63),
            icfl_apps::layered_app(4, 4),
            icfl_apps::layered_app(5, 8),
            icfl_apps::layered_app(8, 8),
        ],
    };
    let mut rows = Vec::with_capacity(apps.len());
    for app in &apps {
        rows.push(measure(app, mode, seed)?);
    }
    Ok(Scalability { rows })
}

/// The fleet tier: sharded campaigns over 100–1000-service topologies.
///
/// Campaigns at this scale cannot intervene on every service (a 1000-target
/// campaign is 1000 fault simulations), so each row caps the target list
/// via [`RunConfig::max_targets`] — 12 stride-sampled targets in quick
/// mode, 24 in paper mode — and evaluates on the same sampled set. All
/// rows stay byte-identical across thread counts, like the base sweep.
///
/// # Errors
///
/// Propagates pipeline errors.
pub fn scalability_fleet(mode: Mode, seed: u64) -> Result<Scalability> {
    let apps: Vec<App> = match mode {
        Mode::Quick => vec![
            icfl_apps::fanout_app(2, 9),                              //   91 services
            icfl_apps::layered_mesh_app(5, 20, 2),                    //  100
            icfl_apps::replicated_app(&icfl_apps::causalbench(), 12), // 108
            icfl_apps::layered_mesh_app(5, 60, 2),                    //  300
            icfl_apps::fanout_app(2, 17),                             //  307
            icfl_apps::layered_mesh_app(5, 200, 2),                   // 1000
        ],
        Mode::Paper => vec![
            icfl_apps::fanout_app(2, 9),
            icfl_apps::layered_mesh_app(5, 20, 2),
            icfl_apps::replicated_app(&icfl_apps::causalbench(), 12),
            icfl_apps::layered_mesh_app(5, 60, 2),
            icfl_apps::fanout_app(2, 17),
            icfl_apps::fanout_app(2, 31), //  993
            icfl_apps::layered_mesh_app(5, 200, 2),
            icfl_apps::replicated_app(&icfl_apps::causalbench(), 112), // 1008
        ],
    };
    let cap = match mode {
        Mode::Quick => 12,
        Mode::Paper => 24,
    };
    let mut rows = Vec::with_capacity(apps.len());
    for app in &apps {
        rows.push(measure_with(
            app,
            mode.train_cfg(seed).with_max_targets(cap),
            mode.eval_cfg(seed).with_max_targets(cap),
        )?);
    }
    Ok(Scalability { rows })
}

/// The CI smoke slice of the fleet tier: one 100-service mesh, quick
/// timing, six stride-sampled targets. Small enough for a pull-request
/// gate, large enough to exercise the fleet code paths (capacity sizing,
/// target sampling, batched scrapes, the bucketed scheduler's cascades).
///
/// # Errors
///
/// Propagates pipeline errors.
pub fn scalability_fleet_smoke(seed: u64) -> Result<Scalability> {
    let app = icfl_apps::layered_mesh_app(5, 20, 2);
    let mode = Mode::Quick;
    let row = measure_with(
        &app,
        mode.train_cfg(seed).with_max_targets(6),
        mode.eval_cfg(seed).with_max_targets(6),
    )?;
    Ok(Scalability { rows: vec![row] })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_formats_rows() {
        let s = Scalability {
            rows: vec![ScalabilityRow {
                topology: "chain-10".into(),
                services: 10,
                campaign_secs: 1.5,
                learn_secs: 0.001,
                localize_secs: 0.0005,
                accuracy: 1.0,
                informativeness: 0.9,
            }],
        };
        let out = s.render();
        assert!(out.contains("chain-10"));
        assert!(out.contains("0.0005"));
    }
}
