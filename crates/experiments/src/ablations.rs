//! Ablation studies over the design choices called out in `DESIGN.md`:
//! detector family, significance level, minimum-effect guard, matching
//! rule, window geometry, fault-type generalization, and the autoscaler as
//! a latent confounder (§IV).

use crate::mode::Mode;
use crate::render::TextTable;
use icfl_core::{CampaignRun, EvalSuite, MatchRule, Result, RunConfig};
use icfl_micro::{AutoscalerSpec, FaultKind};
use icfl_sim::{DurationDist, SimDuration};
use icfl_stats::{ShiftDetector, TestKind};
use icfl_telemetry::{MetricCatalog, WindowConfig};
use serde::{Deserialize, Serialize};

/// One ablation measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationRow {
    /// Which knob was swept.
    pub group: String,
    /// The knob's value.
    pub variant: String,
    /// Localization accuracy on CausalBench.
    pub accuracy: f64,
    /// Mean informativeness.
    pub informativeness: f64,
}

/// The full ablation sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ablations {
    /// Rows grouped by knob.
    pub rows: Vec<AblationRow>,
}

impl Ablations {
    /// Renders the ablation table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec!["Knob", "Variant", "Accuracy", "Informativeness"]);
        for r in &self.rows {
            t.row(vec![
                r.group.clone(),
                r.variant.clone(),
                format!("{:.2}", r.accuracy),
                format!("{:.2}", r.informativeness),
            ]);
        }
        t.render()
    }

    /// Rows of one group.
    pub fn group(&self, name: &str) -> Vec<&AblationRow> {
        self.rows.iter().filter(|r| r.group == name).collect()
    }
}

/// Runs the full ablation sweep on CausalBench.
///
/// # Errors
///
/// Propagates pipeline errors.
pub fn ablations(mode: Mode, seed: u64) -> Result<Ablations> {
    let app = icfl_apps::causalbench();
    let train_cfg = mode.train_cfg(seed);
    let campaign = CampaignRun::execute(&app, &train_cfg)?;
    let suite_1x = EvalSuite::execute(&app, campaign.targets(), &mode.eval_cfg(seed))?;
    let suite_4x = EvalSuite::execute(
        &app,
        campaign.targets(),
        &mode.eval_cfg(seed).with_replicas(4),
    )?;
    let catalog = MetricCatalog::derived_all();
    let mut rows = Vec::new();

    // --- Reference point: the default configuration at both loads. ---
    let reference = campaign.learn(&catalog, RunConfig::default_detector())?;
    for (suite, label) in [(&suite_1x, "1x"), (&suite_4x, "4x")] {
        let s = suite.evaluate(&reference)?;
        rows.push(AblationRow {
            group: "reference".into(),
            variant: label.into(),
            accuracy: s.accuracy,
            informativeness: s.informativeness,
        });
    }

    // --- Detector family (DESIGN.md decision 4; paper uses KS). ---
    for kind in [
        TestKind::KolmogorovSmirnov,
        TestKind::MannWhitney,
        TestKind::Welch,
    ] {
        let det = ShiftDetector {
            kind,
            alpha: 0.05,
            min_relative_effect: 0.1,
        };
        let model = campaign.learn(&catalog, det)?;
        let s = suite_4x.evaluate(&model)?;
        rows.push(AblationRow {
            group: "detector@4x".into(),
            variant: kind.to_string(),
            accuracy: s.accuracy,
            informativeness: s.informativeness,
        });
    }

    // --- Significance level α. ---
    for alpha in [0.01, 0.05, 0.10] {
        let det = ShiftDetector::ks(alpha).with_min_effect(0.1);
        let model = campaign.learn(&catalog, det)?;
        let s = suite_4x.evaluate(&model)?;
        rows.push(AblationRow {
            group: "alpha@4x".into(),
            variant: format!("{alpha}"),
            accuracy: s.accuracy,
            informativeness: s.informativeness,
        });
    }

    // --- Minimum-relative-effect guard. ---
    for min_eff in [0.0, 0.1, 0.3] {
        let det = ShiftDetector::ks(0.05).with_min_effect(min_eff);
        let model = campaign.learn(&catalog, det)?;
        let s = suite_4x.evaluate(&model)?;
        rows.push(AblationRow {
            group: "min-effect@4x".into(),
            variant: format!("{min_eff}"),
            accuracy: s.accuracy,
            informativeness: s.informativeness,
        });
    }

    // --- Matching rule (Algorithm 2 line 14). ---
    let model = campaign.learn(&catalog, RunConfig::default_detector())?;
    for (rule, name) in [
        (MatchRule::IntersectionSize, "intersection (paper)"),
        (MatchRule::Jaccard, "jaccard"),
    ] {
        let s = suite_4x.evaluate_with(&model, rule)?;
        rows.push(AblationRow {
            group: "match-rule@4x".into(),
            variant: name.into(),
            accuracy: s.accuracy,
            informativeness: s.informativeness,
        });
    }

    // --- Window geometry (paper: 60 s / 30 s hop). Each geometry needs its
    // own campaign+suite because windowing is baked into extraction. ---
    let geometries: &[(u64, u64)] = match mode {
        Mode::Quick => &[(10, 5), (20, 10), (30, 15)],
        Mode::Paper => &[(60, 30), (30, 15), (120, 60)],
    };
    for &(w, h) in geometries {
        let mut cfg = mode.train_cfg(seed ^ (w << 8) ^ h);
        cfg.windows = WindowConfig::from_secs(w, h);
        let c = CampaignRun::execute(&app, &cfg)?;
        let m = c.learn(&catalog, RunConfig::default_detector())?;
        let mut ecfg = mode.eval_cfg(seed ^ (w << 8) ^ h);
        ecfg.windows = WindowConfig::from_secs(w, h);
        let s = EvalSuite::execute(&app, c.targets(), &ecfg)?.evaluate(&m)?;
        rows.push(AblationRow {
            group: "windows@1x".into(),
            variant: format!("{w}s/{h}s"),
            accuracy: s.accuracy,
            informativeness: s.informativeness,
        });
    }

    // --- Fault-type generalization: the model is trained on
    // service-unavailable only ("our methodology is not dependent on a
    // specific fault type, just that faults propagate"). ---
    let model = campaign.learn(&catalog, RunConfig::default_detector())?;
    let raw_model = campaign.learn(&MetricCatalog::raw_all(), RunConfig::default_detector())?;
    let fault_types: Vec<(&str, FaultKind)> = vec![
        ("service-unavailable", FaultKind::ServiceUnavailable),
        ("error-rate 0.5", FaultKind::ErrorRate(0.5)),
        ("cpu-stress 4x", FaultKind::CpuStress(4.0)),
        ("packet-loss 0.3", FaultKind::PacketLoss(0.3)),
        (
            "extra-latency 200ms",
            FaultKind::ExtraLatency(DurationDist::constant(SimDuration::from_millis(200))),
        ),
    ];
    for (name, fault) in fault_types {
        let cfg = mode.eval_cfg(seed ^ 0xfa17).with_fault(fault);
        let suite = EvalSuite::execute(&app, campaign.targets(), &cfg)?;
        let s = suite.evaluate(&model)?;
        rows.push(AblationRow {
            group: "fault-type/derived".into(),
            variant: name.into(),
            accuracy: s.accuracy,
            informativeness: s.informativeness,
        });
        let s = suite.evaluate(&raw_model)?;
        rows.push(AblationRow {
            group: "fault-type/raw".into(),
            variant: name.into(),
            accuracy: s.accuracy,
            informativeness: s.informativeness,
        });
    }

    // --- Autoscaling as a latent confounder (§IV): production runs with an
    // HPA on the front door that training never saw. ---
    let mut autoscaled = app.clone();
    autoscaled.spec = autoscaled
        .spec
        .autoscaler(AutoscalerSpec::hpa("A", 2, 64))
        .autoscaler(AutoscalerSpec::hpa("B", 2, 32));
    for load in [1usize, 4] {
        let suite = EvalSuite::execute(
            &autoscaled,
            campaign.targets(),
            &mode.eval_cfg(seed ^ 0x5ca1e).with_replicas(load),
        )?;
        let s = suite.evaluate(&model)?;
        rows.push(AblationRow {
            group: "latent-autoscaler".into(),
            variant: format!("{load}x"),
            accuracy: s.accuracy,
            informativeness: s.informativeness,
        });
    }

    Ok(Ablations { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_groups_rows() {
        let a = Ablations {
            rows: vec![AblationRow {
                group: "g".into(),
                variant: "v".into(),
                accuracy: 1.0,
                informativeness: 0.5,
            }],
        };
        assert!(a.render().contains("1.00"));
        assert_eq!(a.group("g").len(), 1);
        assert!(a.group("missing").is_empty());
    }
}
