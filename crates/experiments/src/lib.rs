//! # icfl-experiments — regeneration harness for every table and figure
//!
//! One entry point per evaluation artifact of the DSN'24 paper (see the
//! per-experiment index in `DESIGN.md`):
//!
//! | Paper artifact | Function | Binary |
//! |---|---|---|
//! | Table I (accuracy/informativeness, 1×/4×) | [`table1`] | `cargo run -p icfl-experiments --bin table1` |
//! | Table II (raw vs derived × msg/cpu/all) | [`table2`] | `--bin table2` |
//! | Fig. 1 + §VI-B (metric-dependent causal worlds) | [`fig1`] | `--bin fig1` |
//! | Fig. 2 (load confounder boxplots) | [`fig2`] | `--bin fig2` |
//! | Fig. 4 (CausalBench topology + flows) | [`fig4`] | `--bin fig4` |
//! | Baseline comparison (\[23\], \[24\], pooled, observational) | [`comparison`] | `--bin baselines` |
//! | Ablations (detector, α, guard, match rule, windows, fault types, latent autoscaler) | [`ablations`] | `--bin ablations` |
//! | Scalability sweep (chain/star/layered topologies up to 64 services) | [`scalability`] | `--bin scalability` |
//! | Confusability analysis (§III-B identifiability, validated against 4× misses) | [`confusability`] | `--bin confusability` |
//! | Production platform (Fig. 3): streaming detection + live localization | [`production`] | `--bin production` |
//! | Robustness under degraded telemetry (drops/jitter/dups/resets) | [`robustness`] | `--bin robustness` |
//! | Gray failures + overload cascades at instance granularity | [`grayfail`] | `--bin grayfail` |
//! | Chaos recovery (kills + proxy faults, byte-equal incidents) | [`chaosbench`] | `--bin chaosbench` |
//! | Incident forensics (evidence-chain coverage + byte-determinism) | [`forensics`] | `--bin forensics` |
//! | Pipeline self-profile (spans, journal, Chrome trace) | [`write_profile_artifacts`] | `--bin profile` |
//!
//! Every binary accepts `--quick` (default: 2-minute phases) or `--paper`
//! (the paper's 10-minute phases), `--seed N`, `--threads N` (worker
//! threads for the parallel executor; default auto), `--json`,
//! `--profile DIR` (dump the `icfl-obs` span/metrics artifacts — see
//! [`write_profile_artifacts`]), and the log-level flags `--quiet`/`-q`,
//! `-v`, `-vv` (also settable via `ICFL_LOG`). The simulation-heavy
//! binaries log their wall-clock time and append it, plus a per-phase
//! breakdown sourced from the spans, to `results/timings.csv` (see
//! [`report_timing`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ablations;
mod chaosbench;
mod comparison;
mod confusability;
mod figures;
mod forensics;
mod grayfail;
mod mode;
mod production;
mod profiling;
mod render;
mod robustness;
mod scalability;
mod serverbench;
mod tables;
mod timing;

pub use ablations::{ablations, AblationRow, Ablations};
pub use chaosbench::{chaosbench, ChaosTenantRow, Chaosbench, ChaosbenchOptions};
pub use comparison::{comparison, Comparison, ComparisonRow};
pub use confusability::{confusability, Confusability, ConfusablePair};
pub use figures::{fig1, fig2, fig4, CausalSetReport, Fig1, Fig2, Fig2Row, Fig4, FlowTrace};
pub use forensics::{forensics, ForensicsError, ForensicsOptions, ForensicsReport, ForensicsRow};
pub use grayfail::{
    cascade_measure, gray_fault, gray_measure, grayfail, grayfail_smoke, GrayFail, GrayFailRow,
};
pub use mode::{CliOptions, Mode};
pub use production::{
    production, ProductionAppReport, ProductionError, ProductionOptions, ProductionReport,
};
pub use profiling::{
    maybe_write_profile, micro_spans_to_trace, profile_report, render_profile_text,
    write_profile_artifacts, ProfileReport, StatRow,
};
pub use render::TextTable;
pub use robustness::{
    robustness, RobustnessAppReport, RobustnessCell, RobustnessError, RobustnessOptions,
    RobustnessReport, DROP_RATES, RESET_PROB,
};
pub use scalability::{
    scalability, scalability_fleet, scalability_fleet_smoke, Scalability, ScalabilityRow,
};
pub use serverbench::{
    serverbench, Serverbench, ServerbenchError, ServerbenchOptions, ServerbenchRow,
    SERVERBENCH_SCALES, STREAMS_PER_SCALE,
};
pub use tables::{table1, table2, Table1, Table1Row, Table2, Table2Row};
pub use timing::{
    record_metric_row, record_phase_timings, record_timing, report_timing, run_timed, timings_path,
    Timed, PIPELINE_PHASES,
};
