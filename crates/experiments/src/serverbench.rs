//! Server load sweep: throughput and detection latency of the networked
//! ingest path (`icfl-server` + `icfl-loadgen-http` core) at increasing
//! concurrency.
//!
//! The sweep trains one model per app (fig2 + causalbench), persists
//! them through the model registry, records one scrape trace per app
//! from a scheduled-outage session, then starts an in-process server on
//! a loopback port and replays the traces through the load-generator
//! core at 1×/4×/16× scale (2 tenant streams per scale unit, half fig2,
//! half causalbench). Every batch is either accepted or visibly
//! rejected-and-retried, so `scrapes accepted == scrapes sent` is an
//! invariant, not a hope — the sweep fails if a scrape went missing or a
//! scheduled incident went undetected.

use crate::mode::Mode;
use crate::render::TextTable;
use icfl_apps::App;
use icfl_core::{CampaignRun, RunConfig};
use icfl_micro::FaultKind;
use icfl_online::{
    record_trace, Episode, FeedConfig, IncidentSchedule, ModelMeta, ModelRegistry, OnlineConfig,
    OnlineError,
};
use icfl_scenario::ScrapeTrace;
use icfl_server::loadgen::{run as run_loadgen, LoadMode, LoadgenConfig};
use icfl_server::{IcflServer, ServerConfig, ServerHandle};
use icfl_sim::{SimDuration, SimTime};
use icfl_telemetry::MetricCatalog;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::PathBuf;

/// The default sweep's concurrency scales.
pub const SERVERBENCH_SCALES: [usize; 3] = [1, 4, 16];

/// Tenant streams per scale unit (one fig2 + one causalbench).
pub const STREAMS_PER_SCALE: usize = 2;

/// Errors surfaced by the server load sweep.
#[derive(Debug)]
pub enum ServerbenchError {
    /// Offline training failed.
    Core(icfl_core::CoreError),
    /// Trace recording failed.
    Online(OnlineError),
    /// Model persistence or reload failed.
    Registry(icfl_online::RegistryError),
    /// Server start/stop or trace emission failed.
    Io(std::io::Error),
    /// The load generator hit a protocol failure.
    Loadgen(icfl_server::LoadgenError),
    /// The sweep's own invariants failed (lost scrapes, missed
    /// incidents).
    Invariant(String),
}

impl fmt::Display for ServerbenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerbenchError::Core(e) => write!(f, "offline training failed: {e}"),
            ServerbenchError::Online(e) => write!(f, "session setup failed: {e}"),
            ServerbenchError::Registry(e) => write!(f, "model registry failed: {e}"),
            ServerbenchError::Io(e) => write!(f, "server I/O failed: {e}"),
            ServerbenchError::Loadgen(e) => write!(f, "load generation failed: {e}"),
            ServerbenchError::Invariant(e) => write!(f, "sweep invariant violated: {e}"),
        }
    }
}

impl std::error::Error for ServerbenchError {}

impl From<icfl_core::CoreError> for ServerbenchError {
    fn from(e: icfl_core::CoreError) -> Self {
        ServerbenchError::Core(e)
    }
}
impl From<OnlineError> for ServerbenchError {
    fn from(e: OnlineError) -> Self {
        ServerbenchError::Online(e)
    }
}
impl From<icfl_online::RegistryError> for ServerbenchError {
    fn from(e: icfl_online::RegistryError) -> Self {
        ServerbenchError::Registry(e)
    }
}
impl From<std::io::Error> for ServerbenchError {
    fn from(e: std::io::Error) -> Self {
        ServerbenchError::Io(e)
    }
}
impl From<icfl_server::LoadgenError> for ServerbenchError {
    fn from(e: icfl_server::LoadgenError) -> Self {
        ServerbenchError::Loadgen(e)
    }
}

/// Server load sweep result alias.
pub type Result<T> = std::result::Result<T, ServerbenchError>;

/// Options for the server load sweep.
#[derive(Debug, Clone)]
pub struct ServerbenchOptions {
    /// Timing mode (training protocol + window geometry).
    pub mode: Mode,
    /// Root seed for training, traces, and batch sizing.
    pub seed: u64,
    /// Concurrency scales to sweep (streams = scale ×
    /// [`STREAMS_PER_SCALE`]).
    pub scales: Vec<usize>,
    /// Where trained models are persisted and served from.
    pub registry_root: PathBuf,
    /// Also save the recorded traces as JSONL under this directory (the
    /// two-terminal quick-start's input).
    pub emit_trace: Option<PathBuf>,
    /// Per-tenant queue bound, in batches.
    pub queue_cap: usize,
    /// Scrapes per ingest batch.
    pub bulk_size: usize,
}

impl ServerbenchOptions {
    /// Defaults: the full 1×/4×/16× sweep, models under `results/models`
    /// (honoring `ICFL_RESULTS_DIR`).
    pub fn new(mode: Mode, seed: u64) -> Self {
        let results = std::env::var_os("ICFL_RESULTS_DIR")
            .map_or_else(|| PathBuf::from("results"), PathBuf::from);
        ServerbenchOptions {
            mode,
            seed,
            scales: SERVERBENCH_SCALES.to_vec(),
            registry_root: results.join("models"),
            emit_trace: None,
            queue_cap: 64,
            bulk_size: 64,
        }
    }

    /// The CI gate: the 1× point only.
    pub fn smoke(seed: u64) -> Self {
        let mut opts = Self::new(Mode::Quick, seed);
        opts.scales = vec![1];
        opts
    }
}

/// One swept scale point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServerbenchRow {
    /// Scale factor (streams = scale × [`STREAMS_PER_SCALE`]).
    pub scale: usize,
    /// Concurrent tenant streams at this point.
    pub streams: usize,
    /// Scrapes sent (== accepted; lost scrapes fail the sweep).
    pub scrapes: u64,
    /// Accepted ingest batches.
    pub batches: u64,
    /// 429 rejections that were retried to acceptance.
    pub retried: u64,
    /// Sustained ingest throughput over the send phase.
    pub scrapes_per_sec: f64,
    /// Median detection latency (scheduled fault start → confirmation,
    /// stream time), milliseconds.
    pub detect_p50_ms: f64,
    /// Tail detection latency, milliseconds.
    pub detect_p99_ms: f64,
    /// Scheduled fault episodes fully replayed at this point.
    pub incidents_expected: u64,
    /// Incidents confirmed by the served sessions.
    pub incidents_detected: u64,
}

/// The sweep's full result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Serverbench {
    /// Apps served (registry model names).
    pub apps: Vec<String>,
    /// One row per swept scale, ascending.
    pub rows: Vec<ServerbenchRow>,
}

impl Serverbench {
    /// Renders the sweep as an aligned text table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "Scale",
            "Streams",
            "Scrapes",
            "Scrapes/s",
            "Retried",
            "Detected",
            "Detect p50 (ms)",
            "Detect p99 (ms)",
        ]);
        for r in &self.rows {
            t.row(vec![
                format!("{}x", r.scale),
                r.streams.to_string(),
                r.scrapes.to_string(),
                format!("{:.0}", r.scrapes_per_sec),
                r.retried.to_string(),
                format!("{}/{}", r.incidents_detected, r.incidents_expected),
                format!("{:.0}", r.detect_p50_ms),
                format!("{:.0}", r.detect_p99_ms),
            ]);
        }
        t.render()
    }

    /// Renders the `results/server_load.md` report body.
    pub fn to_markdown(&self, mode: Mode, seed: u64) -> String {
        let mut out = String::new();
        out.push_str("# Ingest server under load\n\n");
        out.push_str(&format!(
            "Loopback sweep of `icfl-server` + the `icfl-loadgen-http` core \
             (`{mode}` mode, seed {seed}): per scale unit, {STREAMS_PER_SCALE} tenant \
             streams (one per app: {}) replay recorded scheduled-outage traces in bulk \
             batches over keep-alive HTTP/1.1 connections. Backpressure is explicit — \
             a full tenant queue answers 429 + retry-after and the generator re-sends, \
             so every scrape is eventually accepted (`scrapes accepted == sent` is \
             asserted, 0 silent drops). Detection latency is stream-time from the \
             scheduled fault start to the served confirmation, identical by \
             construction to an in-process replay (see \
             `crates/server/tests/loopback.rs`).\n\n",
            self.apps.join(", "),
        ));
        out.push_str("```text\n");
        out.push_str(&self.render());
        out.push_str("```\n\n");
        out.push_str(
            "Regenerate with `cargo run --release -p icfl-experiments --bin serverbench`; \
             the same numbers land in `results/timings.csv` as \
             `scrapes_per_sec@{scale}x` / `detect_p99_ms@{scale}x` phase rows.\n",
        );
        out
    }
}

/// Mode-aware two-outage schedule, mirroring the production experiment's
/// hop-relative placement so it stays valid under paper-scale windows.
fn schedule_for(cfg: &OnlineConfig, targets: &[icfl_micro::ServiceId]) -> IncidentSchedule {
    let hop = cfg.windows.hop;
    let hops = |n: u64| SimDuration::from_nanos(hop.as_nanos() * n);
    let first = SimTime::ZERO + cfg.warmup + cfg.windows.window + hops(16);
    let fault_len = hops(10);
    IncidentSchedule::new(vec![
        Episode::single(first, targets[0], FaultKind::ServiceUnavailable, fault_len),
        Episode::single(
            first + hops(32),
            targets[1 % targets.len()],
            FaultKind::ServiceUnavailable,
            fault_len,
        ),
    ])
}

/// Trains `app`, persists the model, and records its replay trace.
/// Shared with the chaos campaign (`chaosbench`), which replays the same
/// traces against a durable server it kills mid-flight.
pub(crate) fn prepare_app(
    app: &App,
    registry: &ModelRegistry,
    online_cfg: &OnlineConfig,
    opts: &ServerbenchOptions,
) -> Result<ScrapeTrace> {
    let catalog = MetricCatalog::derived_all();
    let train_cfg = opts.mode.train_cfg(opts.seed);
    let campaign = CampaignRun::execute(app, &train_cfg)?;
    let model = campaign.learn(&catalog, RunConfig::default_detector())?;
    let meta = ModelMeta {
        app: app.name.clone(),
        seed: opts.seed,
        catalog: catalog.name().to_owned(),
        detector: RunConfig::default_detector().kind.to_string(),
        num_services: model.num_services(),
        targets: campaign
            .targets()
            .iter()
            .map(|&t| campaign.service_names()[t.index()].clone())
            .collect(),
        note: "serverbench sweep".into(),
    };
    registry.save(&app.name, meta, &model)?;
    let schedule = schedule_for(online_cfg, campaign.targets());
    let trace = record_trace(app, &schedule, online_cfg, opts.seed)?;
    if let Some(dir) = &opts.emit_trace {
        let path = dir.join(format!("{}.jsonl", app.name));
        trace
            .save(&path)
            .map_err(|e| std::io::Error::other(format!("emit {}: {e}", path.display())))?;
        icfl_obs::info!("serverbench: trace saved to {}", path.display());
    }
    Ok(trace)
}

pub(crate) fn online_cfg(mode: Mode) -> OnlineConfig {
    match mode {
        Mode::Quick => OnlineConfig::quick(),
        Mode::Paper => OnlineConfig::paper(),
    }
}

/// Runs the sweep: train + record once, then one load campaign per scale
/// against a single in-process server.
///
/// # Errors
///
/// Training/registry/transport failures, or a violated sweep invariant
/// (a lost scrape, an undetected scheduled incident).
pub fn serverbench(opts: &ServerbenchOptions) -> Result<Serverbench> {
    let cfg = online_cfg(opts.mode);
    let registry = ModelRegistry::open(&opts.registry_root)?;
    if let Some(dir) = &opts.emit_trace {
        std::fs::create_dir_all(dir)?;
    }
    let apps = [icfl_apps::fig2_topology(), icfl_apps::causalbench()];
    let mut traces = Vec::new();
    for app in &apps {
        icfl_obs::info!("serverbench: training + recording {}...", app.name);
        traces.push(prepare_app(app, &registry, &cfg, opts)?);
    }

    let server_cfg = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        registry_root: opts.registry_root.clone(),
        feed: FeedConfig::from_online(&cfg),
        queue_cap: opts.queue_cap,
        http_workers: 32,
        retry_after_ms: 5,
        ..ServerConfig::quick(&opts.registry_root)
    };
    let handle = IcflServer::start(server_cfg)?;

    let mut rows = Vec::new();
    for &scale in &opts.scales {
        rows.push(run_scale(&handle, &traces, scale, opts)?);
    }
    Ok(Serverbench {
        apps: apps.iter().map(|a| a.name.clone()).collect(),
        rows,
    })
}

fn run_scale(
    handle: &ServerHandle,
    traces: &[ScrapeTrace],
    scale: usize,
    opts: &ServerbenchOptions,
) -> Result<ServerbenchRow> {
    let streams = scale * STREAMS_PER_SCALE;
    // Each stream replays one full pass of the longest trace, so every
    // scheduled episode is fully covered at every scale.
    let per_stream = traces
        .iter()
        .map(|t| t.scrapes.len() as u64)
        .max()
        .unwrap_or(0);
    let summary = run_loadgen(&LoadgenConfig {
        addr: handle.addr().to_string(),
        traces: traces.to_vec(),
        total: per_stream * streams as u64,
        concurrency: streams,
        bulk_size: opts.bulk_size,
        mode: LoadMode::Bulk,
        rate: 0.0,
        seed: opts.seed,
        tenant_prefix: format!("x{scale}-"),
        max_transport_retries: 0,
        max_reject_retries: 0,
    })?;

    let accepted: u64 = summary.tenants.iter().map(|t| t.scrapes_accepted).sum();
    if accepted != summary.scrapes_sent {
        return Err(ServerbenchError::Invariant(format!(
            "{}x: sent {} scrapes but only {accepted} accepted",
            scale, summary.scrapes_sent
        )));
    }
    if summary.incidents_detected() < summary.incidents_expected() {
        return Err(ServerbenchError::Invariant(format!(
            "{}x: {}/{} scheduled incidents detected",
            scale,
            summary.incidents_detected(),
            summary.incidents_expected()
        )));
    }
    icfl_obs::info!("serverbench {scale}x: {}", summary.one_line());
    Ok(ServerbenchRow {
        scale,
        streams,
        scrapes: summary.scrapes_sent,
        batches: summary.batches_ok,
        retried: summary.batches_retried,
        scrapes_per_sec: summary.scrapes_per_sec(),
        detect_p50_ms: summary.detect_p(0.50).unwrap_or(0.0),
        detect_p99_ms: summary.detect_p(0.99).unwrap_or(0.0),
        incidents_expected: summary.incidents_expected(),
        incidents_detected: summary.incidents_detected(),
    })
}
