//! Property-based tests of Algorithms 1–2 on synthetic datasets: structural
//! invariants that must hold for *any* data, not just simulated traffic.

use icfl_core::{CaseResult, CausalModel, Localization, RunConfig};
use icfl_micro::ServiceId;
use icfl_stats::ShiftDetector;
use icfl_telemetry::{Dataset, MetricCatalog, MetricSpec, RawMetric};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Builds a dataset of `services` series with the given per-service levels;
/// each series is a mildly noisy constant.
fn level_dataset(levels: &[f64], metric_names: usize) -> Dataset {
    let names: Vec<String> = (0..metric_names).map(|i| format!("m{i}")).collect();
    let values = (0..metric_names)
        .map(|m| {
            levels
                .iter()
                .map(|&l| {
                    (0..19)
                        .map(|w| l * (1.0 + 0.01 * ((w * (m + 1)) % 5) as f64))
                        .collect::<Vec<f64>>()
                })
                .collect::<Vec<_>>()
        })
        .collect();
    Dataset::new(names, values)
}

fn catalog(n: usize) -> MetricCatalog {
    let metrics = (0..n)
        .map(|i| {
            if i % 2 == 0 {
                MetricSpec::Raw(RawMetric::MsgCount)
            } else {
                MetricSpec::Raw(RawMetric::CpuSeconds)
            }
        })
        .collect();
    MetricCatalog::new("prop", metrics)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Algorithm 1: the intervened service is always in its own causal set,
    /// and causal sets only contain valid services.
    #[test]
    fn causal_sets_contain_target_and_stay_in_range(
        base_levels in proptest::collection::vec(0.1f64..100.0, 2..7),
        fault_scale in 0.0f64..10.0,
        target_idx in 0usize..7,
        metrics in 1usize..4,
    ) {
        let n = base_levels.len();
        let target = ServiceId::from_index(target_idx % n);
        let baseline = level_dataset(&base_levels, metrics);
        let mut fault_levels = base_levels.clone();
        fault_levels[target.index()] *= fault_scale;
        let fault_ds = level_dataset(&fault_levels, metrics);

        let model = CausalModel::learn(
            &catalog(metrics),
            RunConfig::default_detector(),
            &baseline,
            &[(target, fault_ds)],
        ).unwrap();

        for (_, t, set) in model.iter_sets() {
            prop_assert_eq!(t, target);
            prop_assert!(set.contains(&target), "C(s,M) must contain s");
            prop_assert!(set.iter().all(|s| s.index() < n));
        }
    }

    /// Algorithm 2: production data equal to the baseline produces no
    /// candidates (no anomaly → every metric abstains).
    #[test]
    fn baseline_production_yields_nothing(
        levels in proptest::collection::vec(0.1f64..100.0, 2..7),
        metrics in 1usize..4,
    ) {
        let n = levels.len();
        let baseline = level_dataset(&levels, metrics);
        let faults: Vec<(ServiceId, Dataset)> = (0..n)
            .map(|i| {
                let mut l = levels.clone();
                l[i] *= 5.0;
                (ServiceId::from_index(i), level_dataset(&l, metrics))
            })
            .collect();
        let model = CausalModel::learn(
            &catalog(metrics),
            RunConfig::default_detector(),
            &baseline,
            &faults,
        ).unwrap();
        let loc = model.localize(&baseline).unwrap();
        prop_assert!(loc.candidates.is_empty());
        prop_assert!(loc.votes.iter().all(|&v| v == 0.0));
    }

    /// Algorithm 2: replaying a training fault's signature localizes it.
    #[test]
    fn training_signature_replay_localizes(
        levels in proptest::collection::vec(1.0f64..100.0, 3..7),
        which in 0usize..7,
    ) {
        let n = levels.len();
        let which = which % n;
        let baseline = level_dataset(&levels, 2);
        let faults: Vec<(ServiceId, Dataset)> = (0..n)
            .map(|i| {
                let mut l = levels.clone();
                // Each fault has a distinct signature: it scales itself 10x
                // and its right neighbor 3x.
                l[i] *= 10.0;
                l[(i + 1) % n] *= 3.0;
                (ServiceId::from_index(i), level_dataset(&l, 2))
            })
            .collect();
        let model = CausalModel::learn(
            &catalog(2),
            RunConfig::default_detector(),
            &baseline,
            &faults,
        ).unwrap();
        let loc = model.localize(&faults[which].1).unwrap();
        prop_assert!(
            loc.implicates(ServiceId::from_index(which)),
            "replayed signature of {which} gave {:?}", loc.candidates
        );
    }

    /// Votes are bounded by the number of metrics, and candidates are
    /// exactly the argmax set.
    #[test]
    fn votes_bounded_and_candidates_are_argmax(
        levels in proptest::collection::vec(1.0f64..100.0, 2..6),
        bump in 1.5f64..20.0,
        metrics in 1usize..4,
    ) {
        let n = levels.len();
        let baseline = level_dataset(&levels, metrics);
        let faults: Vec<(ServiceId, Dataset)> = (0..n)
            .map(|i| {
                let mut l = levels.clone();
                l[i] *= bump;
                (ServiceId::from_index(i), level_dataset(&l, metrics))
            })
            .collect();
        let model = CausalModel::learn(
            &catalog(metrics),
            RunConfig::default_detector(),
            &baseline,
            &faults,
        ).unwrap();
        let mut production_levels = levels.clone();
        production_levels[0] *= bump;
        let loc: Localization = model.localize(&level_dataset(&production_levels, metrics)).unwrap();
        let total: f64 = loc.votes.iter().sum();
        prop_assert!(total <= metrics as f64 + 1e-9, "votes exceed metric count");
        if let Some(max) = loc.votes.iter().copied().reduce(f64::max) {
            if max > 0.0 {
                let argmax: BTreeSet<ServiceId> = loc
                    .votes
                    .iter()
                    .enumerate()
                    .filter(|(_, &v)| (v - max).abs() <= 1e-12)
                    .map(|(i, _)| ServiceId::from_index(i))
                    .collect();
                prop_assert_eq!(argmax, loc.candidates.clone());
            }
        }
    }

    /// Scoring invariants: informativeness ∈ [0,1]; correct iff injected
    /// is a candidate; empty prediction is maximally uninformative.
    #[test]
    fn scoring_invariants(
        n in 2usize..20,
        injected in 0usize..20,
        candidates in proptest::collection::btree_set(0usize..20, 0..10),
    ) {
        let injected = ServiceId::from_index(injected % n);
        let cands: Vec<ServiceId> = candidates
            .into_iter()
            .filter(|&c| c < n)
            .map(ServiceId::from_index)
            .collect();
        let case = CaseResult::from_candidates(injected, cands.iter().copied(), n);
        prop_assert!((0.0..=1.0).contains(&case.informativeness));
        prop_assert_eq!(case.correct, cands.contains(&injected));
        if cands.is_empty() {
            prop_assert_eq!(case.informativeness, 0.0);
        }
        if cands.len() == 1 {
            prop_assert_eq!(case.informativeness, 1.0);
        }
    }

    /// Learning is insensitive to the *order* of fault datasets.
    #[test]
    fn learning_order_invariance(
        levels in proptest::collection::vec(1.0f64..50.0, 3..6),
    ) {
        let n = levels.len();
        let baseline = level_dataset(&levels, 2);
        let faults: Vec<(ServiceId, Dataset)> = (0..n)
            .map(|i| {
                let mut l = levels.clone();
                l[i] *= 8.0;
                (ServiceId::from_index(i), level_dataset(&l, 2))
            })
            .collect();
        let detector = ShiftDetector::ks(0.05);
        let forward = CausalModel::learn(&catalog(2), detector, &baseline, &faults).unwrap();
        let mut reversed = faults.clone();
        reversed.reverse();
        let backward = CausalModel::learn(&catalog(2), detector, &baseline, &reversed).unwrap();
        for (m, t, set) in forward.iter_sets() {
            prop_assert_eq!(backward.causal_set(m, t), Some(set));
        }
    }
}
