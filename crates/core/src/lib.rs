//! # icfl-core — interventional causal fault localization
//!
//! The primary contribution of *"Fault Localization Using Interventional
//! Causal Learning for Cloud-Native Applications"* (DSN 2024), reproduced
//! end-to-end on the simulated substrates of this workspace:
//!
//! * [`CausalModel::learn`] — **Algorithm 1**: fault-injection-driven
//!   causal learning. For every metric `M` and intervened service `s`, the
//!   causal set `C(s, M)` collects the services whose metric distribution
//!   shifted (two-sample KS test) relative to the no-fault baseline `D_0`.
//!   Crucially, one causal world is kept *per metric* (§III-A): no single
//!   graph is forced to explain all modalities.
//! * [`CausalModel::localize`] — **Algorithm 2**: majority-voting fault
//!   localization. Each metric detects its production anomaly set `A(M)`,
//!   votes for the intervention whose causal set best matches it, and the
//!   most-voted services are the candidate root causes.
//! * [`CaseResult`] / [`EvalSummary`] — the paper's **accuracy** and
//!   **informativeness** measures (§VI-A).
//! * [`CampaignRun`] / [`ProductionRun`] / [`EvalSuite`] — orchestration of
//!   the §V experiment protocol on the simulator.
//!
//! # Examples
//!
//! Train on a small application and localize a fresh fault:
//!
//! ```
//! use icfl_core::{CampaignRun, EvalSuite, RunConfig};
//! use icfl_telemetry::MetricCatalog;
//!
//! let app = icfl_apps::pattern1();
//! let cfg = RunConfig::quick(1);
//!
//! // Algorithm 1: intervene on every service, learn C(s, M).
//! let campaign = CampaignRun::execute(&app, &cfg)?;
//! let model = campaign.learn(&MetricCatalog::derived_all(), RunConfig::default_detector())?;
//!
//! // Algorithm 2: localize faults in fresh production runs.
//! let suite = EvalSuite::execute(&app, campaign.targets(), &RunConfig::quick(99))?;
//! let summary = suite.evaluate(&model)?;
//! assert!(summary.accuracy > 0.9);
//! # Ok::<(), icfl_core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod instance;
mod localize;
mod model;
mod runner;
mod score;

pub use error::{CoreError, Result};
pub use instance::{
    InstanceCampaignRun, InstanceCaseResult, InstanceEvalSuite, InstanceEvalSummary,
};
pub use localize::{Localization, MatchRule, MetricVote, ScoreBreakdown, TargetContribution};
pub use model::CausalModel;
pub use runner::{parallel_map, CampaignRun, EvalSuite, MultiFaultRun, ProductionRun, RunConfig};
pub use score::{CaseResult, EvalSummary};
