//! Algorithm 1 — fault-injection-driven causal learning.
//!
//! A [`CausalModel`] holds, for every metric `M` and every intervened
//! service `s`, the causal set `C(s, M)`: the services whose distribution of
//! `M` shifted while a fault was injected in `s`, as judged by a
//! [`ShiftDetector`] (the paper uses the two-sample KS test). The model also
//! retains the no-fault baseline dataset `D_0` and the metric catalog — the
//! other inputs Algorithm 2 needs at localization time.
//!
//! No single causal graph is reconciled across metrics: per §III-A/§VI-B,
//! each metric observes its own causal world, and collapsing them destroys
//! identifiability (see the `pooled_graph` baseline for the demonstration).

use crate::error::{CoreError, Result};
use icfl_micro::ServiceId;
use icfl_stats::ShiftDetector;
use icfl_telemetry::{Dataset, MetricCatalog};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// The learned interventional causal model (output of Algorithm 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CausalModel {
    catalog: MetricCatalog,
    detector: ShiftDetector,
    num_services: usize,
    baseline: Dataset,
    /// `sets[m]` lists `(intervened service, C(s, M))` pairs for metric `m`,
    /// in intervention order.
    sets: Vec<Vec<(ServiceId, BTreeSet<ServiceId>)>>,
}

impl CausalModel {
    /// Runs Algorithm 1 on pre-collected datasets.
    ///
    /// `baseline` is `D_0`; each element of `faults` is `(s, D_s)` — the
    /// dataset collected while a fault was injected into `s`. All datasets
    /// must share the catalog's metric count and a common service count.
    ///
    /// # Errors
    ///
    /// [`CoreError::ShapeMismatch`] on inconsistent dataset shapes;
    /// [`CoreError::Stats`] if a phase has too few windows for the
    /// configured test.
    pub fn learn(
        catalog: &MetricCatalog,
        detector: ShiftDetector,
        baseline: &Dataset,
        faults: &[(ServiceId, Dataset)],
    ) -> Result<CausalModel> {
        let num_services = baseline.num_services();
        if baseline.num_metrics() != catalog.len() {
            return Err(CoreError::ShapeMismatch {
                what: format!(
                    "baseline has {} metrics, catalog {}",
                    baseline.num_metrics(),
                    catalog.len()
                ),
            });
        }
        for (s, ds) in faults {
            if ds.num_metrics() != catalog.len() || ds.num_services() != num_services {
                return Err(CoreError::ShapeMismatch {
                    what: format!(
                        "fault dataset for {s} is {}×{}, expected {}×{}",
                        ds.num_metrics(),
                        ds.num_services(),
                        catalog.len(),
                        num_services
                    ),
                });
            }
        }

        let mut sets = vec![Vec::with_capacity(faults.len()); catalog.len()];
        for (target, ds) in faults {
            for (m, set) in sets.iter_mut().enumerate() {
                // Algorithm 1 line 9: C(s, M) starts at {s}.
                let mut c: BTreeSet<ServiceId> = BTreeSet::new();
                c.insert(*target);
                // Lines 10–14: add every s' whose distribution shifted.
                for svc in 0..num_services {
                    let svc = ServiceId::from_index(svc);
                    if svc == *target {
                        continue;
                    }
                    let d0 = baseline.samples(m, svc);
                    let dsx = ds.samples(m, svc);
                    if detector.shifted(d0, dsx)?.shifted {
                        c.insert(svc);
                    }
                }
                set.push((*target, c));
            }
        }
        Ok(CausalModel {
            catalog: catalog.clone(),
            detector,
            num_services,
            baseline: baseline.clone(),
            sets,
        })
    }

    /// The metric catalog this model was trained with.
    pub fn catalog(&self) -> &MetricCatalog {
        &self.catalog
    }

    /// The shift detector used for learning (and reused for localization).
    pub fn detector(&self) -> ShiftDetector {
        self.detector
    }

    /// Number of services in the application.
    pub fn num_services(&self) -> usize {
        self.num_services
    }

    /// The retained baseline dataset `D_0`.
    pub fn baseline(&self) -> &Dataset {
        &self.baseline
    }

    /// The services that were intervened on during training.
    pub fn targets(&self) -> Vec<ServiceId> {
        self.sets
            .first()
            .map(|per_target| per_target.iter().map(|(s, _)| *s).collect())
            .unwrap_or_default()
    }

    /// The causal set `C(s, M)` for metric index `metric` and intervened
    /// service `target`, if that intervention was part of training.
    pub fn causal_set(&self, metric: usize, target: ServiceId) -> Option<&BTreeSet<ServiceId>> {
        self.sets
            .get(metric)?
            .iter()
            .find(|(s, _)| *s == target)
            .map(|(_, c)| c)
    }

    /// Iterates `(metric index, target, causal set)` over the whole model.
    pub fn iter_sets(&self) -> impl Iterator<Item = (usize, ServiceId, &BTreeSet<ServiceId>)> + '_ {
        self.sets
            .iter()
            .enumerate()
            .flat_map(|(m, per_target)| per_target.iter().map(move |(s, c)| (m, *s, c)))
    }

    /// Mean Jaccard similarity of two targets' causal signatures across all
    /// metrics — a measure of how *confusable* their faults are under this
    /// model (§III-B: indistinguishable error-propagation signatures defeat
    /// localization no matter how good the detector is).
    ///
    /// Returns `None` unless both targets were trained.
    pub fn signature_similarity(&self, a: ServiceId, b: ServiceId) -> Option<f64> {
        let mut total = 0.0;
        for m in 0..self.catalog.len() {
            let ca = self.causal_set(m, a)?;
            let cb = self.causal_set(m, b)?;
            let inter = ca.intersection(cb).count() as f64;
            let union = ca.union(cb).count() as f64;
            total += if union == 0.0 { 1.0 } else { inter / union };
        }
        Some(total / self.catalog.len() as f64)
    }

    /// All target pairs whose signature similarity is at least `threshold`,
    /// most-similar first — the faults this model is most likely to confuse
    /// with each other. Useful when deciding which extra metric to add to
    /// the catalog.
    pub fn confusable_pairs(&self, threshold: f64) -> Vec<(ServiceId, ServiceId, f64)> {
        let targets = self.targets();
        let mut out = Vec::new();
        for (i, &a) in targets.iter().enumerate() {
            for &b in &targets[i + 1..] {
                if let Some(sim) = self.signature_similarity(a, b) {
                    if sim >= threshold {
                        out.push((a, b, sim));
                    }
                }
            }
        }
        out.sort_by(|x, y| y.2.partial_cmp(&x.2).expect("similarities are finite"));
        out
    }

    /// Incrementally (re)learns the causal sets of a single target from a
    /// fresh fault-phase dataset, leaving every other target untouched.
    ///
    /// This supports the operational loop the paper's platform implies:
    /// when a service is redeployed, only *its* intervention needs to be
    /// re-run, not the whole campaign.
    ///
    /// # Errors
    ///
    /// [`CoreError::ShapeMismatch`] if `dataset` disagrees with the model's
    /// shape; statistics errors from the detector.
    pub fn update_target(&mut self, target: ServiceId, dataset: &Dataset) -> Result<()> {
        if dataset.num_metrics() != self.catalog.len()
            || dataset.num_services() != self.num_services
        {
            return Err(CoreError::ShapeMismatch {
                what: format!(
                    "update dataset is {}×{}, model expects {}×{}",
                    dataset.num_metrics(),
                    dataset.num_services(),
                    self.catalog.len(),
                    self.num_services
                ),
            });
        }
        for m in 0..self.catalog.len() {
            let mut c: BTreeSet<ServiceId> = BTreeSet::new();
            c.insert(target);
            for svc in 0..self.num_services {
                let svc = ServiceId::from_index(svc);
                if svc == target {
                    continue;
                }
                if self
                    .detector
                    .shifted(self.baseline.samples(m, svc), dataset.samples(m, svc))?
                    .shifted
                {
                    c.insert(svc);
                }
            }
            match self.sets[m].iter_mut().find(|(s, _)| *s == target) {
                Some(entry) => entry.1 = c,
                None => self.sets[m].push((target, c)),
            }
        }
        Ok(())
    }

    /// Serializes the model to JSON (the persistence format of the paper's
    /// data-collection platform).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Serde`] if serialization fails.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string_pretty(self).map_err(|e| CoreError::Serde(e.to_string()))
    }

    /// Deserializes a model previously produced by [`CausalModel::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Serde`] on malformed input.
    pub fn from_json(json: &str) -> Result<CausalModel> {
        serde_json::from_str(json).map_err(|e| CoreError::Serde(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icfl_telemetry::{MetricCatalog, MetricSpec, RawMetric};

    fn sid(i: usize) -> ServiceId {
        ServiceId::from_index(i)
    }

    /// Three services, one metric. Values are windows.
    fn dataset(per_service: Vec<Vec<f64>>) -> Dataset {
        Dataset::new(vec!["msg".into()], vec![per_service])
    }

    fn catalog() -> MetricCatalog {
        MetricCatalog::new("test", vec![MetricSpec::Raw(RawMetric::MsgCount)])
    }

    fn steady(level: f64) -> Vec<f64> {
        (0..19)
            .map(|i| level + (i % 5) as f64 * 0.01 * level.max(1.0))
            .collect()
    }

    #[test]
    fn learn_builds_expected_sets() {
        let baseline = dataset(vec![steady(10.0), steady(20.0), steady(0.0)]);
        // Fault on service 0: service 1 shifts hard, service 2 unchanged.
        let fault0 = dataset(vec![steady(10.0), steady(80.0), steady(0.0)]);
        let model = CausalModel::learn(
            &catalog(),
            ShiftDetector::ks(0.05),
            &baseline,
            &[(sid(0), fault0)],
        )
        .unwrap();
        let c = model.causal_set(0, sid(0)).unwrap();
        assert!(c.contains(&sid(0)), "the intervened service is always in C");
        assert!(c.contains(&sid(1)));
        assert!(!c.contains(&sid(2)));
        assert_eq!(model.targets(), vec![sid(0)]);
    }

    #[test]
    fn intervened_service_is_in_c_even_without_observable_shift() {
        let baseline = dataset(vec![steady(10.0), steady(20.0), steady(5.0)]);
        let fault0 = baseline.clone(); // nothing shifted at all
        let model = CausalModel::learn(
            &catalog(),
            ShiftDetector::ks(0.05),
            &baseline,
            &[(sid(0), fault0)],
        )
        .unwrap();
        assert_eq!(
            model
                .causal_set(0, sid(0))
                .unwrap()
                .iter()
                .copied()
                .collect::<Vec<_>>(),
            vec![sid(0)]
        );
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let baseline = dataset(vec![steady(10.0), steady(20.0), steady(5.0)]);
        let two_svc = dataset(vec![steady(10.0), steady(20.0)]);
        let err = CausalModel::learn(
            &catalog(),
            ShiftDetector::ks(0.05),
            &baseline,
            &[(sid(0), two_svc)],
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::ShapeMismatch { .. }));

        let wrong_metrics = Dataset::new(
            vec!["a".into(), "b".into()],
            vec![vec![steady(1.0); 3], vec![steady(1.0); 3]],
        );
        let err = CausalModel::learn(&catalog(), ShiftDetector::ks(0.05), &wrong_metrics, &[])
            .unwrap_err();
        assert!(matches!(err, CoreError::ShapeMismatch { .. }));
    }

    #[test]
    fn unknown_target_returns_none() {
        let baseline = dataset(vec![steady(10.0), steady(20.0), steady(5.0)]);
        let model =
            CausalModel::learn(&catalog(), ShiftDetector::ks(0.05), &baseline, &[]).unwrap();
        assert!(model.causal_set(0, sid(1)).is_none());
        assert!(model.causal_set(5, sid(0)).is_none());
        assert!(model.targets().is_empty());
    }

    #[test]
    fn json_roundtrip() {
        let baseline = dataset(vec![steady(10.0), steady(20.0), steady(0.0)]);
        let fault0 = dataset(vec![steady(10.0), steady(80.0), steady(0.0)]);
        let model = CausalModel::learn(
            &catalog(),
            ShiftDetector::ks(0.05),
            &baseline,
            &[(sid(0), fault0)],
        )
        .unwrap();
        let json = model.to_json().unwrap();
        let back = CausalModel::from_json(&json).unwrap();
        assert_eq!(model, back);
        assert!(CausalModel::from_json("{bad json").is_err());
    }

    #[test]
    fn identical_signatures_are_fully_confusable() {
        let baseline = dataset(vec![steady(10.0), steady(20.0), steady(5.0)]);
        // Faults on 0 and 1 produce the *same* observable shift (service 2
        // jumps) — the §III-B indistinguishability scenario.
        let same_effect = dataset(vec![steady(10.0), steady(20.0), steady(50.0)]);
        let model = CausalModel::learn(
            &catalog(),
            ShiftDetector::ks(0.05),
            &baseline,
            &[(sid(0), same_effect.clone()), (sid(1), same_effect)],
        )
        .unwrap();
        // Signatures differ only by the self-membership {s}; Jaccard of
        // {0,2} vs {1,2} is 1/3.
        let sim = model.signature_similarity(sid(0), sid(1)).unwrap();
        assert!((sim - 1.0 / 3.0).abs() < 1e-9, "sim={sim}");
        let pairs = model.confusable_pairs(0.3);
        assert_eq!(pairs.len(), 1);
        assert_eq!((pairs[0].0, pairs[0].1), (sid(0), sid(1)));
        assert!(model.confusable_pairs(0.9).is_empty());
    }

    #[test]
    fn distinct_signatures_are_not_confusable() {
        let baseline = dataset(vec![steady(10.0), steady(20.0), steady(5.0)]);
        let f0 = dataset(vec![steady(90.0), steady(20.0), steady(5.0)]);
        let f1 = dataset(vec![steady(10.0), steady(90.0), steady(5.0)]);
        let model = CausalModel::learn(
            &catalog(),
            ShiftDetector::ks(0.05),
            &baseline,
            &[(sid(0), f0), (sid(1), f1)],
        )
        .unwrap();
        let sim = model.signature_similarity(sid(0), sid(1)).unwrap();
        assert_eq!(sim, 0.0);
        assert!(model.signature_similarity(sid(0), sid(2)).is_none());
    }

    #[test]
    fn update_target_replaces_only_that_target() {
        let baseline = dataset(vec![steady(10.0), steady(20.0), steady(5.0)]);
        let fault0 = dataset(vec![steady(50.0), steady(20.0), steady(5.0)]);
        let fault1 = dataset(vec![steady(10.0), steady(80.0), steady(5.0)]);
        let mut model = CausalModel::learn(
            &catalog(),
            ShiftDetector::ks(0.05),
            &baseline,
            &[(sid(0), fault0), (sid(1), fault1)],
        )
        .unwrap();
        let before_1 = model.causal_set(0, sid(1)).unwrap().clone();

        // The service-0 intervention is re-run; now it also drags service 2.
        let fault0_v2 = dataset(vec![steady(50.0), steady(20.0), steady(40.0)]);
        model.update_target(sid(0), &fault0_v2).unwrap();
        let after_0 = model.causal_set(0, sid(0)).unwrap();
        assert!(after_0.contains(&sid(2)), "new effect learned: {after_0:?}");
        assert_eq!(
            model.causal_set(0, sid(1)).unwrap(),
            &before_1,
            "other targets untouched"
        );
    }

    #[test]
    fn update_target_can_add_a_new_target() {
        let baseline = dataset(vec![steady(10.0), steady(20.0), steady(5.0)]);
        let mut model =
            CausalModel::learn(&catalog(), ShiftDetector::ks(0.05), &baseline, &[]).unwrap();
        assert!(model.targets().is_empty());
        let fault2 = dataset(vec![steady(10.0), steady(20.0), steady(50.0)]);
        model.update_target(sid(2), &fault2).unwrap();
        assert_eq!(model.targets(), vec![sid(2)]);
        assert!(model.causal_set(0, sid(2)).unwrap().contains(&sid(2)));
    }

    #[test]
    fn update_target_rejects_wrong_shape() {
        let baseline = dataset(vec![steady(10.0), steady(20.0), steady(5.0)]);
        let mut model =
            CausalModel::learn(&catalog(), ShiftDetector::ks(0.05), &baseline, &[]).unwrap();
        let wrong = dataset(vec![steady(1.0), steady(1.0)]);
        assert!(matches!(
            model.update_target(sid(0), &wrong),
            Err(CoreError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn iter_sets_visits_every_pair() {
        let baseline = dataset(vec![steady(10.0), steady(20.0), steady(5.0)]);
        let model = CausalModel::learn(
            &catalog(),
            ShiftDetector::ks(0.05),
            &baseline,
            &[(sid(0), baseline.clone()), (sid(1), baseline.clone())],
        )
        .unwrap();
        let pairs: Vec<_> = model.iter_sets().collect();
        assert_eq!(pairs.len(), 2); // 1 metric × 2 targets
    }
}
