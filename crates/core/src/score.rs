//! Accuracy and informativeness — the paper's two efficacy measures (§VI-A).

use crate::localize::Localization;
use icfl_micro::ServiceId;
use serde::{Deserialize, Serialize};

/// The outcome of localizing one injected fault.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseResult {
    /// The service the fault was actually injected into.
    pub injected: ServiceId,
    /// The candidate set produced by the localizer.
    pub candidates: Vec<ServiceId>,
    /// Whether `injected ∈ candidates`.
    pub correct: bool,
    /// `(n − x) / (n − 1)` where `n` is the number of services and `x` the
    /// candidate-set size; 1.0 = single-service prediction, 0.0 = no
    /// exclusion at all. An empty candidate set scores 0 (and is counted
    /// incorrect), since predicting nothing localizes nothing.
    pub informativeness: f64,
}

impl CaseResult {
    /// Scores one localization against the known injected fault.
    pub fn score(injected: ServiceId, loc: &Localization, num_services: usize) -> CaseResult {
        CaseResult::from_candidates(injected, loc.candidates.iter().copied(), num_services)
    }

    /// Scores a bare candidate set (used by baseline localizers that do not
    /// produce a full [`Localization`]).
    pub fn from_candidates(
        injected: ServiceId,
        candidates: impl IntoIterator<Item = ServiceId>,
        num_services: usize,
    ) -> CaseResult {
        let candidates: Vec<ServiceId> = candidates.into_iter().collect();
        let x = candidates.len();
        let correct = candidates.contains(&injected);
        let informativeness = if x == 0 || num_services <= 1 {
            0.0
        } else {
            (num_services - x) as f64 / (num_services - 1) as f64
        };
        CaseResult {
            injected,
            candidates,
            correct,
            informativeness,
        }
    }
}

/// Aggregate efficacy over a fault-injection evaluation sweep
/// (one row of the paper's Table I).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalSummary {
    /// Fraction of injected faults whose candidate set contained the true
    /// location.
    pub accuracy: f64,
    /// Mean informativeness across cases.
    pub informativeness: f64,
    /// Per-case details.
    pub cases: Vec<CaseResult>,
}

impl EvalSummary {
    /// Aggregates case results.
    ///
    /// # Panics
    ///
    /// Panics if `cases` is empty — a sweep with no cases has no accuracy.
    pub fn aggregate(cases: Vec<CaseResult>) -> EvalSummary {
        assert!(!cases.is_empty(), "cannot summarize zero cases");
        let n = cases.len() as f64;
        let accuracy = cases.iter().filter(|c| c.correct).count() as f64 / n;
        let informativeness = cases.iter().map(|c| c.informativeness).sum::<f64>() / n;
        EvalSummary {
            accuracy,
            informativeness,
            cases,
        }
    }
}

impl EvalSummary {
    /// Bootstrap confidence interval for the accuracy (over the per-case
    /// correct/incorrect indicators). The paper's sweeps have only 8–11
    /// cases, so intervals are wide — which is itself worth reporting when
    /// comparing methods.
    ///
    /// # Errors
    ///
    /// Propagates [`icfl_stats::StatsError`] for degenerate inputs.
    pub fn accuracy_ci(
        &self,
        level: f64,
        seed: u64,
    ) -> crate::Result<icfl_stats::ConfidenceInterval> {
        let indicators: Vec<f64> = self
            .cases
            .iter()
            .map(|c| if c.correct { 1.0 } else { 0.0 })
            .collect();
        Ok(icfl_stats::bootstrap_mean_ci(
            &indicators,
            2_000,
            level,
            seed,
        )?)
    }

    /// Bootstrap confidence interval for the mean informativeness.
    ///
    /// # Errors
    ///
    /// Propagates [`icfl_stats::StatsError`] for degenerate inputs.
    pub fn informativeness_ci(
        &self,
        level: f64,
        seed: u64,
    ) -> crate::Result<icfl_stats::ConfidenceInterval> {
        let values: Vec<f64> = self.cases.iter().map(|c| c.informativeness).collect();
        Ok(icfl_stats::bootstrap_mean_ci(&values, 2_000, level, seed)?)
    }
}

impl std::fmt::Display for EvalSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "accuracy={:.2} informativeness={:.2} ({} cases)",
            self.accuracy,
            self.informativeness,
            self.cases.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn sid(i: usize) -> ServiceId {
        ServiceId::from_index(i)
    }

    fn loc(cands: &[usize]) -> Localization {
        Localization {
            candidates: cands.iter().map(|&i| sid(i)).collect::<BTreeSet<_>>(),
            votes: vec![],
            per_metric: vec![],
        }
    }

    #[test]
    fn single_correct_prediction_scores_perfectly() {
        let c = CaseResult::score(sid(2), &loc(&[2]), 9);
        assert!(c.correct);
        assert_eq!(c.informativeness, 1.0);
    }

    #[test]
    fn informativeness_shrinks_with_set_size() {
        // n=9, x=2 → (9-2)/8 = 0.875
        let c = CaseResult::score(sid(2), &loc(&[2, 5]), 9);
        assert!(c.correct);
        assert!((c.informativeness - 0.875).abs() < 1e-12);
        // x = n → 0.
        let all: Vec<usize> = (0..9).collect();
        let c = CaseResult::score(sid(2), &loc(&all), 9);
        assert_eq!(c.informativeness, 0.0);
    }

    #[test]
    fn wrong_prediction_is_incorrect_but_still_informative() {
        let c = CaseResult::score(sid(2), &loc(&[3]), 9);
        assert!(!c.correct);
        assert_eq!(c.informativeness, 1.0);
    }

    #[test]
    fn empty_prediction_scores_zero() {
        let c = CaseResult::score(sid(2), &loc(&[]), 9);
        assert!(!c.correct);
        assert_eq!(c.informativeness, 0.0);
    }

    #[test]
    fn aggregate_averages() {
        let s = EvalSummary::aggregate(vec![
            CaseResult::score(sid(0), &loc(&[0]), 5),
            CaseResult::score(sid(1), &loc(&[0, 1]), 5),
            CaseResult::score(sid(2), &loc(&[3]), 5),
        ]);
        assert!((s.accuracy - 2.0 / 3.0).abs() < 1e-12);
        let expect = (1.0 + 0.75 + 1.0) / 3.0;
        assert!((s.informativeness - expect).abs() < 1e-12);
        assert!(s.to_string().contains("3 cases"));
    }

    #[test]
    #[should_panic(expected = "zero cases")]
    fn empty_aggregate_panics() {
        EvalSummary::aggregate(vec![]);
    }

    #[test]
    fn confidence_intervals_bracket_point_estimates() {
        let s = EvalSummary::aggregate(vec![
            CaseResult::score(sid(0), &loc(&[0]), 9),
            CaseResult::score(sid(1), &loc(&[1]), 9),
            CaseResult::score(sid(2), &loc(&[3]), 9),
            CaseResult::score(sid(3), &loc(&[3, 4]), 9),
            CaseResult::score(sid(4), &loc(&[4]), 9),
            CaseResult::score(sid(5), &loc(&[]), 9),
        ]);
        let acc = s.accuracy_ci(0.95, 7).unwrap();
        assert!(acc.contains(s.accuracy), "{acc} vs {}", s.accuracy);
        assert!(acc.lo >= 0.0 && acc.hi <= 1.0);
        let inf = s.informativeness_ci(0.95, 7).unwrap();
        assert!(inf.contains(s.informativeness));
        // Small n → non-degenerate width on mixed outcomes.
        assert!(acc.width() > 0.0);
    }
}
