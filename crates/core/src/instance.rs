//! Instance-granularity localization: Algorithms 1 and 2 over *replica
//! rows* instead of services.
//!
//! The dense-index machinery — datasets, causal models, the Algorithm-2
//! vote — is index-agnostic: attach telemetry with one row per replica
//! (`RecorderTap::instances`), treat each row as a pseudo-service, and
//! learning plus localization work unchanged. What changes is naming and
//! scoring: rows are labeled `"svc@r"` (via `Cluster::target_label`) and
//! accuracy is reported twice — once requiring the exact instance (top-1
//! instance hit) and once accepting any replica of the faulted service
//! (the service-level fallback, which can never be worse than the
//! aggregate-counter pipeline's accuracy on the same runs).

use crate::error::Result;
use crate::localize::MatchRule;
use crate::model::CausalModel;
use crate::runner::{parallel_map, RunConfig};
use icfl_apps::App;
use icfl_faults::{InterventionTrace, TraceEntry};
use icfl_micro::{ServiceId, TargetId};
use icfl_scenario::{seeds, RecorderTap, Scenario};
use icfl_sim::{SimDuration, SimTime};
use icfl_stats::ShiftDetector;
use icfl_telemetry::{Dataset, MetricCatalog, Recorder};

/// Simulates one phase with per-replica telemetry rows and an optional
/// fault on a [`TargetId`].
fn simulate_instance_phase(
    app: &App,
    cfg: &RunConfig,
    phase_len: SimDuration,
    fault: Option<(TargetId, &InterventionTrace)>,
) -> Result<Recorder> {
    let from = SimTime::ZERO + cfg.campaign.warmup;
    let to = from + phase_len;
    let mut builder = Scenario::builder(app, cfg.seed).replicas(cfg.replicas);
    if let Some((target, trace)) = fault {
        builder = builder.target_fault_between(target, cfg.fault.clone(), from, to, trace);
    }
    let (mut scenario, recorder) =
        builder.build_with(RecorderTap::instances((from, to), cfg.windows))?;
    scenario.run_until(to);
    Ok(recorder)
}

/// Output of one instance-campaign worker job.
enum InstanceJob {
    Baseline(Recorder),
    Fault(usize, Recorder, Vec<TraceEntry>),
}

/// A completed Algorithm-1 campaign at instance granularity: one baseline
/// plus one fault simulation per intervened *replica row*, with telemetry
/// collected per row.
pub struct InstanceCampaignRun {
    baseline: Recorder,
    faults: Vec<(usize, Recorder)>,
    targets: Vec<TargetId>,
    labels: Vec<String>,
    rows: Vec<usize>,
    /// Audit log of the interventions performed, in row order.
    pub trace: InterventionTrace,
}

impl std::fmt::Debug for InstanceCampaignRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InstanceCampaignRun")
            .field("rows", &self.targets.len())
            .field("fault_runs", &self.faults.len())
            .finish()
    }
}

impl InstanceCampaignRun {
    /// Runs the campaign: a baseline simulation plus one fault simulation
    /// per replica row (every row of every service, stride-sampled by
    /// [`RunConfig::max_targets`]), fanned out over the worker pool.
    /// `cfg.fault` — typically a gray
    /// [`DegradedReplica`](icfl_micro::FaultKind::DegradedReplica) — is
    /// injected into exactly one replica per fault phase.
    ///
    /// # Errors
    ///
    /// Propagates cluster-build, load-generation and telemetry errors
    /// (the first in job order, deterministically).
    pub fn execute(app: &App, cfg: &RunConfig) -> Result<InstanceCampaignRun> {
        let (cluster, _) = app.build(cfg.seed)?;
        let targets = cluster.row_targets();
        let labels: Vec<String> = targets.iter().map(|&t| cluster.target_label(t)).collect();
        drop(cluster);
        let rows: Vec<usize> = cfg
            .sample_targets((0..targets.len()).map(ServiceId::from_index).collect())
            .into_iter()
            .map(|s| s.index())
            .collect();
        let jobs = rows.len() + 1;
        let threads = cfg.resolved_threads(jobs);
        let outcomes = parallel_map(jobs, threads, |i| -> Result<InstanceJob> {
            if i == 0 {
                Ok(InstanceJob::Baseline(simulate_instance_phase(
                    app,
                    cfg,
                    cfg.campaign.baseline,
                    None,
                )?))
            } else {
                let row = rows[i - 1];
                let case_cfg = RunConfig {
                    seed: seeds::campaign_fault(cfg.seed, i - 1),
                    ..cfg.clone()
                };
                let run_trace = InterventionTrace::new();
                let rec = simulate_instance_phase(
                    app,
                    &case_cfg,
                    cfg.campaign.fault_duration,
                    Some((targets[row], &run_trace)),
                )?;
                Ok(InstanceJob::Fault(row, rec, run_trace.entries()))
            }
        });
        let trace = InterventionTrace::new();
        let mut baseline = None;
        let mut faults = Vec::with_capacity(rows.len());
        for outcome in outcomes {
            match outcome? {
                InstanceJob::Baseline(rec) => baseline = Some(rec),
                InstanceJob::Fault(row, rec, entries) => {
                    for entry in entries {
                        trace.push(entry);
                    }
                    faults.push((row, rec));
                }
            }
        }
        Ok(InstanceCampaignRun {
            baseline: baseline.expect("job 0 records the baseline"),
            faults,
            targets,
            labels,
            rows,
            trace,
        })
    }

    /// Every replica row of the application, in dense row order.
    pub fn targets(&self) -> &[TargetId] {
        &self.targets
    }

    /// Human-readable row labels (`"svc"` for single-replica services,
    /// `"svc@r"` for replicas), aligned with [`InstanceCampaignRun::targets`].
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// The intervened row indices, in campaign order.
    pub fn rows(&self) -> &[usize] {
        &self.rows
    }

    /// Runs Algorithm 1 over the per-row datasets: the returned model's
    /// "services" are replica rows.
    ///
    /// # Errors
    ///
    /// Telemetry or statistics errors.
    pub fn learn(&self, catalog: &MetricCatalog, detector: ShiftDetector) -> Result<CausalModel> {
        let baseline = self.baseline.dataset(catalog)?;
        let mut faults: Vec<(ServiceId, Dataset)> = Vec::with_capacity(self.faults.len());
        for (row, rec) in &self.faults {
            faults.push((ServiceId::from_index(*row), rec.dataset(catalog)?));
        }
        let mut span = icfl_obs::span("learn-instances");
        span.arg("catalog", catalog.name());
        span.arg("targets", faults.len());
        CausalModel::learn(catalog, detector, &baseline, &faults)
    }
}

/// One scored instance-granularity production case.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceCaseResult {
    /// The replica row the fault was injected into (ground truth).
    pub injected_row: usize,
    /// The top-ranked row, if any metric voted at all.
    pub top1_row: Option<usize>,
    /// Top-1 named the exact instance.
    pub instance_hit: bool,
    /// Top-1 named some replica of the faulted service (the service-level
    /// fallback: what a service-granularity pipeline is scored on).
    pub service_hit: bool,
}

/// Aggregate accuracy over instance-granularity cases.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceEvalSummary {
    /// Per-case outcomes, in case order.
    pub cases: Vec<InstanceCaseResult>,
    /// Fraction of cases whose top-1 row was the injected instance.
    pub instance_top1: f64,
    /// Fraction of cases whose top-1 row belonged to the injected
    /// service — never below `instance_top1`.
    pub service_top1: f64,
}

impl InstanceEvalSummary {
    /// Aggregates case outcomes.
    pub fn aggregate(cases: Vec<InstanceCaseResult>) -> InstanceEvalSummary {
        let n = cases.len().max(1) as f64;
        let instance = cases.iter().filter(|c| c.instance_hit).count() as f64 / n;
        let service = cases.iter().filter(|c| c.service_hit).count() as f64 / n;
        InstanceEvalSummary {
            cases,
            instance_top1: instance,
            service_top1: service,
        }
    }
}

impl std::fmt::Display for InstanceEvalSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "instance top-1 {:.3}, service top-1 {:.3} over {} cases",
            self.instance_top1,
            self.service_top1,
            self.cases.len()
        )
    }
}

/// A sweep of instance-granularity production runs — one per intervened
/// row — reusable across models/catalogs.
pub struct InstanceEvalSuite {
    runs: Vec<(usize, Recorder)>,
    targets: Vec<TargetId>,
}

impl std::fmt::Debug for InstanceEvalSuite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InstanceEvalSuite")
            .field("cases", &self.runs.len())
            .finish()
    }
}

impl InstanceEvalSuite {
    /// Runs one production case per campaign row: a fresh simulation with
    /// `cfg.fault` active on that row's replica, telemetry per row. Case
    /// seeds derive from `cfg.seed` per index, so results are independent
    /// of thread count and of training traffic.
    ///
    /// # Errors
    ///
    /// Propagates the first failing case (in case order).
    pub fn execute(
        app: &App,
        campaign: &InstanceCampaignRun,
        cfg: &RunConfig,
    ) -> Result<InstanceEvalSuite> {
        let rows = campaign.rows();
        let targets = campaign.targets().to_vec();
        let threads = cfg.resolved_threads(rows.len());
        let results = parallel_map(rows.len(), threads, |i| {
            let case_cfg = RunConfig {
                seed: seeds::eval_case(cfg.seed, i),
                ..cfg.clone()
            };
            simulate_instance_phase(
                app,
                &case_cfg,
                cfg.campaign.fault_duration,
                Some((targets[rows[i]], &InterventionTrace::new())),
            )
        });
        let mut runs = Vec::with_capacity(results.len());
        for (i, run) in results.into_iter().enumerate() {
            runs.push((rows[i], run?));
        }
        Ok(InstanceEvalSuite { runs, targets })
    }

    /// Scores an instance-granularity model on every case: top-1 of the
    /// Algorithm-2 ranking, judged at instance and at service level.
    ///
    /// # Errors
    ///
    /// Localization errors (shape mismatches, statistics).
    pub fn evaluate(&self, model: &CausalModel) -> Result<InstanceEvalSummary> {
        let mut cases = Vec::with_capacity(self.runs.len());
        for (row, rec) in &self.runs {
            let ds = rec.dataset(model.catalog())?;
            let loc = {
                let mut span = icfl_obs::span("localize-instances");
                span.arg("catalog", model.catalog().name());
                model.localize_with(&ds, MatchRule::IntersectionSize)?
            };
            let top1_row = loc.ranked().first().map(|&(s, _)| s.index());
            let injected_service = self.targets[*row].service();
            cases.push(InstanceCaseResult {
                injected_row: *row,
                top1_row,
                instance_hit: top1_row == Some(*row),
                service_hit: top1_row.map(|t| self.targets[t].service()) == Some(injected_service),
            });
        }
        Ok(InstanceEvalSummary::aggregate(cases))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icfl_apps::gray_app;
    use icfl_micro::FaultKind;

    fn gray_cfg(seed: u64) -> RunConfig {
        RunConfig::quick(seed).with_fault(FaultKind::DegradedReplica {
            latency_factor: 8.0,
            error_prob: 0.3,
        })
    }

    #[test]
    fn gray_fault_localizes_to_the_instance() {
        let app = gray_app(3);
        let cfg = gray_cfg(42);
        let campaign = InstanceCampaignRun::execute(&app, &cfg).unwrap();
        assert_eq!(campaign.targets().len(), 5); // A + 3×B + C
        assert_eq!(campaign.labels()[0], "A");
        assert_eq!(campaign.labels()[1], "B@0");
        assert_eq!(campaign.labels()[3], "B@2");
        assert_eq!(campaign.trace.len(), 5);
        // Replica-scoped interventions are audited with their replica.
        let entries = campaign.trace.entries();
        assert_eq!(entries[2].replica, Some(1));

        let model = campaign
            .learn(&MetricCatalog::derived_all(), RunConfig::default_detector())
            .unwrap();
        assert_eq!(model.num_services(), 5);

        let suite = InstanceEvalSuite::execute(&app, &campaign, &gray_cfg(777)).unwrap();
        let summary = suite.evaluate(&model).unwrap();
        assert!(
            summary.instance_top1 >= 0.8,
            "gray faults should localize to the replica: {summary}"
        );
        assert!(summary.service_top1 >= summary.instance_top1, "{summary}");
    }
}
