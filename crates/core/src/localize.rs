//! Algorithm 2 — majority-voting fault localization.
//!
//! Each metric detects its anomaly set `A(M)` in production data, votes for
//! the intervention(s) whose causal set `C(s, M)` best matches it, and the
//! services with the most votes become the candidate root causes.

use crate::error::Result;
use crate::model::CausalModel;
use icfl_micro::ServiceId;
use icfl_telemetry::Dataset;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// How a metric's anomaly set is matched against causal sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum MatchRule {
    /// `argmax_s |A(M) ∩ C(s, M)|` — Algorithm 2 line 14, the paper's rule.
    #[default]
    IntersectionSize,
    /// `argmax_s |A∩C| / |A∪C|` — a set-similarity variant that penalizes
    /// over-broad causal sets (offered as an ablation).
    Jaccard,
}

/// One metric's contribution to the vote (diagnostic output).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricVote {
    /// Metric display name.
    pub metric: String,
    /// The anomaly set `A(M)` observed in production.
    pub anomalies: BTreeSet<ServiceId>,
    /// The service(s) this metric voted for (empty when the metric
    /// abstained because it saw no anomaly).
    pub voted_for: BTreeSet<ServiceId>,
    /// The matching score of the winning service(s).
    pub score: f64,
}

/// The result of Algorithm 2 on one production dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Localization {
    /// The candidate root-cause set: all services tied at the maximum vote.
    /// Empty only if every metric abstained.
    pub candidates: BTreeSet<ServiceId>,
    /// Total votes per service (index = service id).
    pub votes: Vec<f64>,
    /// Per-metric diagnostics, in catalog order.
    pub per_metric: Vec<MetricVote>,
}

impl Localization {
    /// True when `service` is among the candidates.
    pub fn implicates(&self, service: ServiceId) -> bool {
        self.candidates.contains(&service)
    }

    /// Size of the candidate set (the `x` of the informativeness measure).
    pub fn candidate_count(&self) -> usize {
        self.candidates.len()
    }

    /// Services ranked by vote, descending; zero-vote services are omitted.
    /// Ties are ordered by service id for determinism.
    pub fn ranked(&self) -> Vec<(ServiceId, f64)> {
        let mut out: Vec<(ServiceId, f64)> = self
            .votes
            .iter()
            .enumerate()
            .filter(|(_, &v)| v > 0.0)
            .map(|(i, &v)| (ServiceId::from_index(i), v))
            .collect();
        out.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("votes are finite")
                .then(a.0.cmp(&b.0))
        });
        out
    }

    /// The top `k` ranked services — useful when multiple simultaneous
    /// faults are suspected (multi-fault localization is listed as open
    /// work by the paper; the vote naturally extends to it because each
    /// metric can vote for a different culprit).
    pub fn top_k(&self, k: usize) -> BTreeSet<ServiceId> {
        self.ranked().into_iter().take(k).map(|(s, _)| s).collect()
    }
}

/// One metric's contribution to a single candidate's Algorithm-2 score —
/// the forensics view of *why* a target accumulated the votes it did.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TargetContribution {
    /// Metric display name (the breakdown preserves catalog order, so
    /// entries line up with [`Localization::per_metric`]).
    pub metric: String,
    /// The share of this metric's single vote that went to the target:
    /// `1 / |winners|`. One metric's deltas across all targets sum to 1.
    pub delta: f64,
    /// The causal-set entries that actually fired for this target:
    /// `A(M) ∩ C(target, M)`.
    pub matched: BTreeSet<ServiceId>,
    /// `|C(target, M)|` — how specific the winning explanation is (the
    /// smallest-set tiebreak selects on this).
    pub causal_set_size: usize,
    /// The metric's winning match score (shared by all tied winners).
    pub match_score: f64,
}

/// The full Algorithm-2 accounting for one ranked target: which metrics
/// voted for it, which causal-set entries fired, and the per-metric vote
/// deltas whose sum reproduces the target's reported score exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoreBreakdown {
    /// The service (or replica row) being explained.
    pub target: ServiceId,
    /// The target's total vote. Always equals
    /// [`Localization::votes`]`[target]` bit-for-bit: the deltas are
    /// accumulated in the same metric order the election used.
    pub score: f64,
    /// Per-metric contributions in catalog order; only metrics that voted
    /// for the target appear.
    pub contributions: Vec<TargetContribution>,
}

impl CausalModel {
    /// Explains one target's score in `loc`: every metric that voted for
    /// it, the vote share it contributed, and the causal-set entries that
    /// matched the observed anomalies. The returned
    /// [`ScoreBreakdown::score`] reproduces `loc.votes[target]` exactly
    /// (same floating-point accumulation order as the election).
    pub fn score_breakdown(&self, loc: &Localization, target: ServiceId) -> ScoreBreakdown {
        let mut contributions = Vec::new();
        let mut score = 0.0f64;
        for (m, mv) in loc.per_metric.iter().enumerate() {
            if !mv.voted_for.contains(&target) {
                continue;
            }
            let delta = 1.0 / mv.voted_for.len() as f64;
            score += delta;
            let (matched, causal_set_size) = self.causal_set(m, target).map_or_else(
                || (BTreeSet::new(), 0),
                |c| (mv.anomalies.intersection(c).copied().collect(), c.len()),
            );
            contributions.push(TargetContribution {
                metric: mv.metric.clone(),
                delta,
                matched,
                causal_set_size,
                match_score: mv.score,
            });
        }
        ScoreBreakdown {
            target,
            score,
            contributions,
        }
    }

    /// [`CausalModel::score_breakdown`] for every ranked target of `loc`,
    /// in rank order (vote descending, then service id).
    pub fn score_breakdowns(&self, loc: &Localization) -> Vec<ScoreBreakdown> {
        loc.ranked()
            .into_iter()
            .map(|(target, _)| self.score_breakdown(loc, target))
            .collect()
    }

    /// Runs Algorithm 2: localizes the fault explaining `production`.
    ///
    /// `production` must have the same shape as the training datasets
    /// (same catalog, same service count); it is compared against the
    /// retained baseline `D_0` with the model's detector.
    ///
    /// Metrics that observe no anomaly abstain rather than voting
    /// arbitrarily; ties at any stage are preserved (a tie among causal
    /// sets splits the metric's vote; services tied at the maximum vote all
    /// become candidates).
    ///
    /// # Errors
    ///
    /// [`CoreError::ShapeMismatch`](crate::CoreError::ShapeMismatch) on
    /// shape disagreement; [`CoreError::Stats`](crate::CoreError::Stats)
    /// from the underlying tests.
    pub fn localize(&self, production: &Dataset) -> Result<Localization> {
        self.localize_with(production, MatchRule::IntersectionSize)
    }

    /// [`CausalModel::localize`] with an explicit matching rule.
    ///
    /// # Errors
    ///
    /// Same as [`CausalModel::localize`].
    pub fn localize_with(&self, production: &Dataset, rule: MatchRule) -> Result<Localization> {
        if production.num_metrics() != self.catalog().len()
            || production.num_services() != self.num_services()
        {
            return Err(crate::error::CoreError::ShapeMismatch {
                what: format!(
                    "production dataset is {}×{}, model expects {}×{}",
                    production.num_metrics(),
                    production.num_services(),
                    self.catalog().len(),
                    self.num_services()
                ),
            });
        }
        let n = self.num_services();
        let detector = self.detector();
        let mut votes = vec![0.0; n];
        let mut per_metric = Vec::with_capacity(self.catalog().len());

        for (m, metric_name) in self.catalog().metric_names().into_iter().enumerate() {
            // Lines 8–13: the anomaly set A(M).
            let mut anomalies = BTreeSet::new();
            for svc in 0..n {
                let svc = ServiceId::from_index(svc);
                let d0 = self.baseline().samples(m, svc);
                let d = production.samples(m, svc);
                if detector.shifted(d0, d)?.shifted {
                    anomalies.insert(svc);
                }
            }
            // A metric that sees nothing anomalous has no basis to vote.
            if anomalies.is_empty() {
                per_metric.push(MetricVote {
                    metric: metric_name,
                    anomalies,
                    voted_for: BTreeSet::new(),
                    score: 0.0,
                });
                continue;
            }
            // Line 14: the intervention(s) whose causal set best matches.
            // The paper's argmax leaves ties unspecified; we break them in
            // favor of the *smallest* causal set (the most specific
            // explanation), which counters the §V-A warning that confounding
            // inflates causal-set sizes and skews the vote toward services
            // like the front door whose set is the whole application.
            let mut best = f64::NEG_INFINITY;
            let mut best_size = usize::MAX;
            let mut winners: BTreeSet<ServiceId> = BTreeSet::new();
            for target in self.targets() {
                let c = self.causal_set(m, target).expect("target trained");
                let inter = anomalies.intersection(c).count() as f64;
                let score = match rule {
                    MatchRule::IntersectionSize => inter,
                    MatchRule::Jaccard => {
                        let union = anomalies.union(c).count() as f64;
                        if union == 0.0 {
                            0.0
                        } else {
                            inter / union
                        }
                    }
                };
                if score > best + 1e-12 || (score >= best - 1e-12 && c.len() < best_size) {
                    best = score;
                    best_size = c.len();
                    winners.clear();
                    winners.insert(target);
                } else if (score - best).abs() <= 1e-12 && c.len() == best_size {
                    winners.insert(target);
                }
            }
            // A zero-overlap "winner" explains nothing: abstain.
            if best <= 0.0 {
                per_metric.push(MetricVote {
                    metric: metric_name,
                    anomalies,
                    voted_for: BTreeSet::new(),
                    score: 0.0,
                });
                continue;
            }
            // Line 15: the vote. Ties split the metric's single vote so a
            // noisy metric cannot dominate the election.
            let share = 1.0 / winners.len() as f64;
            for &w in &winners {
                votes[w.index()] += share;
            }
            per_metric.push(MetricVote {
                metric: metric_name,
                anomalies,
                voted_for: winners,
                score: best,
            });
        }

        // Line 16: argmax over votes, keeping ties as the candidate set.
        let max = votes.iter().copied().fold(0.0f64, f64::max);
        let candidates: BTreeSet<ServiceId> = if max > 0.0 {
            votes
                .iter()
                .enumerate()
                .filter(|(_, &v)| (v - max).abs() <= 1e-12)
                .map(|(i, _)| ServiceId::from_index(i))
                .collect()
        } else {
            BTreeSet::new()
        };
        Ok(Localization {
            candidates,
            votes,
            per_metric,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icfl_stats::ShiftDetector;
    use icfl_telemetry::{MetricCatalog, MetricSpec, RawMetric};

    fn sid(i: usize) -> ServiceId {
        ServiceId::from_index(i)
    }

    fn steady(level: f64) -> Vec<f64> {
        (0..19)
            .map(|i| level + (i % 5) as f64 * 0.01 * level.max(1.0))
            .collect()
    }

    /// Builds a 2-metric, 3-service model:
    /// metric 0 under fault-on-0 shifts services {0,1};
    /// metric 0 under fault-on-1 shifts {1,2};
    /// metric 1 under fault-on-0 shifts {0};
    /// metric 1 under fault-on-1 shifts {1}.
    fn trained_model() -> CausalModel {
        let catalog = MetricCatalog::new(
            "two",
            vec![
                MetricSpec::Raw(RawMetric::MsgCount),
                MetricSpec::Raw(RawMetric::CpuSeconds),
            ],
        );
        let baseline = Dataset::new(
            vec!["msg".into(), "cpu".into()],
            vec![
                vec![steady(10.0), steady(10.0), steady(10.0)],
                vec![steady(5.0), steady(5.0), steady(5.0)],
            ],
        );
        let fault0 = Dataset::new(
            vec!["msg".into(), "cpu".into()],
            vec![
                vec![steady(50.0), steady(50.0), steady(10.0)],
                vec![steady(25.0), steady(5.0), steady(5.0)],
            ],
        );
        let fault1 = Dataset::new(
            vec!["msg".into(), "cpu".into()],
            vec![
                vec![steady(10.0), steady(50.0), steady(50.0)],
                vec![steady(5.0), steady(25.0), steady(5.0)],
            ],
        );
        CausalModel::learn(
            &catalog,
            ShiftDetector::ks(0.01),
            &baseline,
            &[(sid(0), fault0), (sid(1), fault1)],
        )
        .unwrap()
    }

    #[test]
    fn localizes_reoccurrence_of_trained_fault() {
        let model = trained_model();
        // Production data reproducing the fault-on-0 signature.
        let prod = Dataset::new(
            vec!["msg".into(), "cpu".into()],
            vec![
                vec![steady(52.0), steady(48.0), steady(10.0)],
                vec![steady(26.0), steady(5.0), steady(5.0)],
            ],
        );
        let loc = model.localize(&prod).unwrap();
        assert!(loc.implicates(sid(0)));
        assert_eq!(loc.candidate_count(), 1);
        assert!(loc.votes[0] > loc.votes[1]);
        assert_eq!(loc.per_metric.len(), 2);
        assert!(loc.per_metric[0].anomalies.contains(&sid(0)));
    }

    #[test]
    fn healthy_production_data_yields_no_candidates() {
        let model = trained_model();
        let prod = Dataset::new(
            vec!["msg".into(), "cpu".into()],
            vec![
                vec![steady(10.0), steady(10.0), steady(10.0)],
                vec![steady(5.0), steady(5.0), steady(5.0)],
            ],
        );
        let loc = model.localize(&prod).unwrap();
        assert!(loc.candidates.is_empty());
        assert!(loc.votes.iter().all(|&v| v == 0.0));
        assert!(loc.per_metric.iter().all(|mv| mv.voted_for.is_empty()));
    }

    #[test]
    fn ambiguous_signature_produces_tied_candidates() {
        let model = trained_model();
        // Only service 1 anomalous on metric 0 — matches both C(0,·)={0,1}
        // and C(1,·)={1,2} with intersection 1; metric 1 sees nothing.
        let prod = Dataset::new(
            vec!["msg".into(), "cpu".into()],
            vec![
                vec![steady(10.0), steady(50.0), steady(10.0)],
                vec![steady(5.0), steady(5.0), steady(5.0)],
            ],
        );
        let loc = model.localize(&prod).unwrap();
        assert_eq!(loc.candidates.len(), 2);
        assert!(loc.implicates(sid(0)) && loc.implicates(sid(1)));
        // The split vote gave each half a vote.
        assert!((loc.votes[0] - 0.5).abs() < 1e-9);
        assert!((loc.votes[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn jaccard_breaks_overbroad_ties() {
        let model = trained_model();
        // Same ambiguous production data as above.
        let prod = Dataset::new(
            vec!["msg".into(), "cpu".into()],
            vec![
                vec![steady(10.0), steady(50.0), steady(10.0)],
                vec![steady(5.0), steady(5.0), steady(5.0)],
            ],
        );
        // Jaccard: |{1}∩{0,1}|/|{1}∪{0,1}| = 1/2 for both targets here, so
        // still tied — but the rule is exercised and scores are in (0,1].
        let loc = model.localize_with(&prod, MatchRule::Jaccard).unwrap();
        for mv in &loc.per_metric {
            if !mv.voted_for.is_empty() {
                assert!(mv.score > 0.0 && mv.score <= 1.0);
            }
        }
    }

    #[test]
    fn ranked_orders_by_votes_and_top_k_truncates() {
        let model = trained_model();
        let prod = Dataset::new(
            vec!["msg".into(), "cpu".into()],
            vec![
                vec![steady(52.0), steady(48.0), steady(10.0)],
                vec![steady(26.0), steady(5.0), steady(5.0)],
            ],
        );
        let loc = model.localize(&prod).unwrap();
        let ranked = loc.ranked();
        assert!(!ranked.is_empty());
        assert!(ranked.windows(2).all(|w| w[0].1 >= w[1].1));
        assert_eq!(ranked[0].0, sid(0));
        let top1 = loc.top_k(1);
        assert_eq!(top1.len(), 1);
        assert!(top1.contains(&sid(0)));
        assert!(loc.top_k(100).len() <= 3);
        assert!(loc.top_k(0).is_empty());
    }

    #[test]
    fn score_breakdown_deltas_reproduce_votes_exactly() {
        let model = trained_model();
        let prod = Dataset::new(
            vec!["msg".into(), "cpu".into()],
            vec![
                vec![steady(52.0), steady(48.0), steady(10.0)],
                vec![steady(26.0), steady(5.0), steady(5.0)],
            ],
        );
        let loc = model.localize(&prod).unwrap();
        let breakdowns = model.score_breakdowns(&loc);
        assert_eq!(breakdowns.len(), loc.ranked().len());
        for (b, (svc, vote)) in breakdowns.iter().zip(loc.ranked()) {
            assert_eq!(b.target, svc);
            // Bit-for-bit, not approximately: same accumulation order.
            assert_eq!(b.score.to_bits(), vote.to_bits());
            assert_eq!(b.score.to_bits(), loc.votes[svc.index()].to_bits());
            assert!(!b.contributions.is_empty());
            for c in &b.contributions {
                assert!(c.delta > 0.0 && c.delta <= 1.0);
                assert!(!c.matched.is_empty(), "winner must overlap A(M)");
                assert!(c.causal_set_size >= c.matched.len());
            }
        }
        // The top candidate's contributions name the fired causal entries.
        let top = &breakdowns[0];
        assert!(top
            .contributions
            .iter()
            .any(|c| c.matched.contains(&sid(0))));
    }

    #[test]
    fn score_breakdown_splits_tied_votes() {
        let model = trained_model();
        // Ambiguous signature: both targets tie, each metric vote splits.
        let prod = Dataset::new(
            vec!["msg".into(), "cpu".into()],
            vec![
                vec![steady(10.0), steady(50.0), steady(10.0)],
                vec![steady(5.0), steady(5.0), steady(5.0)],
            ],
        );
        let loc = model.localize(&prod).unwrap();
        for b in model.score_breakdowns(&loc) {
            assert_eq!(b.score.to_bits(), loc.votes[b.target.index()].to_bits());
            for c in &b.contributions {
                assert!((c.delta - 0.5).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn shape_mismatch_rejected() {
        let model = trained_model();
        let prod = Dataset::new(vec!["msg".into()], vec![vec![steady(1.0); 3]]);
        assert!(model.localize(&prod).is_err());
    }

    #[test]
    fn anomaly_without_overlap_abstains() {
        let model = trained_model();
        // Only service 2 anomalous on metric 1 — no causal set contains it
        // for that metric, so the metric abstains instead of voting noise.
        let prod = Dataset::new(
            vec!["msg".into(), "cpu".into()],
            vec![
                vec![steady(10.0), steady(10.0), steady(10.0)],
                vec![steady(5.0), steady(5.0), steady(25.0)],
            ],
        );
        let loc = model.localize(&prod).unwrap();
        assert!(loc.candidates.is_empty());
    }
}
