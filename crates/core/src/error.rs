//! Error type for the ICFL pipeline.

use core::fmt;

/// Errors from learning, localization, or experiment orchestration.
#[derive(Debug)]
pub enum CoreError {
    /// Cluster construction failed.
    Build(icfl_micro::BuildError),
    /// Load-generator configuration failed.
    Load(icfl_loadgen::LoadError),
    /// Telemetry extraction failed.
    Telemetry(icfl_telemetry::TelemetryError),
    /// A statistical test failed (e.g. not enough windows in a phase).
    Stats(icfl_stats::StatsError),
    /// Dataset shapes disagree (wrong service count or metric count).
    ShapeMismatch {
        /// Explanation of the mismatch.
        what: String,
    },
    /// Model (de)serialization failed.
    Serde(String),
    /// An I/O path (report or model file) failed.
    Io(String),
    /// An operation was attempted in a state that cannot honor it
    /// (e.g. attaching a streaming ingester to a simulation that has
    /// already advanced past time zero).
    InvalidState(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Build(e) => write!(f, "cluster build failed: {e}"),
            CoreError::Load(e) => write!(f, "load generation failed: {e}"),
            CoreError::Telemetry(e) => write!(f, "telemetry extraction failed: {e}"),
            CoreError::Stats(e) => write!(f, "statistical test failed: {e}"),
            CoreError::ShapeMismatch { what } => write!(f, "dataset shape mismatch: {what}"),
            CoreError::Serde(e) => write!(f, "model serialization failed: {e}"),
            CoreError::Io(e) => write!(f, "i/o failed: {e}"),
            CoreError::InvalidState(what) => write!(f, "invalid state: {what}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Build(e) => Some(e),
            CoreError::Load(e) => Some(e),
            CoreError::Telemetry(e) => Some(e),
            CoreError::Stats(e) => Some(e),
            _ => None,
        }
    }
}

impl From<icfl_micro::BuildError> for CoreError {
    fn from(e: icfl_micro::BuildError) -> Self {
        CoreError::Build(e)
    }
}

impl From<icfl_loadgen::LoadError> for CoreError {
    fn from(e: icfl_loadgen::LoadError) -> Self {
        CoreError::Load(e)
    }
}

impl From<icfl_telemetry::TelemetryError> for CoreError {
    fn from(e: icfl_telemetry::TelemetryError) -> Self {
        CoreError::Telemetry(e)
    }
}

impl From<icfl_stats::StatsError> for CoreError {
    fn from(e: icfl_stats::StatsError) -> Self {
        CoreError::Stats(e)
    }
}

impl From<icfl_scenario::ScenarioError> for CoreError {
    fn from(e: icfl_scenario::ScenarioError) -> Self {
        match e {
            icfl_scenario::ScenarioError::Build(e) => CoreError::Build(e),
            icfl_scenario::ScenarioError::Load(e) => CoreError::Load(e),
        }
    }
}

impl From<std::io::Error> for CoreError {
    fn from(e: std::io::Error) -> Self {
        CoreError::Io(e.to_string())
    }
}

/// Convenience alias.
pub type Result<T> = core::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = CoreError::from(icfl_stats::StatsError::EmptySample);
        assert!(e.to_string().contains("statistical"));
        assert!(std::error::Error::source(&e).is_some());
        let s = CoreError::ShapeMismatch {
            what: "3 vs 4 services".into(),
        };
        assert!(s.to_string().contains("3 vs 4"));
        assert!(std::error::Error::source(&s).is_none());
    }
}
