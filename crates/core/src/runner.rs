//! End-to-end experiment orchestration: run the Algorithm-1 training
//! campaign on a simulated application, extract datasets, learn the model,
//! and evaluate it on fresh production runs — the full §V protocol.

use crate::error::Result;
use crate::model::CausalModel;
use crate::localize::MatchRule;
use crate::score::{CaseResult, EvalSummary};
use icfl_apps::App;
use icfl_faults::{Campaign, CampaignConfig, FaultInjector, InterventionTrace, PhaseLabel};
use icfl_loadgen::{start_load, LoadConfig};
use icfl_micro::{Cluster, FaultKind, ServiceId};
use icfl_sim::{Sim, SimTime};
use icfl_stats::ShiftDetector;
use icfl_telemetry::{Dataset, MetricCatalog, Recorder, WindowConfig};

/// Configuration of one simulated experiment run (training or evaluation).
#[derive(Debug, Clone, PartialEq)]
pub struct RunConfig {
    /// Root seed for the cluster, load and campaign randomness.
    pub seed: u64,
    /// Load-generator replicas (1 = the paper's 1×, 4 = its 4×).
    pub replicas: usize,
    /// Phase durations.
    pub campaign: CampaignConfig,
    /// Telemetry windowing.
    pub windows: WindowConfig,
    /// The fault injected during campaigns and evaluation cases.
    pub fault: FaultKind,
}

impl RunConfig {
    /// The paper's protocol: 10-minute phases, 60 s/30 s hopping windows,
    /// `http-service-unavailable` faults, 1× load.
    pub fn paper(seed: u64) -> Self {
        RunConfig {
            seed,
            replicas: 1,
            campaign: CampaignConfig::default(),
            windows: WindowConfig::default(),
            fault: FaultKind::ServiceUnavailable,
        }
    }

    /// A scaled-down configuration for tests: 2-minute phases with 10 s/5 s
    /// windows (23 windows per phase — comparable statistical power to the
    /// paper's 19, in a fraction of the simulated time).
    pub fn quick(seed: u64) -> Self {
        RunConfig {
            seed,
            replicas: 1,
            campaign: CampaignConfig::quick(120),
            windows: WindowConfig::from_secs(10, 5),
            fault: FaultKind::ServiceUnavailable,
        }
    }

    /// Sets the load scale, returning `self`.
    pub fn with_replicas(mut self, replicas: usize) -> Self {
        self.replicas = replicas;
        self
    }

    /// Sets the injected fault kind, returning `self`.
    pub fn with_fault(mut self, fault: FaultKind) -> Self {
        self.fault = fault;
        self
    }

    /// The default shift detector used by [`CampaignRun::learn`]: KS at
    /// α = 0.05 with a 10% minimum-relative-effect guard (DESIGN.md
    /// decision 4).
    pub fn default_detector() -> ShiftDetector {
        ShiftDetector::ks(0.05).with_min_effect(0.1)
    }
}

/// A completed Algorithm-1 training campaign: the scraped telemetry plus the
/// phase timeline, ready to yield datasets for any metric catalog.
///
/// Running the simulation is the expensive part; extracting datasets and
/// learning models (per catalog) is cheap, so Table II's six catalogs reuse
/// one `CampaignRun`.
pub struct CampaignRun {
    recorder: Recorder,
    plan: Vec<icfl_faults::PhaseWindow>,
    targets: Vec<ServiceId>,
    windows: WindowConfig,
    service_names: Vec<String>,
    /// Audit log of the interventions actually performed.
    pub trace: InterventionTrace,
}

impl std::fmt::Debug for CampaignRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CampaignRun")
            .field("targets", &self.targets.len())
            .field("phases", &self.plan.len())
            .finish()
    }
}

impl CampaignRun {
    /// Runs the full campaign simulation for `app` under `cfg`.
    ///
    /// # Errors
    ///
    /// Propagates cluster-build, load-generation and telemetry errors.
    pub fn execute(app: &App, cfg: &RunConfig) -> Result<CampaignRun> {
        let (mut cluster, targets) = app.build(cfg.seed)?;
        let mut sim = Sim::new(cfg.seed);
        Cluster::start(&mut sim, &mut cluster);
        let recorder = Recorder::attach(&mut sim, cluster.num_services());
        start_load(
            &mut sim,
            &mut cluster,
            &LoadConfig::closed_loop(app.flows.clone()).with_replicas(cfg.replicas),
        )?;
        let faults = targets.iter().map(|&s| (s, cfg.fault.clone())).collect();
        let campaign = Campaign::new(faults, cfg.campaign);
        let trace = InterventionTrace::new();
        let plan = campaign.arm(&mut sim, SimTime::ZERO, &trace);
        let end = plan.last().expect("campaign has phases").end;
        sim.run_until(end, &mut cluster);
        let service_names = cluster
            .service_ids()
            .into_iter()
            .map(|id| cluster.service_name(id).to_owned())
            .collect();
        Ok(CampaignRun {
            recorder,
            plan,
            targets,
            windows: cfg.windows,
            service_names,
            trace,
        })
    }

    /// The intervened services, in campaign order.
    pub fn targets(&self) -> &[ServiceId] {
        &self.targets
    }

    /// Service names by id index.
    pub fn service_names(&self) -> &[String] {
        &self.service_names
    }

    /// Extracts the baseline dataset `D_0` for a catalog.
    ///
    /// # Errors
    ///
    /// Telemetry extraction errors (phase too short, missing samples).
    pub fn baseline(&self, catalog: &MetricCatalog) -> Result<Dataset> {
        let w = self
            .plan
            .iter()
            .find(|w| w.label == PhaseLabel::Baseline)
            .expect("campaign has a baseline phase");
        Ok(self.recorder.dataset(catalog, w.start, w.end, self.windows)?)
    }

    /// Extracts every fault-phase dataset `(s, D_s)` for a catalog.
    ///
    /// # Errors
    ///
    /// Telemetry extraction errors.
    pub fn fault_datasets(&self, catalog: &MetricCatalog) -> Result<Vec<(ServiceId, Dataset)>> {
        let mut out = Vec::with_capacity(self.targets.len());
        for w in &self.plan {
            if let PhaseLabel::Fault(svc) = w.label {
                let ds = self.recorder.dataset(catalog, w.start, w.end, self.windows)?;
                out.push((svc, ds));
            }
        }
        Ok(out)
    }

    /// Runs Algorithm 1 on this campaign's data for the given catalog.
    ///
    /// # Errors
    ///
    /// Telemetry or statistics errors.
    pub fn learn(&self, catalog: &MetricCatalog, detector: ShiftDetector) -> Result<CausalModel> {
        let baseline = self.baseline(catalog)?;
        let faults = self.fault_datasets(catalog)?;
        CausalModel::learn(catalog, detector, &baseline, &faults)
    }
}

/// One production evaluation case: a fresh simulation with a single fault
/// active, telemetry collected over the fault window.
pub struct ProductionRun {
    recorder: Recorder,
    window: (SimTime, SimTime),
    windows: WindowConfig,
    /// The service the fault was injected into (ground truth).
    pub injected: ServiceId,
}

impl std::fmt::Debug for ProductionRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProductionRun")
            .field("injected", &self.injected)
            .finish()
    }
}

impl ProductionRun {
    /// Simulates production with `fault` active on `injected` for one
    /// fault-duration window (after warmup).
    ///
    /// # Errors
    ///
    /// Propagates cluster-build and load-generation errors.
    pub fn execute(app: &App, injected: ServiceId, cfg: &RunConfig) -> Result<ProductionRun> {
        let (mut cluster, _) = app.build(cfg.seed)?;
        let mut sim = Sim::new(cfg.seed);
        Cluster::start(&mut sim, &mut cluster);
        let recorder = Recorder::attach(&mut sim, cluster.num_services());
        start_load(
            &mut sim,
            &mut cluster,
            &LoadConfig::closed_loop(app.flows.clone()).with_replicas(cfg.replicas),
        )?;
        let from = SimTime::ZERO + cfg.campaign.warmup;
        let to = from + cfg.campaign.fault_duration;
        FaultInjector::inject_between(
            &mut sim,
            injected,
            cfg.fault.clone(),
            from,
            to,
            &InterventionTrace::new(),
        );
        sim.run_until(to, &mut cluster);
        Ok(ProductionRun {
            recorder,
            window: (from, to),
            windows: cfg.windows,
            injected,
        })
    }

    /// The production dataset `D(M, s)` over the fault window.
    ///
    /// # Errors
    ///
    /// Telemetry extraction errors.
    pub fn dataset(&self, catalog: &MetricCatalog) -> Result<Dataset> {
        Ok(self
            .recorder
            .dataset(catalog, self.window.0, self.window.1, self.windows)?)
    }
}

/// A production run with several *simultaneous* faults — the multi-fault
/// scenario the paper leaves as open work. Algorithm 2's vote extends to it
/// naturally via [`Localization::top_k`](crate::Localization::top_k):
/// different metrics vote for different culprits.
pub struct MultiFaultRun {
    recorder: Recorder,
    window: (SimTime, SimTime),
    windows: WindowConfig,
    /// The services faults were injected into (ground truth).
    pub injected: Vec<ServiceId>,
}

impl std::fmt::Debug for MultiFaultRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiFaultRun").field("injected", &self.injected).finish()
    }
}

impl MultiFaultRun {
    /// Simulates production with every fault in `faults` active at once
    /// over one fault-duration window (after warmup).
    ///
    /// # Errors
    ///
    /// Propagates cluster-build and load-generation errors.
    ///
    /// # Panics
    ///
    /// Panics if `faults` is empty.
    pub fn execute(
        app: &App,
        faults: &[(ServiceId, FaultKind)],
        cfg: &RunConfig,
    ) -> Result<MultiFaultRun> {
        assert!(!faults.is_empty(), "a multi-fault run needs at least one fault");
        let (mut cluster, _) = app.build(cfg.seed)?;
        let mut sim = Sim::new(cfg.seed);
        Cluster::start(&mut sim, &mut cluster);
        let recorder = Recorder::attach(&mut sim, cluster.num_services());
        start_load(
            &mut sim,
            &mut cluster,
            &LoadConfig::closed_loop(app.flows.clone()).with_replicas(cfg.replicas),
        )?;
        let from = SimTime::ZERO + cfg.campaign.warmup;
        let to = from + cfg.campaign.fault_duration;
        let trace = InterventionTrace::new();
        for (svc, fault) in faults {
            FaultInjector::inject_between(&mut sim, *svc, fault.clone(), from, to, &trace);
        }
        sim.run_until(to, &mut cluster);
        Ok(MultiFaultRun {
            recorder,
            window: (from, to),
            windows: cfg.windows,
            injected: faults.iter().map(|(s, _)| *s).collect(),
        })
    }

    /// The production dataset over the multi-fault window.
    ///
    /// # Errors
    ///
    /// Telemetry extraction errors.
    pub fn dataset(&self, catalog: &MetricCatalog) -> Result<Dataset> {
        Ok(self
            .recorder
            .dataset(catalog, self.window.0, self.window.1, self.windows)?)
    }
}

/// A sweep of production runs — one per fault target — reusable across
/// models/catalogs (the expensive simulations run once).
pub struct EvalSuite {
    /// The production runs, one per injected fault.
    pub runs: Vec<ProductionRun>,
    num_services: usize,
}

impl std::fmt::Debug for EvalSuite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalSuite").field("cases", &self.runs.len()).finish()
    }
}

impl EvalSuite {
    /// Number of services in the evaluated application.
    pub fn num_services(&self) -> usize {
        self.num_services
    }

    /// Runs one production case per target. Each case gets a distinct seed
    /// derived from `cfg.seed` so evaluation traffic is independent of
    /// training traffic.
    ///
    /// # Errors
    ///
    /// Propagates the first case's failure.
    pub fn execute(app: &App, targets: &[ServiceId], cfg: &RunConfig) -> Result<EvalSuite> {
        let mut runs = Vec::with_capacity(targets.len());
        for (i, &t) in targets.iter().enumerate() {
            let case_cfg = RunConfig {
                seed: cfg
                    .seed
                    .wrapping_add((i as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
                ..cfg.clone()
            };
            runs.push(ProductionRun::execute(app, t, &case_cfg)?);
        }
        Ok(EvalSuite { runs, num_services: app.num_services() })
    }

    /// Scores a model on every case with the paper's matching rule.
    ///
    /// # Errors
    ///
    /// Localization errors (shape mismatches, statistics).
    pub fn evaluate(&self, model: &CausalModel) -> Result<EvalSummary> {
        self.evaluate_with(model, MatchRule::IntersectionSize)
    }

    /// Scores a model on every case with an explicit matching rule.
    ///
    /// # Errors
    ///
    /// Localization errors (shape mismatches, statistics).
    pub fn evaluate_with(&self, model: &CausalModel, rule: MatchRule) -> Result<EvalSummary> {
        let mut cases = Vec::with_capacity(self.runs.len());
        for run in &self.runs {
            let ds = run.dataset(model.catalog())?;
            let loc = model.localize_with(&ds, rule)?;
            cases.push(CaseResult::score(run.injected, &loc, self.num_services));
        }
        Ok(EvalSummary::aggregate(cases))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icfl_apps::pattern1;

    #[test]
    fn pattern1_end_to_end_perfect_at_matched_load() {
        let app = pattern1();
        let cfg = RunConfig::quick(42);
        let campaign = CampaignRun::execute(&app, &cfg).unwrap();
        assert_eq!(campaign.targets().len(), 3);
        assert_eq!(campaign.trace.len(), 3);
        assert_eq!(campaign.service_names(), &["A", "B", "C"]);

        let model = campaign
            .learn(&MetricCatalog::derived_all(), RunConfig::default_detector())
            .unwrap();
        // C(B) under the msg metric should include A (error logs at A).
        let b = campaign.targets()[1];
        let a = campaign.targets()[0];
        let msg_set = model.causal_set(0, b).unwrap();
        assert!(msg_set.contains(&a), "C(B, msg) should contain A: {msg_set:?}");

        let suite = EvalSuite::execute(&app, campaign.targets(), &RunConfig::quick(777)).unwrap();
        let summary = suite.evaluate(&model).unwrap();
        assert!(
            summary.accuracy >= 0.99,
            "pattern1 should localize perfectly at matched load: {summary}"
        );
        assert!(summary.informativeness > 0.4, "{summary}");
    }

    #[test]
    fn campaign_run_is_reusable_across_catalogs() {
        let app = pattern1();
        let cfg = RunConfig::quick(7);
        let campaign = CampaignRun::execute(&app, &cfg).unwrap();
        let m1 = campaign
            .learn(&MetricCatalog::raw_msg_rate(), RunConfig::default_detector())
            .unwrap();
        let m2 = campaign
            .learn(&MetricCatalog::derived_cpu(), RunConfig::default_detector())
            .unwrap();
        assert_eq!(m1.catalog().name(), "raw-msg");
        assert_eq!(m2.catalog().name(), "derived-cpu");
        assert_eq!(m1.num_services(), m2.num_services());
    }
}
