//! End-to-end experiment orchestration: run the Algorithm-1 training
//! campaign on a simulated application, extract datasets, learn the model,
//! and evaluate it on fresh production runs — the full §V protocol.
//!
//! # Parallel execution
//!
//! The campaign baseline, every per-target fault run, and every production
//! evaluation case are *independent* seeded simulations, so the executor
//! fans them out over a scoped worker pool ([`std::thread::scope`]). The
//! thread count never affects results: each job owns its simulation and
//! RNG stream, and outputs are merged in campaign order after the pool
//! joins. `threads = 1` is byte-identical to `threads = N` by construction
//! (asserted by the `parallel_equals_serial` integration test).

use crate::error::Result;
use crate::localize::MatchRule;
use crate::model::CausalModel;
use crate::score::{CaseResult, EvalSummary};
use icfl_apps::App;
use icfl_faults::{CampaignConfig, InterventionTrace, TraceEntry};
use icfl_micro::{FaultKind, ServiceId};
use icfl_scenario::{seeds, RecorderTap, Scenario};
use icfl_sim::{SimDuration, SimTime};
use icfl_stats::ShiftDetector;
use icfl_telemetry::{Dataset, MetricCatalog, Recorder, WindowConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Configuration of one simulated experiment run (training or evaluation).
#[derive(Debug, Clone, PartialEq)]
pub struct RunConfig {
    /// Root seed for the cluster, load and campaign randomness.
    pub seed: u64,
    /// Load-generator replicas (1 = the paper's 1×, 4 = its 4×).
    pub replicas: usize,
    /// Phase durations.
    pub campaign: CampaignConfig,
    /// Telemetry windowing.
    pub windows: WindowConfig,
    /// The fault injected during campaigns and evaluation cases.
    pub fault: FaultKind,
    /// Worker threads for the campaign/evaluation fan-out. `0` (the
    /// default) resolves to the `ICFL_THREADS` environment variable or,
    /// failing that, [`std::thread::available_parallelism`]. The resolved
    /// count is capped by the number of runnable jobs. Thread count never
    /// changes results — see the module docs.
    pub threads: usize,
    /// Upper bound on the number of intervention targets per campaign.
    /// `None` (the default) intervenes on every fault target the app
    /// declares — the paper's protocol. `Some(m)` stride-samples `m`
    /// targets deterministically from the app's target list, so
    /// fleet-scale topologies (hundreds to thousands of services) can run
    /// sharded campaigns without simulating one fault phase per service.
    pub max_targets: Option<usize>,
}

impl RunConfig {
    /// The paper's protocol: 10-minute phases, 60 s/30 s hopping windows,
    /// `http-service-unavailable` faults, 1× load.
    pub fn paper(seed: u64) -> Self {
        RunConfig {
            seed,
            replicas: 1,
            campaign: CampaignConfig::default(),
            windows: WindowConfig::default(),
            fault: FaultKind::ServiceUnavailable,
            threads: 0,
            max_targets: None,
        }
    }

    /// A scaled-down configuration for tests: 2-minute phases with 10 s/5 s
    /// windows (23 windows per phase — comparable statistical power to the
    /// paper's 19, in a fraction of the simulated time).
    pub fn quick(seed: u64) -> Self {
        RunConfig {
            seed,
            replicas: 1,
            campaign: CampaignConfig::quick(120),
            windows: WindowConfig::from_secs(10, 5),
            fault: FaultKind::ServiceUnavailable,
            threads: 0,
            max_targets: None,
        }
    }

    /// Sets the load scale, returning `self`.
    pub fn with_replicas(mut self, replicas: usize) -> Self {
        self.replicas = replicas;
        self
    }

    /// Sets the injected fault kind, returning `self`.
    pub fn with_fault(mut self, fault: FaultKind) -> Self {
        self.fault = fault;
        self
    }

    /// Sets the worker-thread count (`0` = auto), returning `self`.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Caps the campaign at `m` stride-sampled targets, returning `self`.
    pub fn with_max_targets(mut self, m: usize) -> Self {
        self.max_targets = Some(m);
        self
    }

    /// Applies [`RunConfig::max_targets`] to an app's resolved target
    /// list: picks `m` targets at indices `⌊i·n/m⌋` — an even stride over
    /// the list, so every region of the topology (chain depth, mesh layer,
    /// replica shard) stays represented. Deterministic: depends only on
    /// the list order and `m`, never on seeds or thread count.
    pub fn sample_targets(&self, targets: Vec<ServiceId>) -> Vec<ServiceId> {
        match self.max_targets {
            Some(m) if m < targets.len() => {
                (0..m).map(|i| targets[i * targets.len() / m]).collect()
            }
            _ => targets,
        }
    }

    /// The worker count actually used for `jobs` runnable jobs: the
    /// explicit [`RunConfig::threads`] if non-zero, else `ICFL_THREADS`,
    /// else available parallelism — capped by `jobs` and at least 1.
    pub fn resolved_threads(&self, jobs: usize) -> usize {
        let n = if self.threads > 0 {
            self.threads
        } else if let Some(n) = std::env::var("ICFL_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
        {
            n
        } else {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        };
        n.min(jobs.max(1))
    }

    /// The default shift detector used by [`CampaignRun::learn`]: KS at
    /// α = 0.05 with a 10% minimum-relative-effect guard (DESIGN.md
    /// decision 4).
    pub fn default_detector() -> ShiftDetector {
        ShiftDetector::ks(0.05).with_min_effect(0.1)
    }
}

/// Runs `jobs` independent jobs on up to `threads` scoped workers and
/// returns their outputs in job order regardless of completion order.
///
/// Workers pull indices from a shared atomic counter; each output is
/// tagged with its index and the tagged list is sorted after the pool
/// joins, so the schedule cannot influence the result. `threads <= 1`
/// (or a single job) runs inline on the caller. This is the fan-out
/// primitive behind every campaign/evaluation sweep in the workspace;
/// downstream crates (e.g. the online production driver) reuse it for
/// their own deterministic sweeps.
pub fn parallel_map<T, F>(jobs: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if jobs == 0 {
        return Vec::new();
    }
    // Journal counters hold only thread-count-invariant facts (pool and
    // job totals); worker counts and task splits are wall-clock profile
    // material and live in the span args below.
    icfl_obs::counter_add("icfl_executor_pools_total", &[], 1);
    icfl_obs::counter_add("icfl_executor_jobs_total", &[], jobs as u64);
    let mut pool_span = icfl_obs::span("executor.pool");
    pool_span.arg("jobs", jobs);
    pool_span.arg("threads", threads.min(jobs).max(1));
    if threads <= 1 || jobs == 1 {
        return (0..jobs).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let done = Mutex::new(Vec::with_capacity(jobs));
    std::thread::scope(|scope| {
        for _ in 0..threads.min(jobs) {
            scope.spawn(|| {
                let mut worker_span = icfl_obs::span("executor.worker");
                let mut tasks = 0u64;
                let mut busy = std::time::Duration::ZERO;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs {
                        break;
                    }
                    let started = std::time::Instant::now();
                    let out = f(i);
                    busy += started.elapsed();
                    tasks += 1;
                    done.lock().expect("worker results lock").push((i, out));
                }
                worker_span.arg("tasks", tasks);
                worker_span.arg("busy_us", busy.as_micros());
            });
        }
    });
    let mut done = done.into_inner().expect("worker results lock");
    done.sort_unstable_by_key(|&(i, _)| i);
    done.into_iter().map(|(_, out)| out).collect()
}

/// Telemetry of one simulated phase: the run's phase-scoped recorder.
struct PhaseRecording {
    recorder: Recorder,
}

/// Assembles a fresh scenario from `cfg.seed`, drives closed-loop load
/// through warmup plus one phase of `phase_len`, with `fault` (if any)
/// active over the phase.
fn simulate_phase(
    app: &App,
    cfg: &RunConfig,
    phase_len: SimDuration,
    fault: Option<(ServiceId, &InterventionTrace)>,
) -> Result<PhaseRecording> {
    let from = SimTime::ZERO + cfg.campaign.warmup;
    let to = from + phase_len;
    let mut builder = Scenario::builder(app, cfg.seed).replicas(cfg.replicas);
    if let Some((svc, trace)) = fault {
        builder = builder.fault_between(svc, cfg.fault.clone(), from, to, trace);
    }
    let (mut scenario, recorder) = builder.build_with(RecorderTap::new((from, to), cfg.windows))?;
    scenario.run_until(to);
    Ok(PhaseRecording { recorder })
}

/// Output of one campaign worker job.
enum CampaignJob {
    Baseline(PhaseRecording),
    Fault(ServiceId, PhaseRecording, Vec<TraceEntry>),
}

/// A completed Algorithm-1 training campaign: per-phase telemetry ready to
/// yield datasets for any metric catalog.
///
/// Running the simulations is the expensive part; extracting datasets and
/// learning models (per catalog) is cheap, so Table II's six catalogs reuse
/// one `CampaignRun`. The baseline phase and each per-target fault phase
/// are independent seeded simulations executed on a worker pool sized by
/// [`RunConfig::resolved_threads`].
pub struct CampaignRun {
    baseline: PhaseRecording,
    faults: Vec<(ServiceId, PhaseRecording)>,
    targets: Vec<ServiceId>,
    service_names: Vec<String>,
    /// Audit log of the interventions actually performed, in campaign
    /// (target) order.
    pub trace: InterventionTrace,
}

impl std::fmt::Debug for CampaignRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CampaignRun")
            .field("targets", &self.targets.len())
            .field("fault_runs", &self.faults.len())
            .finish()
    }
}

impl CampaignRun {
    /// Runs the full campaign for `app` under `cfg`: one baseline
    /// simulation plus one fault simulation per target, fanned out over
    /// the worker pool. Per-run intervention logs are merged into
    /// [`CampaignRun::trace`] in target order, so the trace (like every
    /// other output) is independent of the thread count.
    ///
    /// # Errors
    ///
    /// Propagates cluster-build, load-generation and telemetry errors
    /// (the first in job order, deterministically).
    pub fn execute(app: &App, cfg: &RunConfig) -> Result<CampaignRun> {
        let (cluster, targets) = app.build(cfg.seed)?;
        let targets = cfg.sample_targets(targets);
        let service_names: Vec<String> = cluster
            .service_ids()
            .into_iter()
            .map(|id| cluster.service_name(id).to_owned())
            .collect();
        drop(cluster);
        let jobs = targets.len() + 1;
        let threads = cfg.resolved_threads(jobs);
        let outcomes = parallel_map(jobs, threads, |i| -> Result<CampaignJob> {
            if i == 0 {
                Ok(CampaignJob::Baseline(simulate_phase(
                    app,
                    cfg,
                    cfg.campaign.baseline,
                    None,
                )?))
            } else {
                let target = targets[i - 1];
                let case_cfg = RunConfig {
                    seed: seeds::campaign_fault(cfg.seed, i - 1),
                    ..cfg.clone()
                };
                let run_trace = InterventionTrace::new();
                let rec = simulate_phase(
                    app,
                    &case_cfg,
                    cfg.campaign.fault_duration,
                    Some((target, &run_trace)),
                )?;
                Ok(CampaignJob::Fault(target, rec, run_trace.entries()))
            }
        });
        let trace = InterventionTrace::new();
        let mut baseline = None;
        let mut faults = Vec::with_capacity(targets.len());
        for outcome in outcomes {
            match outcome? {
                CampaignJob::Baseline(rec) => baseline = Some(rec),
                CampaignJob::Fault(svc, rec, entries) => {
                    for entry in entries {
                        trace.push(entry);
                    }
                    faults.push((svc, rec));
                }
            }
        }
        Ok(CampaignRun {
            baseline: baseline.expect("job 0 records the baseline"),
            faults,
            targets,
            service_names,
            trace,
        })
    }

    /// The intervened services, in campaign order.
    pub fn targets(&self) -> &[ServiceId] {
        &self.targets
    }

    /// Service names by id index.
    pub fn service_names(&self) -> &[String] {
        &self.service_names
    }

    /// Extracts the baseline dataset `D_0` for a catalog.
    ///
    /// # Errors
    ///
    /// Telemetry extraction errors (phase too short, missing samples).
    pub fn baseline(&self, catalog: &MetricCatalog) -> Result<Dataset> {
        Ok(self.baseline.recorder.dataset(catalog)?)
    }

    /// Extracts every fault-phase dataset `(s, D_s)` for a catalog.
    ///
    /// # Errors
    ///
    /// Telemetry extraction errors.
    pub fn fault_datasets(&self, catalog: &MetricCatalog) -> Result<Vec<(ServiceId, Dataset)>> {
        let mut out = Vec::with_capacity(self.faults.len());
        for (svc, rec) in &self.faults {
            out.push((*svc, rec.recorder.dataset(catalog)?));
        }
        Ok(out)
    }

    /// Runs Algorithm 1 on this campaign's data for the given catalog.
    ///
    /// # Errors
    ///
    /// Telemetry or statistics errors.
    pub fn learn(&self, catalog: &MetricCatalog, detector: ShiftDetector) -> Result<CausalModel> {
        let baseline = self.baseline(catalog)?;
        let faults = self.fault_datasets(catalog)?;
        let mut span = icfl_obs::span("learn");
        span.arg("catalog", catalog.name());
        span.arg("targets", faults.len());
        CausalModel::learn(catalog, detector, &baseline, &faults)
    }
}

/// One production evaluation case: a fresh simulation with a single fault
/// active, telemetry collected over the fault window.
pub struct ProductionRun {
    recorder: Recorder,
    /// The service the fault was injected into (ground truth).
    pub injected: ServiceId,
}

impl std::fmt::Debug for ProductionRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProductionRun")
            .field("injected", &self.injected)
            .finish()
    }
}

impl ProductionRun {
    /// Simulates production with `fault` active on `injected` for one
    /// fault-duration window (after warmup).
    ///
    /// # Errors
    ///
    /// Propagates cluster-build and load-generation errors.
    pub fn execute(app: &App, injected: ServiceId, cfg: &RunConfig) -> Result<ProductionRun> {
        let rec = simulate_phase(
            app,
            cfg,
            cfg.campaign.fault_duration,
            Some((injected, &InterventionTrace::new())),
        )?;
        Ok(ProductionRun {
            recorder: rec.recorder,
            injected,
        })
    }

    /// The production dataset `D(M, s)` over the fault window.
    ///
    /// # Errors
    ///
    /// Telemetry extraction errors.
    pub fn dataset(&self, catalog: &MetricCatalog) -> Result<Dataset> {
        Ok(self.recorder.dataset(catalog)?)
    }
}

/// A production run with several *simultaneous* faults — the multi-fault
/// scenario the paper leaves as open work. Algorithm 2's vote extends to it
/// naturally via [`Localization::top_k`](crate::Localization::top_k):
/// different metrics vote for different culprits.
pub struct MultiFaultRun {
    recorder: Recorder,
    /// The services faults were injected into (ground truth).
    pub injected: Vec<ServiceId>,
}

impl std::fmt::Debug for MultiFaultRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiFaultRun")
            .field("injected", &self.injected)
            .finish()
    }
}

impl MultiFaultRun {
    /// Simulates production with every fault in `faults` active at once
    /// over one fault-duration window (after warmup). A multi-fault case
    /// is a single simulation, so it runs serially; parallelism applies
    /// across cases (callers fan out whole `MultiFaultRun`s).
    ///
    /// # Errors
    ///
    /// Propagates cluster-build and load-generation errors.
    ///
    /// # Panics
    ///
    /// Panics if `faults` is empty.
    pub fn execute(
        app: &App,
        faults: &[(ServiceId, FaultKind)],
        cfg: &RunConfig,
    ) -> Result<MultiFaultRun> {
        assert!(
            !faults.is_empty(),
            "a multi-fault run needs at least one fault"
        );
        let from = SimTime::ZERO + cfg.campaign.warmup;
        let to = from + cfg.campaign.fault_duration;
        let trace = InterventionTrace::new();
        let mut builder = Scenario::builder(app, cfg.seed).replicas(cfg.replicas);
        for (svc, fault) in faults {
            builder = builder.fault_between(*svc, fault.clone(), from, to, &trace);
        }
        let (mut scenario, recorder) =
            builder.build_with(RecorderTap::new((from, to), cfg.windows))?;
        scenario.run_until(to);
        Ok(MultiFaultRun {
            recorder,
            injected: faults.iter().map(|(s, _)| *s).collect(),
        })
    }

    /// The production dataset over the multi-fault window.
    ///
    /// # Errors
    ///
    /// Telemetry extraction errors.
    pub fn dataset(&self, catalog: &MetricCatalog) -> Result<Dataset> {
        Ok(self.recorder.dataset(catalog)?)
    }
}

/// A sweep of production runs — one per fault target — reusable across
/// models/catalogs (the expensive simulations run once).
pub struct EvalSuite {
    /// The production runs, one per injected fault.
    pub runs: Vec<ProductionRun>,
    num_services: usize,
}

impl std::fmt::Debug for EvalSuite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalSuite")
            .field("cases", &self.runs.len())
            .finish()
    }
}

impl EvalSuite {
    /// Number of services in the evaluated application.
    pub fn num_services(&self) -> usize {
        self.num_services
    }

    /// Runs one production case per target, fanned out over the worker
    /// pool. Each case gets a distinct seed derived from `cfg.seed` so
    /// evaluation traffic is independent of training traffic; the
    /// derivation is per-index, so results do not depend on thread count.
    ///
    /// # Errors
    ///
    /// Propagates the first failing case (in case order).
    pub fn execute(app: &App, targets: &[ServiceId], cfg: &RunConfig) -> Result<EvalSuite> {
        let threads = cfg.resolved_threads(targets.len());
        let results = parallel_map(targets.len(), threads, |i| {
            let case_cfg = RunConfig {
                seed: seeds::eval_case(cfg.seed, i),
                ..cfg.clone()
            };
            ProductionRun::execute(app, targets[i], &case_cfg)
        });
        let mut runs = Vec::with_capacity(results.len());
        for run in results {
            runs.push(run?);
        }
        Ok(EvalSuite {
            runs,
            num_services: app.num_services(),
        })
    }

    /// Scores a model on every case with the paper's matching rule.
    ///
    /// # Errors
    ///
    /// Localization errors (shape mismatches, statistics).
    pub fn evaluate(&self, model: &CausalModel) -> Result<EvalSummary> {
        self.evaluate_with(model, MatchRule::IntersectionSize)
    }

    /// Scores a model on every case with an explicit matching rule.
    ///
    /// # Errors
    ///
    /// Localization errors (shape mismatches, statistics).
    pub fn evaluate_with(&self, model: &CausalModel, rule: MatchRule) -> Result<EvalSummary> {
        let mut cases = Vec::with_capacity(self.runs.len());
        for run in &self.runs {
            let ds = run.dataset(model.catalog())?;
            let loc = {
                let mut span = icfl_obs::span("localize");
                span.arg("catalog", model.catalog().name());
                model.localize_with(&ds, rule)?
            };
            cases.push(CaseResult::score(run.injected, &loc, self.num_services));
        }
        Ok(EvalSummary::aggregate(cases))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icfl_apps::pattern1;

    #[test]
    fn pattern1_end_to_end_perfect_at_matched_load() {
        let app = pattern1();
        let cfg = RunConfig::quick(42);
        let campaign = CampaignRun::execute(&app, &cfg).unwrap();
        assert_eq!(campaign.targets().len(), 3);
        assert_eq!(campaign.trace.len(), 3);
        assert_eq!(campaign.service_names(), &["A", "B", "C"]);

        let model = campaign
            .learn(&MetricCatalog::derived_all(), RunConfig::default_detector())
            .unwrap();
        // C(B) under the msg metric should include A (error logs at A).
        let b = campaign.targets()[1];
        let a = campaign.targets()[0];
        let msg_set = model.causal_set(0, b).unwrap();
        assert!(
            msg_set.contains(&a),
            "C(B, msg) should contain A: {msg_set:?}"
        );

        let suite = EvalSuite::execute(&app, campaign.targets(), &RunConfig::quick(777)).unwrap();
        let summary = suite.evaluate(&model).unwrap();
        assert!(
            summary.accuracy >= 0.99,
            "pattern1 should localize perfectly at matched load: {summary}"
        );
        assert!(summary.informativeness > 0.4, "{summary}");
    }

    #[test]
    fn campaign_run_is_reusable_across_catalogs() {
        let app = pattern1();
        let cfg = RunConfig::quick(7);
        let campaign = CampaignRun::execute(&app, &cfg).unwrap();
        let m1 = campaign
            .learn(
                &MetricCatalog::raw_msg_rate(),
                RunConfig::default_detector(),
            )
            .unwrap();
        let m2 = campaign
            .learn(&MetricCatalog::derived_cpu(), RunConfig::default_detector())
            .unwrap();
        assert_eq!(m1.catalog().name(), "raw-msg");
        assert_eq!(m2.catalog().name(), "derived-cpu");
        assert_eq!(m1.num_services(), m2.num_services());
    }

    #[test]
    fn thread_resolution_prefers_explicit_then_caps_by_jobs() {
        let cfg = RunConfig::quick(1).with_threads(3);
        assert_eq!(cfg.resolved_threads(8), 3);
        assert_eq!(cfg.resolved_threads(2), 2);
        // Auto mode resolves to at least one worker even for zero jobs.
        let auto = RunConfig::quick(1);
        assert!(auto.resolved_threads(0) >= 1);
    }

    #[test]
    fn parallel_map_preserves_job_order() {
        let out = parallel_map(17, 4, |i| i * i);
        assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
        assert_eq!(parallel_map(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(3, 1, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn target_sampling_strides_evenly_and_is_stable() {
        let ids: Vec<ServiceId> = (0..10).map(ServiceId::from_index).collect();
        // No cap, or a cap at/above the list length: identity.
        assert_eq!(RunConfig::quick(1).sample_targets(ids.clone()), ids);
        assert_eq!(
            RunConfig::quick(1)
                .with_max_targets(10)
                .sample_targets(ids.clone()),
            ids
        );
        // A cap of 4 over 10 picks indices 0, 2, 5, 7 — an even stride.
        let picked = RunConfig::quick(1)
            .with_max_targets(4)
            .sample_targets(ids.clone());
        assert_eq!(
            picked,
            vec![0usize, 2, 5, 7]
                .into_iter()
                .map(ServiceId::from_index)
                .collect::<Vec<_>>()
        );
        // Deterministic: seed does not participate.
        assert_eq!(
            RunConfig::quick(999)
                .with_max_targets(4)
                .sample_targets(ids),
            picked
        );
    }

    #[test]
    fn capped_campaign_runs_only_sampled_targets() {
        let app = icfl_apps::chain_app(6);
        let cfg = RunConfig::quick(31).with_max_targets(2);
        let campaign = CampaignRun::execute(&app, &cfg).unwrap();
        assert_eq!(campaign.targets().len(), 2);
        // Stride over 6: indices 0 and 3.
        assert_eq!(campaign.targets()[0], ServiceId::from_index(0));
        assert_eq!(campaign.targets()[1], ServiceId::from_index(3));
    }
}
