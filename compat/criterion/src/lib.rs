//! Offline stand-in for `criterion`, exposing the API subset this
//! workspace's benches use: `Criterion::default().sample_size(n)`,
//! `bench_function`, `benchmark_group` (+ `bench_with_input`, `throughput`,
//! `finish`), `BenchmarkId`, `Throughput`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is deliberately simple: per benchmark it times batches of
//! iterations with `std::time::Instant` and reports the mean and best
//! per-iteration time (plus derived throughput when configured). There is
//! no statistical analysis, outlier rejection, or HTML report.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle. Holds per-run defaults.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size, self.measurement_time);
        routine(&mut b);
        b.report(name, None);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
            sample_size: None,
        }
    }
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Units processed per iteration; turns times into rates in the report.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.criterion.measurement_time,
        );
        routine(&mut b);
        b.report(&format!("{}/{}", self.name, id), self.throughput);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.criterion.measurement_time,
        );
        routine(&mut b, input);
        b.report(&format!("{}/{}", self.name, id), self.throughput);
        self
    }

    pub fn finish(self) {}
}

/// Runs and times the measured routine.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(sample_size: usize, measurement_time: Duration) -> Self {
        Bencher {
            sample_size,
            measurement_time,
            samples: Vec::new(),
        }
    }

    /// Times `routine`, storing per-iteration durations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.samples.clear();
        // Warmup + calibration: one untimed run, then size batches so a
        // sample costs ~measurement_time / sample_size.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let per_sample = self.measurement_time / self.sample_size as u32;
        let iters = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u32;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters);
        }
    }

    fn report(&self, name: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let best = *self.samples.iter().min().expect("nonempty");
        let mut line = format!(
            "{name:<40} time: [mean {} | best {}]",
            fmt_duration(mean),
            fmt_duration(best)
        );
        if let Some(t) = throughput {
            let secs = mean.as_secs_f64().max(1e-12);
            let rate = match t {
                Throughput::Elements(n) => format!("{} elem/s", fmt_rate(n as f64 / secs)),
                Throughput::Bytes(n) => format!("{} B/s", fmt_rate(n as f64 / secs)),
            };
            line.push_str(&format!(" thrpt: {rate}"));
        }
        println!("{line}");
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

fn fmt_rate(r: f64) -> String {
    if r >= 1e9 {
        format!("{:.3}G", r / 1e9)
    } else if r >= 1e6 {
        format!("{:.3}M", r / 1e6)
    } else if r >= 1e3 {
        format!("{:.3}K", r / 1e3)
    } else {
        format!("{r:.1}")
    }
}

/// Declares a group of benchmark functions, mirroring criterion's two
/// accepted forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` that runs the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("sum_small", |b| {
            b.iter(|| (0..100u64).map(black_box).sum::<u64>())
        });
        let mut group = c.benchmark_group("group");
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::from_parameter(7u32), &7u32, |b, &n| {
            b.iter(|| (0..n).product::<u32>())
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3).measurement_time(Duration::from_millis(5));
        targets = sample_bench
    }

    criterion_group!(simple, sample_bench);

    #[test]
    fn harness_runs_both_group_forms() {
        benches();
        simple();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
