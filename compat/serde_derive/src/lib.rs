//! `#[derive(Serialize, Deserialize)]` for the in-tree serde stand-in.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`,
//! which are unavailable offline). Supports exactly what this workspace
//! derives on:
//!
//! - structs with named fields (`#[serde(default)]` and
//!   `#[serde(skip_serializing_if = "path")]` honored per field),
//! - tuple structs (single-field newtypes serialize transparently,
//!   wider tuples as arrays),
//! - unit structs,
//! - enums with unit, tuple, and struct variants (externally tagged, like
//!   real serde: `"Variant"`, `{"Variant": payload}`).
//!
//! Generics are intentionally unsupported — no serialized type in this
//! workspace is generic — and hitting one produces a clear compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field of a braced struct or struct variant.
struct NamedField {
    name: String,
    has_default: bool,
    /// Predicate path from `#[serde(skip_serializing_if = "path")]`: when
    /// `path(&field)` is true the field is omitted from the serialized
    /// object (pair with `default` so deserialization tolerates the gap).
    skip_if: Option<String>,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<NamedField>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Input {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("valid error tokens")
}

/// Field-level knobs recognized inside `#[serde(...)]`.
#[derive(Default)]
struct FieldAttrs {
    has_default: bool,
    skip_if: Option<String>,
}

/// Folds one `serde(...)` attribute token group into `attrs`. Recognizes
/// `default` and `skip_serializing_if = "path"`; other entries are ignored.
fn parse_serde_attr(group: &proc_macro::Group, attrs: &mut FieldAttrs) {
    let mut it = group.stream().into_iter();
    let inner = match (it.next(), it.next()) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(inner)))
            if name.to_string() == "serde" =>
        {
            inner
        }
        _ => return,
    };
    let toks: Vec<TokenTree> = inner.stream().into_iter().collect();
    let mut i = 0;
    while i < toks.len() {
        if let TokenTree::Ident(id) = &toks[i] {
            match id.to_string().as_str() {
                "default" => attrs.has_default = true,
                "skip_serializing_if" => {
                    if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                        (toks.get(i + 1), toks.get(i + 2))
                    {
                        if eq.as_char() == '=' {
                            let s = lit.to_string();
                            attrs.skip_if = Some(s.trim_matches('"').to_string());
                            i += 2;
                        }
                    }
                }
                _ => {}
            }
        }
        i += 1;
    }
}

/// Consumes leading `#[...]` attributes, collecting the recognized
/// `#[serde(...)]` field knobs.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> (usize, FieldAttrs) {
    let mut attrs = FieldAttrs::default();
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                parse_serde_attr(g, &mut attrs);
                i += 2;
            }
            _ => break,
        }
    }
    (i, attrs)
}

/// Consumes `pub`, `pub(...)` visibility tokens.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        i += 1;
        if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    i
}

/// Advances past a type (or discriminant expression) to the next top-level
/// comma, tracking `<...>` nesting; bracket/paren groups are atomic tokens.
fn skip_to_comma(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle = 0i32;
    while i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[i] {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return i,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

/// Parses the fields of a braced body (`name: Type, ...`).
fn parse_named_fields(group: &proc_macro::Group) -> Result<Vec<NamedField>, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (ni, attrs) = skip_attrs(&tokens, i);
        i = skip_vis(&tokens, ni);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("expected field name, found `{other}`")),
            None => break,
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        i = skip_to_comma(&tokens, i);
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        fields.push(NamedField {
            name,
            has_default: attrs.has_default,
            skip_if: attrs.skip_if,
        });
    }
    Ok(fields)
}

/// Counts the fields of a parenthesized (tuple) body.
fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut n = 0;
    let mut i = 0;
    while i < tokens.len() {
        // Each field may carry attributes and visibility before its type.
        let (ni, _) = skip_attrs(&tokens, i);
        i = skip_vis(&tokens, ni);
        if i >= tokens.len() {
            break;
        }
        n += 1;
        i = skip_to_comma(&tokens, i);
        i += 1; // past the comma (or off the end)
    }
    n
}

fn parse_variants(group: &proc_macro::Group) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (ni, _) = skip_attrs(&tokens, i);
        i = ni;
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("expected variant name, found `{other}`")),
            None => break,
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(count_tuple_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named(parse_named_fields(g)?)
            }
            _ => Shape::Unit,
        };
        // Skip an optional `= discriminant` and advance past the comma.
        i = skip_to_comma(&tokens, i);
        i += 1;
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (mut i, _) = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected type name".into()),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "the in-tree serde derive does not support generic type `{name}`"
        ));
    }
    match kind.as_str() {
        "struct" => {
            let shape = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g)?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(count_tuple_fields(g))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
                _ => return Err(format!("unsupported struct body for `{name}`")),
            };
            Ok(Input::Struct { name, shape })
        }
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Input::Enum {
                name,
                variants: parse_variants(g)?,
            }),
            _ => Err(format!("expected enum body for `{name}`")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

// ---------------------------------------------------------------------------
// Code generation (assembled as source text, then reparsed)
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    match input {
        Input::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => "serde::Value::Null".to_string(),
                Shape::Tuple(1) => "serde::Serialize::to_value(&self.0)".to_string(),
                Shape::Tuple(n) => gen_arr((0..*n).map(|k| format!("&self.{k}"))),
                Shape::Named(fields) => gen_obj(fields, |f| format!("&self.{}", f.name)),
            };
            format!(
                "impl serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> serde::Value {{ {body} }}\n}}\n"
            )
        }
        Input::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "{name}::{vn} => serde::Value::Str(\
                             ::std::string::ToString::to_string({vn:?})),"
                        ),
                        Shape::Tuple(1) => format!(
                            "{name}::{vn}(x0) => serde::tagged({vn:?}, \
                             serde::Serialize::to_value(x0)),"
                        ),
                        Shape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("x{k}")).collect();
                            let arr = gen_arr((0..*n).map(|k| format!("x{k}")));
                            format!(
                                "{name}::{vn}({}) => serde::tagged({vn:?}, {arr}),",
                                binds.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let obj = gen_obj(fields, |f| f.name.clone());
                            format!(
                                "{name}::{vn} {{ {} }} => serde::tagged({vn:?}, {obj}),",
                                binds.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> serde::Value {{ match self {{ {} }} }}\n}}\n",
                arms.join("\n")
            )
        }
    }
}

/// `Value::Arr` built without `vec!` so deriving modules cannot shadow it.
fn gen_arr(exprs: impl Iterator<Item = String>) -> String {
    let pushes: Vec<String> = exprs
        .map(|e| format!("__arr.push(serde::Serialize::to_value({e}));"))
        .collect();
    format!(
        "{{ let mut __arr = ::std::vec::Vec::with_capacity({}); {} serde::Value::Arr(__arr) }}",
        pushes.len(),
        pushes.join(" ")
    )
}

/// `Value::Obj` from named fields, with hygiene-safe paths only.
fn gen_obj(fields: &[NamedField], access: impl Fn(&NamedField) -> String) -> String {
    let pushes: Vec<String> = fields
        .iter()
        .map(|f| {
            let push = format!(
                "__obj.push(serde::entry({n:?}, serde::Serialize::to_value({a})));",
                n = f.name,
                a = access(f)
            );
            match &f.skip_if {
                Some(path) => format!("if !{path}({a}) {{ {push} }}", a = access(f)),
                None => push,
            }
        })
        .collect();
    format!(
        "{{ let mut __obj = ::std::vec::Vec::with_capacity({}); {} serde::Value::Obj(__obj) }}",
        fields.len(),
        pushes.join(" ")
    )
}

fn gen_named_ctor(ty: &str, type_path: &str, fields: &[NamedField], source: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            let missing = if f.has_default {
                "::std::default::Default::default()".to_string()
            } else {
                format!(
                    "return ::std::result::Result::Err(serde::missing_field({ty:?}, {n:?}))",
                    n = f.name
                )
            };
            format!(
                "{n}: match serde::obj_get({source}, {n:?}) {{ \
                 ::std::option::Option::Some(v) => serde::Deserialize::from_value(v)?, \
                 ::std::option::Option::None => {missing} }},",
                n = f.name
            )
        })
        .collect();
    format!("{type_path} {{ {} }}", inits.join(" "))
}

fn gen_deserialize(input: &Input) -> String {
    match input {
        Input::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => format!("::std::result::Result::Ok({name})"),
                Shape::Tuple(1) => {
                    format!("::std::result::Result::Ok({name}(serde::Deserialize::from_value(v)?))")
                }
                Shape::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|k| format!("serde::Deserialize::from_value(&__a[{k}])?"))
                        .collect();
                    format!(
                        "{{ let __a = match v.as_arr() {{ \
                         ::std::option::Option::Some(a) => a, \
                         ::std::option::Option::None => return ::std::result::Result::Err(\
                         serde::wrong_kind({name:?}, \"array\", v)) }};\n\
                         if __a.len() != {n} {{ return ::std::result::Result::Err(\
                         serde::wrong_len({name:?}, {n}, __a.len())); }}\n\
                         ::std::result::Result::Ok({name}({elems})) }}",
                        elems = elems.join(", ")
                    )
                }
                Shape::Named(fields) => {
                    let ctor = gen_named_ctor(name, name, fields, "__obj");
                    format!(
                        "{{ let __obj = match v.as_obj() {{ \
                         ::std::option::Option::Some(o) => o, \
                         ::std::option::Option::None => return ::std::result::Result::Err(\
                         serde::wrong_kind({name:?}, \"object\", v)) }};\n\
                         ::std::result::Result::Ok({ctor}) }}"
                    )
                }
            };
            format!(
                "impl serde::Deserialize for {name} {{\n\
                 fn from_value(v: &serde::Value) -> \
                 ::std::result::Result<Self, serde::DeError> {{ {body} }}\n}}\n"
            )
        }
        Input::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, Shape::Unit))
                .map(|v| {
                    format!(
                        "{vn:?} => ::std::result::Result::Ok({name}::{vn}),",
                        vn = v.name
                    )
                })
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => None,
                        Shape::Tuple(1) => Some(format!(
                            "{vn:?} => ::std::result::Result::Ok({name}::{vn}(\
                             serde::Deserialize::from_value(payload)?)),"
                        )),
                        Shape::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|k| format!("serde::Deserialize::from_value(&__a[{k}])?"))
                                .collect();
                            Some(format!(
                                "{vn:?} => {{ let __a = match payload.as_arr() {{ \
                                 ::std::option::Option::Some(a) => a, \
                                 ::std::option::Option::None => return \
                                 ::std::result::Result::Err(serde::wrong_kind(\
                                 {name:?}, \"array\", payload)) }};\n\
                                 if __a.len() != {n} {{ return ::std::result::Result::Err(\
                                 serde::wrong_len({vn:?}, {n}, __a.len())); }}\n\
                                 ::std::result::Result::Ok({name}::{vn}({elems})) }},",
                                elems = elems.join(", ")
                            ))
                        }
                        Shape::Named(fields) => {
                            let ctor =
                                gen_named_ctor(vn, &format!("{name}::{vn}"), fields, "__inner");
                            Some(format!(
                                "{vn:?} => {{ let __inner = match payload.as_obj() {{ \
                                 ::std::option::Option::Some(o) => o, \
                                 ::std::option::Option::None => return \
                                 ::std::result::Result::Err(serde::wrong_kind(\
                                 {name:?}, \"object\", payload)) }};\n\
                                 ::std::result::Result::Ok({ctor}) }},",
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                 fn from_value(v: &serde::Value) -> \
                 ::std::result::Result<Self, serde::DeError> {{\n\
                 match v {{\n\
                 serde::Value::Str(s) => match s.as_str() {{\n\
                 {units}\n\
                 other => ::std::result::Result::Err(serde::unknown_variant({name:?}, other)),\n\
                 }},\n\
                 serde::Value::Obj(entries) if entries.len() == 1 => {{\n\
                 let (tag, payload) = &entries[0];\n\
                 match tag.as_str() {{\n\
                 {payloads}\n\
                 other => ::std::result::Result::Err(serde::unknown_variant({name:?}, other)),\n\
                 }}\n\
                 }},\n\
                 other => ::std::result::Result::Err(\
                 serde::wrong_kind({name:?}, \"string or single-entry object\", other)),\n\
                 }}\n}}\n}}\n",
                units = unit_arms.join("\n"),
                payloads = payload_arms.join("\n"),
            )
        }
    }
}

/// Derives `serde::Serialize` (tree-model form; see the `serde` stand-in).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => gen_serialize(&parsed)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde_derive bug: {e}"))),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives `serde::Deserialize` (tree-model form; see the `serde` stand-in).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => gen_deserialize(&parsed)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde_derive bug: {e}"))),
        Err(msg) => compile_error(&msg),
    }
}
