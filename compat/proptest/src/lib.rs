//! Offline stand-in for `proptest`, covering the subset this workspace
//! uses: the `proptest!` macro, `prop_assert!`/`prop_assert_eq!`, range and
//! `any::<T>()` strategies, simple `[class]{m,n}` string patterns,
//! `collection::vec`/`collection::btree_set`, and `option::of`.
//!
//! Inputs are drawn from a deterministic splitmix64 stream seeded from the
//! test function's name, so failures reproduce exactly on re-run. There is
//! no shrinking: a failing case panics with the drawn inputs left to the
//! assertion message.

use std::ops::Range;

/// Deterministic per-test RNG (splitmix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the test name gives a stable, distinct seed per test.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Modulo bias is irrelevant at test-input quality.
        self.next_u64() % n
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

pub mod strategy {
    use super::TestRng;

    /// A recipe for generating test inputs of type `Value`.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }
}

pub use strategy::Strategy;

macro_rules! impl_uint_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
impl_uint_range!(u8, u16, u32, u64, usize);

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_int_range!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        (Range {
            start: self.start as f64,
            end: self.end as f64,
        })
        .generate(rng) as f32
    }
}

// Tuples of strategies generate tuples of values (real proptest supports up
// to 12 elements; sizes grow on demand here).
macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Strategy for a whole primitive domain, created by [`arbitrary::any`].
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::marker::PhantomData;

    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    pub struct Any<T>(PhantomData<T>);

    /// `any::<T>()` — the full domain of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub use arbitrary::any;

// ---------------------------------------------------------------------------
// String patterns: a `&str` literal is a strategy over a regex subset
// ---------------------------------------------------------------------------

/// Supports sequences of literal characters and `[a-z0-9_]` classes, each
/// optionally followed by `{m}`, `{m,n}`, `+`, `*`, or `?`. This covers the
/// patterns used in this workspace (e.g. `"[a-z]{1,12}"`).
impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = self.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let (atom, ni) = parse_atom(&chars, i);
            i = ni;
            let (lo, hi, ni) = parse_repeat(&chars, i);
            i = ni;
            let n = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..n {
                match &atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(set) => {
                        out.push(set[rng.below(set.len() as u64) as usize]);
                    }
                }
            }
        }
        out
    }
}

enum Atom {
    Literal(char),
    Class(Vec<char>),
}

fn parse_atom(chars: &[char], i: usize) -> (Atom, usize) {
    if chars[i] == '[' {
        let mut set = Vec::new();
        let mut j = i + 1;
        while j < chars.len() && chars[j] != ']' {
            if j + 2 < chars.len() && chars[j + 1] == '-' && chars[j + 2] != ']' {
                let (a, b) = (chars[j], chars[j + 2]);
                for c in a..=b {
                    set.push(c);
                }
                j += 3;
            } else {
                set.push(chars[j]);
                j += 1;
            }
        }
        assert!(!set.is_empty(), "empty character class in pattern");
        (Atom::Class(set), j + 1)
    } else if chars[i] == '\\' && i + 1 < chars.len() {
        (Atom::Literal(chars[i + 1]), i + 2)
    } else {
        (Atom::Literal(chars[i]), i + 1)
    }
}

fn parse_repeat(chars: &[char], i: usize) -> (usize, usize, usize) {
    match chars.get(i) {
        Some('{') => {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unclosed `{` in pattern")
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            let (lo, hi) = match body.split_once(',') {
                Some((a, b)) => (
                    a.trim().parse().expect("bad repeat lower bound"),
                    b.trim().parse().expect("bad repeat upper bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad repeat count");
                    (n, n)
                }
            };
            (lo, hi, close + 1)
        }
        Some('+') => (1, 8, i + 1),
        Some('*') => (0, 8, i + 1),
        Some('?') => (0, 1, i + 1),
        _ => (1, 1, i),
    }
}

// ---------------------------------------------------------------------------
// Collections and Option
// ---------------------------------------------------------------------------

/// Length specification for collection strategies: a fixed `usize` or a
/// half-open `Range<usize>`.
pub struct SizeRange {
    lo: usize,
    hi_excl: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_excl: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_excl: r.end,
        }
    }
}

impl From<Range<i32>> for SizeRange {
    fn from(r: Range<i32>) -> Self {
        SizeRange {
            lo: r.start as usize,
            hi_excl: r.end as usize,
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi_excl - self.lo) as u64) as usize
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::{SizeRange, TestRng};
    use std::collections::BTreeSet;

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    pub fn btree_set<S>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            // Duplicates may make the set smaller than `target`; that
            // mirrors real proptest, which treats the size as a request.
            for _ in 0..target.saturating_mul(3).max(target) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.elem.generate(rng));
            }
            out
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::TestRng;

    pub struct OptionStrategy<S>(S);

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Runner configuration and macros
// ---------------------------------------------------------------------------

pub mod test_runner {
    /// Runner configuration; only `cases` is honored.
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Entry point: wraps `#[test]` functions whose arguments are drawn from
/// strategies. Each function runs `cases` times with deterministic inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let _ = &case;
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_name("ranges_respect_bounds");
        for _ in 0..1000 {
            let v = Strategy::generate(&(5u64..17), &mut rng);
            assert!((5..17).contains(&v));
            let f = Strategy::generate(&(-2.0f64..3.0), &mut rng);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn string_pattern_generates_matching_text() {
        let mut rng = TestRng::from_name("string_pattern");
        for _ in 0..200 {
            let s = Strategy::generate("[a-z]{1,12}", &mut rng);
            assert!((1..=12).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn same_name_same_stream() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: multiple args, trailing comma, collections.
        #[test]
        fn macro_end_to_end(
            n in 1usize..10,
            xs in crate::collection::vec(0u64..100, 1..20),
            name in "[a-z]{1,4}",
            maybe in crate::option::of(0usize..3),
        ) {
            prop_assert!((1..10).contains(&n));
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            prop_assert!(xs.iter().all(|&x| x < 100));
            prop_assert!(!name.is_empty());
            if let Some(m) = maybe {
                prop_assert!(m < 3, "m={}", m);
            }
        }

        #[test]
        fn sets_respect_element_strategy(
            s in crate::collection::btree_set(0usize..20, 0..10),
        ) {
            prop_assert!(s.len() < 10);
            prop_assert!(s.iter().all(|&x| x < 20));
        }
    }
}
