//! Offline stand-in for [`serde`](https://serde.rs).
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace bundles a minimal, self-contained replacement that covers
//! exactly the surface the ICFL crates use: `#[derive(Serialize,
//! Deserialize)]` on plain structs/enums and JSON persistence through the
//! sibling `serde_json` stand-in.
//!
//! Instead of serde's visitor-based, format-agnostic data model, values
//! serialize into a single in-memory [`Value`] tree (JSON-shaped). That is a
//! deliberate simplification: every serialization consumer in this workspace
//! is JSON, and the tree form keeps the hand-written derive macro (see
//! `serde_derive`) small enough to audit.
//!
//! Numbers are kept in their widest lossless form ([`Number`]): integers as
//! `u128`/`i128`, floats as `f64` rendered via Rust's shortest-roundtrip
//! formatting — so persisted causal models reparse bit-identically, the
//! property the real workspace relied on `serde_json`'s `float_roundtrip`
//! feature for.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree — the single data model of this stand-in.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (lossless integer or shortest-roundtrip float).
    Num(Number),
    /// JSON string.
    Str(String),
    /// JSON array.
    Arr(Vec<Value>),
    /// JSON object; insertion order is preserved so output is deterministic.
    Obj(Vec<(String, Value)>),
}

/// A JSON number, kept lossless.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U(u128),
    /// Negative integer.
    I(i128),
    /// Binary floating point.
    F(f64),
}

impl Value {
    /// Borrows the object entries if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Borrows the elements if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Borrows the string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Looks up `key` in object entries (linear scan; objects here are small).
pub fn obj_get<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization error: a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Builds a [`DeError`] from any message.
pub fn de_error(msg: impl Into<String>) -> DeError {
    DeError(msg.into())
}

// Macro-free error constructors and builders for derive-generated code,
// which must not rely on any name the deriving module could shadow.

#[doc(hidden)]
pub fn missing_field(ty: &'static str, field: &'static str) -> DeError {
    DeError(format!("missing field `{field}` of {ty}"))
}

#[doc(hidden)]
pub fn unknown_variant(ty: &'static str, got: &str) -> DeError {
    DeError(format!("unknown variant `{got}` of {ty}"))
}

#[doc(hidden)]
pub fn wrong_kind(ty: &'static str, expected: &'static str, v: &Value) -> DeError {
    DeError(format!("expected {expected} for {ty}, found {}", v.kind()))
}

#[doc(hidden)]
pub fn wrong_len(ty: &'static str, want: usize, got: usize) -> DeError {
    DeError(format!("{ty} expects {want} elements, found {got}"))
}

/// Builds a single-entry object `{tag: payload}` (externally tagged form).
#[doc(hidden)]
pub fn tagged(tag: &'static str, payload: Value) -> Value {
    Value::Obj(vec![(tag.to_string(), payload)])
}

/// Builds an object entry, owning the key.
#[doc(hidden)]
pub fn entry(key: &'static str, v: Value) -> (String, Value) {
    (key.to_string(), v)
}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the data-model tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self`, reporting shape/type mismatches as [`DeError`].
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number::U(*self as u128))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(Number::U(u)) => <$t>::try_from(*u)
                        .map_err(|_| de_error(format!("integer {u} out of range"))),
                    Value::Num(Number::I(i)) => <$t>::try_from(*i)
                        .map_err(|_| de_error(format!("integer {i} out of range"))),
                    other => Err(de_error(format!(
                        "expected unsigned integer, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i128;
                if i < 0 { Value::Num(Number::I(i)) } else { Value::Num(Number::U(i as u128)) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(Number::U(u)) => <$t>::try_from(*u)
                        .map_err(|_| de_error(format!("integer {u} out of range"))),
                    Value::Num(Number::I(i)) => <$t>::try_from(*i)
                        .map_err(|_| de_error(format!("integer {i} out of range"))),
                    other => Err(de_error(format!(
                        "expected signed integer, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, i128, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number::F(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(Number::F(f)) => Ok(*f as $t),
                    Value::Num(Number::U(u)) => Ok(*u as $t),
                    Value::Num(Number::I(i)) => Ok(*i as $t),
                    // Non-finite floats serialize as null (JSON has no NaN).
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(de_error(format!(
                        "expected number, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(de_error(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(de_error(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v
            .as_str()
            .ok_or_else(|| de_error("expected single-char string"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(de_error(format!(
                "expected single-char string, found {s:?}"
            ))),
        }
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_arr()
            .ok_or_else(|| de_error(format!("expected array, found {}", v.kind())))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_arr()
            .ok_or_else(|| de_error(format!("expected array, found {}", v.kind())))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_obj()
            .ok_or_else(|| de_error(format!("expected object, found {}", v.kind())))?
            .iter()
            .map(|(k, x)| Ok((k.clone(), V::from_value(x)?)))
            .collect()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(std::sync::Arc::new)
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+),)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let a = v.as_arr()
                    .ok_or_else(|| de_error(format!("expected tuple array, found {}", v.kind())))?;
                let want = [$($n),+].len();
                if a.len() != want {
                    return Err(de_error(format!(
                        "expected {want}-tuple, found array of {}", a.len()
                    )));
                }
                Ok(($($t::from_value(&a[$n])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
}

// A Value is trivially its own serialized form.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&o.to_value()).unwrap(), None);
        let t = (1u8, "x".to_string());
        assert_eq!(<(u8, String)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn type_mismatch_reports_kind() {
        let err = u64::from_value(&Value::Str("nope".into())).unwrap_err();
        assert!(err.to_string().contains("string"));
    }
}
