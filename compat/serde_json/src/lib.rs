//! Offline stand-in for `serde_json`, built on the in-tree `serde`
//! stand-in's `Value` tree.
//!
//! Provides the subset this workspace uses: [`to_string`],
//! [`to_string_pretty`], [`from_str`], and an [`Error`] type. Floats are
//! emitted with Rust's shortest-roundtrip `{}` formatting (with a `.0`
//! appended when the result would parse as an integer), so values survive
//! serialize → parse → serialize exactly — the property the real crate's
//! `float_roundtrip` feature guarantees.

use serde::{Deserialize, Number, Serialize, Value};
use std::fmt;

/// Serialization / deserialization failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent, like the
/// real serde_json).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(out, n),
        Value::Str(s) => write_json_string(out, s),
        Value::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
            write_value(out, &items[i], indent, depth + 1);
        }),
        Value::Obj(entries) => write_seq(out, indent, depth, '{', '}', entries.len(), |out, i| {
            let (k, val) = &entries[i];
            write_json_string(out, k);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            write_value(out, val, indent, depth + 1);
        }),
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

fn write_number(out: &mut String, n: &Number) {
    use fmt::Write as _;
    match n {
        Number::U(u) => {
            let _ = write!(out, "{u}");
        }
        Number::I(i) => {
            let _ = write!(out, "{i}");
        }
        Number::F(f) => {
            if !f.is_finite() {
                // Real serde_json emits null for non-finite floats.
                out.push_str("null");
                return;
            }
            let start = out.len();
            let _ = write!(out, "{f}");
            // `{}` on f64 is shortest-roundtrip but prints 3.0 as "3";
            // keep the float/integer distinction visible like serde_json.
            if !out[start..].contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Deserialization
// ---------------------------------------------------------------------------

/// Parses JSON text and decodes it into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value_str(s)?;
    T::from_value(&value).map_err(|e| Error(e.to_string()))
}

/// Parses JSON text into a [`Value`] tree.
pub fn parse_value_str(s: &str) -> Result<Value> {
    let bytes = s.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uDCxx low half.
                                if !self.eat_keyword("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u128>() {
                return Ok(Value::Num(Number::U(u)));
            }
            if let Ok(i) = text.parse::<i128>() {
                return Ok(Value::Num(Number::I(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Num(Number::F(f)))
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact_values() {
        let v = Value::Obj(vec![
            ("a".to_string(), Value::Num(Number::U(3))),
            ("b".to_string(), Value::Num(Number::F(0.1))),
            (
                "c".to_string(),
                Value::Arr(vec![
                    Value::Null,
                    Value::Bool(true),
                    Value::Str("x\ny".into()),
                ]),
            ),
        ]);
        let text = to_string(&v).unwrap();
        assert_eq!(text, "{\"a\":3,\"b\":0.1,\"c\":[null,true,\"x\\ny\"]}");
        let back = parse_value_str(&text).unwrap();
        assert_eq!(to_string(&back).unwrap(), text);
    }

    #[test]
    fn floats_keep_their_dot() {
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
        assert_eq!(to_string(&-0.0f64).unwrap(), "-0.0");
        let f: f64 = from_str("3.0").unwrap();
        assert_eq!(f, 3.0);
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for &f in &[
            0.1,
            1.0 / 3.0,
            f64::MAX,
            f64::MIN_POSITIVE,
            123456.789012345,
        ] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{f} -> {s}");
        }
    }

    #[test]
    fn negative_integers_classify_as_i() {
        match parse_value_str("-7").unwrap() {
            Value::Num(Number::I(-7)) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pretty_matches_serde_json_layout() {
        let v = Value::Obj(vec![(
            "k".to_string(),
            Value::Arr(vec![Value::Num(Number::U(1)), Value::Num(Number::U(2))]),
        )]);
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"k\": [\n    1,\n    2\n  ]\n}"
        );
    }

    #[test]
    fn unicode_escapes_parse() {
        let s: String = from_str("\"\\u0041\\ud83d\\ude00\"").unwrap();
        assert_eq!(s, "A\u{1F600}");
    }
}
