//! # icfl — Interventional Causal Fault Localization
//!
//! A from-scratch Rust reproduction of *"Fault Localization Using
//! Interventional Causal Learning for Cloud-Native Applications"*
//! (Jha et al., IBM Research, DSN 2024).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`sim`] | `icfl-sim` | deterministic discrete-event kernel |
//! | [`micro`] | `icfl-micro` | microservice cluster simulator |
//! | [`telemetry`] | `icfl-telemetry` | scraping, hopping windows, derived metrics |
//! | [`stats`] | `icfl-stats` | KS test & friends, hand-rolled |
//! | [`faults`] | `icfl-faults` | fault injection platform & campaigns |
//! | [`loadgen`] | `icfl-loadgen` | Locust-style closed-loop load |
//! | [`apps`] | `icfl-apps` | CausalBench, Robot-shop, Fig. 1/2 topologies |
//! | [`scenario`] | `icfl-scenario` | unified run assembly: app + sim + load + faults + telemetry taps |
//! | [`core`] | `icfl-core` | **Algorithms 1 & 2** + scoring + orchestration |
//! | [`obs`] | `icfl-obs` | pipeline self-observability: spans, metrics, Chrome-trace & Prometheus exports |
//! | [`online`] | `icfl-online` | streaming ingest, incident detection, live localization, model registry |
//! | [`server`] | `icfl-server` | networked ingest server (HTTP/1.1 over TCP) + load-generator core |
//! | [`baselines`] | `icfl-baselines` | \[23\], \[24\], pooled, observational |
//! | [`experiments`] | `icfl-experiments` | regenerate every table & figure |
//!
//! # Examples
//!
//! The five-minute tour (see `examples/quickstart.rs` for the runnable
//! version):
//!
//! ```
//! use icfl::core::{CampaignRun, EvalSuite, RunConfig};
//! use icfl::telemetry::MetricCatalog;
//!
//! // 1. Pick a benchmark application (here: the paper's CausalBench).
//! let app = icfl::apps::pattern1(); // tiny 3-service chain for doc speed
//!
//! // 2. Run the Algorithm-1 fault-injection campaign and learn C(s, M).
//! let cfg = RunConfig::quick(7);
//! let campaign = CampaignRun::execute(&app, &cfg)?;
//! let model = campaign.learn(&MetricCatalog::derived_all(), RunConfig::default_detector())?;
//!
//! // 3. Localize faults in fresh production runs (Algorithm 2).
//! let suite = EvalSuite::execute(&app, campaign.targets(), &RunConfig::quick(8))?;
//! let summary = suite.evaluate(&model)?;
//! assert!(summary.accuracy > 0.9);
//! # Ok::<(), icfl::core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use icfl_apps as apps;
pub use icfl_baselines as baselines;
pub use icfl_core as core;
pub use icfl_experiments as experiments;
pub use icfl_faults as faults;
pub use icfl_loadgen as loadgen;
pub use icfl_micro as micro;
pub use icfl_obs as obs;
pub use icfl_online as online;
pub use icfl_scenario as scenario;
pub use icfl_server as server;
pub use icfl_sim as sim;
pub use icfl_stats as stats;
pub use icfl_telemetry as telemetry;
